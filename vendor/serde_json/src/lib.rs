//! Minimal, API-compatible stand-in for `serde_json`.
//!
//! Supports the calls the workspace makes — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — over the vendored serde's
//! self-describing [`Content`] data model. Output formatting matches real
//! serde_json closely enough for the seed tests: compact output has no
//! whitespace, pretty output indents by two spaces, floats render via Rust's
//! shortest-roundtrip formatting (`7.5`, `3.0`), and non-finite floats
//! serialize as `null`.

use std::fmt;

use serde::de::{from_content, Content};
use serde::ser::to_content;
use serde::{Deserialize, Serialize};

/// A parsed JSON value (alias of the vendored serde's content tree).
pub type Value = Content;

/// Error type for JSON serialization and deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Convenience alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = to_content::<T, Error>(value)?;
    let mut out = String::new();
    write_compact(&content, &mut out);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = to_content::<T, Error>(value)?;
    let mut out = String::new();
    write_pretty(&content, &mut out, 0);
    Ok(out)
}

/// Serializes a value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    to_content::<T, Error>(value)
}

/// Deserializes a value from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(input: &str) -> Result<T> {
    let value = Parser::new(input).parse_document()?;
    from_content::<T, Error>(value)
}

/// Deserializes a value from a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T> {
    from_content::<T, Error>(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest-roundtrip float form: 7.5, 3.0, 0.1.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(*v, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(value: &Value, out: &mut String, depth: usize) {
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, out, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::new(format!("{} at byte {}", msg.into(), self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse_document(&mut self) -> Result<Value> {
        self.skip_ws();
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(value)
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.expect_keyword("null", Value::Null),
            Some(b't') => self.expect_keyword("true", Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn expect_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.bump(); // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.bump(); // '{'
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.bump(); // '"'
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let len = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(self.err("invalid UTF-8")),
                        };
                        let start = self.pos - 1;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated UTF-8"));
                        }
                        match std::str::from_utf8(&self.bytes[start..end]) {
                            Ok(s) => out.push_str(s),
                            Err(_) => return Err(self.err("invalid UTF-8")),
                        }
                        self.pos = end;
                    }
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}
