//! Behavioural tests for the work-stealing pool: ordering, determinism
//! across job counts, nested scopes, panic propagation, and the inline
//! `jobs = 1` fallback.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use minipar::{par_chunks, par_fold, par_map, scope, with_jobs};

#[test]
fn par_map_preserves_input_order() {
    let items: Vec<u64> = (0..1000).collect();
    let out = with_jobs(8, || par_map(&items, |x| x * 3));
    assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
}

#[test]
fn par_map_empty_input() {
    let empty: [u32; 0] = [];
    assert_eq!(
        with_jobs(4, || par_map(&empty, |x| x + 1)),
        Vec::<u32>::new()
    );
    assert_eq!(
        with_jobs(4, || par_chunks(&empty, 16, |_, c| c.len())),
        Vec::<usize>::new()
    );
}

#[test]
fn jobs_one_fallback_runs_inline_on_caller_thread() {
    let caller = std::thread::current().id();
    let ran_on = Mutex::new(Vec::new());
    with_jobs(1, || {
        scope(|s| {
            for _ in 0..10 {
                s.spawn(|| ran_on.lock().unwrap().push(std::thread::current().id()));
            }
        });
    });
    let ids = ran_on.into_inner().unwrap();
    assert_eq!(ids.len(), 10);
    assert!(
        ids.iter().all(|id| *id == caller),
        "inline path left the caller thread"
    );
}

#[test]
fn results_identical_across_job_counts() {
    let items: Vec<u64> = (0..4096).collect();
    // A float fold whose result depends on evaluation order — the chunked
    // merge tree must make it invariant anyway.
    let run = |jobs| {
        with_jobs(jobs, || {
            par_fold(
                &items,
                64,
                || 0.0f64,
                |acc, &x| acc + (x as f64).sqrt(),
                |a, b| a + b,
            )
        })
    };
    let reference = run(1);
    for jobs in [2, 4, 8] {
        assert_eq!(run(jobs).to_bits(), reference.to_bits(), "jobs={jobs}");
    }
}

#[test]
fn par_chunks_passes_stable_chunk_indices() {
    let items: Vec<u32> = (0..100).collect();
    let out = with_jobs(4, || par_chunks(&items, 7, |ci, part| (ci, part[0])));
    for (i, (ci, first)) in out.iter().enumerate() {
        assert_eq!(*ci, i);
        assert_eq!(*first, (i * 7) as u32);
    }
}

#[test]
fn nested_scopes_complete() {
    let counter = AtomicUsize::new(0);
    with_jobs(4, || {
        scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
    });
    assert_eq!(counter.load(Ordering::Relaxed), 32);
}

#[test]
fn nested_par_map_inside_par_map() {
    let rows: Vec<u64> = (0..16).collect();
    let out = with_jobs(4, || {
        par_map(&rows, |&r| {
            let cols: Vec<u64> = (0..16).collect();
            par_map(&cols, |&c| r * 100 + c).into_iter().sum::<u64>()
        })
    });
    let expected: Vec<u64> = rows
        .iter()
        .map(|&r| (0..16).map(|c| r * 100 + c).sum())
        .collect();
    assert_eq!(out, expected);
}

#[test]
fn worker_panic_propagates_to_scope_caller() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        with_jobs(4, || {
            scope(|s| {
                s.spawn(|| panic!("boom in worker"));
            });
        });
    }));
    let payload = result.expect_err("scope must re-raise the worker panic");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_else(|| {
        payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .unwrap()
    });
    assert!(msg.contains("boom in worker"), "unexpected payload {msg:?}");
}

#[test]
fn panic_does_not_lose_sibling_tasks() {
    // One task panics; the others must still have run by the time the scope
    // re-raises, in both inline and pooled modes.
    for jobs in [1, 4] {
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_jobs(jobs, || {
                scope(|s| {
                    for i in 0..20 {
                        let done = &done;
                        s.spawn(move || {
                            if i == 7 {
                                panic!("task 7 fails");
                            }
                            done.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        }));
        assert!(result.is_err(), "jobs={jobs}: panic must propagate");
        assert_eq!(done.load(Ordering::Relaxed), 19, "jobs={jobs}");
    }
}

#[test]
fn pool_survives_a_panicked_generation() {
    // A panic in one scope must not poison the pool for later work.
    let _ = catch_unwind(AssertUnwindSafe(|| {
        with_jobs(4, || {
            scope(|s| s.spawn(|| panic!("first generation dies")));
        });
    }));
    let items: Vec<u64> = (0..256).collect();
    let out = with_jobs(4, || par_map(&items, |x| x + 1));
    assert_eq!(out.len(), 256);
    assert_eq!(out[255], 256);
}

#[test]
fn with_jobs_caps_width_even_after_pool_growth() {
    // Grow the pool wide first…
    let items: Vec<u64> = (0..512).collect();
    let _ = with_jobs(8, || par_map(&items, |x| x + 1));
    // …then a narrower override must still bound concurrency: par_map
    // spawns only `jobs` runner tasks and each runner executes on exactly
    // one thread, so at most 2 distinct threads may touch the items.
    let ids = Mutex::new(std::collections::HashSet::new());
    let out = with_jobs(2, || {
        par_map(&items, |x| {
            ids.lock().unwrap().insert(std::thread::current().id());
            x + 1
        })
    });
    assert_eq!(out.len(), items.len());
    let distinct = ids.into_inner().unwrap().len();
    assert!(distinct <= 2, "jobs=2 ran on {distinct} threads");
}

#[test]
fn scope_returns_body_value() {
    let v = with_jobs(4, || {
        scope(|s| {
            s.spawn(|| {});
            42
        })
    });
    assert_eq!(v, 42);
}
