//! Vendored, dependency-free parallel-execution substrate for the
//! `nvd-clean` workspace.
//!
//! The cleaning pipeline (Anwar et al., DSN 2021) is embarrassingly
//! parallel per CVE: disclosure estimation, severity feature extraction and
//! name verification each visit every entry independently, and the corpus
//! generator draws every synthetic CVE from its own derived RNG stream.
//! This crate provides the minimal machinery to exploit that shape without
//! any crates.io dependency (the build environment is offline):
//!
//! * a lazily-started **work-stealing thread pool** — one global injector
//!   plus a per-worker deque; idle workers steal from the back of their
//!   peers' deques;
//! * [`scope`] — structured spawning of borrowed closures; the scope joins
//!   every spawned task before returning and re-raises worker panics on the
//!   caller thread;
//! * [`par_map`] / [`par_chunks`] — ordered parallel maps: output order
//!   always matches input order, regardless of how tasks interleave;
//! * [`par_fold`] — deterministic ordered reduction: per-chunk
//!   accumulators are merged left-to-right over a **caller-fixed** chunk
//!   size, so the merge tree (and thus any non-associative rounding) is
//!   identical whether one thread runs or sixteen;
//! * an **`NVD_JOBS`** environment override plus a [`with_jobs`]
//!   thread-local override for tests and benchmarks.
//!
//! # Determinism contract
//!
//! Given a pure per-item function, every primitive here returns
//! bit-identical results for every thread count, including the `jobs = 1`
//! inline path (which never touches the pool). The pipeline's end-to-end
//! `NVD_JOBS=1` vs `NVD_JOBS≥4` equivalence tests build on this.
//!
//! # Example
//!
//! ```
//! let squares = minipar::par_map(&[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Same result at any thread count:
//! let a = minipar::with_jobs(1, || minipar::par_map(&[1u64, 2, 3], |x| x + 1));
//! let b = minipar::with_jobs(4, || minipar::par_map(&[1u64, 2, 3], |x| x + 1));
//! assert_eq!(a, b);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// A heap-allocated unit of work after lifetime erasure.
type Task = Box<dyn FnOnce() + Send + 'static>;

// ---------------------------------------------------------------------------
// Job-count resolution
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-thread override installed by [`with_jobs`].
    static JOBS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_jobs() -> usize {
    static ENV_JOBS: OnceLock<usize> = OnceLock::new();
    *ENV_JOBS.get_or_init(|| {
        match std::env::var("NVD_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    })
}

/// The effective degree of parallelism for the calling thread: a
/// [`with_jobs`] override if one is active, else the `NVD_JOBS` environment
/// variable, else the machine's available parallelism.
pub fn jobs() -> usize {
    JOBS_OVERRIDE.with(|c| c.get()).unwrap_or_else(env_jobs)
}

/// Runs `f` with the effective job count pinned to `n` on this thread
/// (restored afterwards, even on panic). Benchmarks use this to compare
/// `jobs = 1` against `jobs = N` inside one process; tests use it to pin
/// the inline path.
///
/// The cap is honoured by [`par_map`], [`par_chunks`] and [`par_fold`]
/// even when an earlier, wider caller already grew the pool: the ordered
/// primitives spawn at most `n` runner tasks, so at most `n` workers can
/// participate. Raw [`scope`] spawns are not capped — every spawn is a
/// separate stealable task.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "with_jobs: job count must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOBS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = JOBS_OVERRIDE.with(|c| {
        let prev = c.get();
        c.set(Some(n));
        Restore(prev)
    });
    f()
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// Ignores lock poisoning: every task body runs under `catch_unwind`, so a
/// poisoned pool lock only ever guards still-consistent plain data.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct WorkerQueue {
    deque: Mutex<VecDeque<Task>>,
}

struct Shared {
    /// Global FIFO for tasks submitted from non-worker threads.
    injector: Mutex<VecDeque<Task>>,
    /// Event counter, bumped on every submission and task completion.
    /// Sleepers snapshot it before scanning for work and go to sleep only
    /// if it has not moved since — a missed-notify-proof protocol that
    /// needs no wait timeout, so an idle pool consumes zero CPU.
    signal: Mutex<u64>,
    /// Paired with `signal`.
    wakeup: Condvar,
    /// Grow-only list of per-worker deques (steal targets).
    workers: Mutex<Vec<Arc<WorkerQueue>>>,
}

thread_local! {
    /// Set on pool worker threads: this worker's own deque and index.
    static CURRENT_WORKER: RefCell<Option<(usize, Arc<WorkerQueue>)>> =
        const { RefCell::new(None) };
}

impl Shared {
    /// Grabs one runnable task: own deque first (FIFO), then the injector,
    /// then the back of a peer's deque (the stealing half of the protocol).
    fn find_task(&self) -> Option<Task> {
        let own = CURRENT_WORKER.with(|w| {
            w.borrow()
                .as_ref()
                .and_then(|(_, q)| lock(&q.deque).pop_front())
        });
        if own.is_some() {
            return own;
        }
        if let Some(t) = lock(&self.injector).pop_front() {
            return Some(t);
        }
        let me = CURRENT_WORKER.with(|w| w.borrow().as_ref().map(|(i, _)| *i));
        let peers = lock(&self.workers).clone();
        for (i, q) in peers.iter().enumerate() {
            if Some(i) == me {
                continue;
            }
            if let Some(t) = lock(&q.deque).pop_back() {
                return Some(t);
            }
        }
        None
    }

    /// Queues a task: onto the submitting worker's own deque when called
    /// from inside the pool, else onto the global injector.
    fn submit(&self, task: Task) {
        let leftover = CURRENT_WORKER.with(|w| match w.borrow().as_ref() {
            Some((_, q)) => {
                lock(&q.deque).push_back(task);
                None
            }
            None => Some(task),
        });
        if let Some(t) = leftover {
            lock(&self.injector).push_back(t);
        }
        self.bump();
    }

    /// Records an event (submission or completion) and wakes sleepers.
    fn bump(&self) {
        *lock(&self.signal) += 1;
        self.wakeup.notify_all();
    }

    /// Current event count; pass to [`Shared::sleep_unless_changed`].
    fn snapshot(&self) -> u64 {
        *lock(&self.signal)
    }

    /// Blocks until the event counter moves past `seen`. Returns
    /// immediately if it already has — an event between the caller's
    /// snapshot and this call is never lost.
    fn sleep_unless_changed(&self, seen: u64) {
        let guard = lock(&self.signal);
        if *guard == seen {
            drop(
                self.wakeup
                    .wait(guard)
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
        }
    }

    /// Ensures at least `n` worker threads exist.
    fn ensure_workers(self: &Arc<Self>, n: usize) {
        let mut workers = lock(&self.workers);
        while workers.len() < n {
            let idx = workers.len();
            let queue = Arc::new(WorkerQueue {
                deque: Mutex::new(VecDeque::new()),
            });
            workers.push(queue.clone());
            let shared = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("minipar-{idx}"))
                .spawn(move || worker_loop(shared, idx, queue))
                .expect("spawn minipar worker");
        }
    }
}

fn worker_loop(shared: Arc<Shared>, idx: usize, queue: Arc<WorkerQueue>) {
    CURRENT_WORKER.with(|w| *w.borrow_mut() = Some((idx, queue)));
    loop {
        let seen = shared.snapshot();
        if let Some(task) = shared.find_task() {
            task();
            continue;
        }
        // Nothing runnable anywhere. Any submission after the snapshot
        // either showed up in the scan above or moved the counter, in
        // which case this returns immediately instead of sleeping.
        shared.sleep_unless_changed(seen);
    }
}

fn pool() -> &'static Arc<Shared> {
    static POOL: OnceLock<Arc<Shared>> = OnceLock::new();
    POOL.get_or_init(|| {
        Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            signal: Mutex::new(0),
            wakeup: Condvar::new(),
            workers: Mutex::new(Vec::new()),
        })
    })
}

// ---------------------------------------------------------------------------
// Scoped spawning
// ---------------------------------------------------------------------------

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = lock(&self.panic);
        // First panic wins; later ones are dropped like rayon does.
        slot.get_or_insert(payload);
    }
}

/// Handle for spawning borrowed tasks inside a [`scope`] call.
pub struct Scope<'env> {
    state: Arc<ScopeState>,
    inline: bool,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _marker: PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("pending", &self.state.pending.load(Ordering::Acquire))
            .field("inline", &self.inline)
            .finish()
    }
}

impl<'env> Scope<'env> {
    /// Spawns a task that may borrow from the enclosing scope. With an
    /// effective job count of 1 the task runs immediately on the calling
    /// thread (the no-thread fallback path); panics are still deferred to
    /// the end of the scope so both modes observe the same set of tasks.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        if self.inline {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                state.record_panic(payload);
            }
            state.pending.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        let run = move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                state.record_panic(payload);
            }
            state.pending.fetch_sub(1, Ordering::AcqRel);
            // Completion event: a scope join may be asleep waiting for this
            // exact task to finish.
            pool().bump();
        };
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(run);
        // SAFETY: `scope` does not return before `pending` reaches zero, so
        // every spawned closure (and everything it borrows from `'env`) is
        // done executing while the borrows are still live. Erasing `'env`
        // to `'static` for storage in the pool is therefore sound; this is
        // the same argument `std::thread::scope` makes.
        let task: Task = unsafe { std::mem::transmute(task) };
        pool().submit(task);
    }
}

/// Runs `f` with a [`Scope`] for spawning borrowed tasks, joins every
/// spawned task, then returns `f`'s result.
///
/// If any spawned task panicked, the first panic payload is re-raised on
/// the calling thread after all tasks finished. While waiting, the calling
/// thread executes queued tasks itself ("helping"), which also makes nested
/// scopes on worker threads deadlock-free.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R {
    let j = jobs();
    let inline = j <= 1;
    if !inline {
        pool().ensure_workers(j);
    }
    let sc = Scope {
        state: Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }),
        inline,
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&sc)));
    // Join barrier: help run tasks until every spawn completed. This must
    // happen even when the scope body panicked, otherwise spawned tasks
    // could outlive borrows they hold. The snapshot/sleep protocol mirrors
    // the worker loop's: completions bump the pool signal, so the waiter
    // never sleeps through the last task finishing.
    loop {
        if sc.state.pending.load(Ordering::Acquire) == 0 {
            break;
        }
        let seen = pool().snapshot();
        if let Some(task) = pool().find_task() {
            task();
            continue;
        }
        if sc.state.pending.load(Ordering::Acquire) == 0 {
            break;
        }
        pool().sleep_unless_changed(seen);
    }
    match result {
        Ok(r) => {
            if let Some(payload) = lock(&sc.state.panic).take() {
                resume_unwind(payload);
            }
            r
        }
        Err(payload) => resume_unwind(payload),
    }
}

// ---------------------------------------------------------------------------
// Ordered data-parallel primitives
// ---------------------------------------------------------------------------

/// Executes `run_chunk(0..n_chunks)` with at most `j` concurrent runners
/// and returns the results ordered by chunk index.
///
/// Spawns `min(j, n_chunks)` runner tasks that drain a shared atomic chunk
/// counter, rather than one task per chunk — this is what makes the
/// effective job count a genuine *cap*: even if the pool has grown wider
/// for an earlier caller, only `j` runners exist to be stolen, so at most
/// `j` workers (counting the helping caller) touch this call's work.
fn run_ordered<R: Send>(
    n_chunks: usize,
    j: usize,
    run_chunk: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    scope(|s| {
        for _ in 0..j.min(n_chunks) {
            let slots = &slots;
            let next = &next;
            let run_chunk = &run_chunk;
            s.spawn(move || loop {
                let ci = next.fetch_add(1, Ordering::Relaxed);
                if ci >= n_chunks {
                    break;
                }
                *lock(&slots[ci]) = Some(run_chunk(ci));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("scope joined every chunk")
        })
        .collect()
}

/// Maps `f` over `items` in parallel, returning outputs in input order.
///
/// The work is split into `4 × jobs` contiguous chunks for load balancing;
/// because each output lands in its input's slot, the result is identical
/// for every thread count. `jobs() == 1` maps inline without touching the
/// pool; at higher counts at most `jobs()` workers run this call's chunks.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let j = jobs();
    if j <= 1 || n == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(j * 4).max(1);
    let n_chunks = n.div_ceil(chunk);
    run_ordered(n_chunks, j, |ci| {
        let start = ci * chunk;
        items[start..(start + chunk).min(n)]
            .iter()
            .map(&f)
            .collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Applies `f` to fixed-size contiguous chunks of `items` in parallel,
/// returning one output per chunk, ordered by chunk index.
///
/// Chunk boundaries depend only on `chunk_size`, never on the thread
/// count — callers that derive per-chunk state (RNG streams, partial sums)
/// from the chunk index therefore get bit-identical results at any
/// parallelism. The final chunk may be shorter.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_chunks<T: Sync, R: Send>(
    items: &[T],
    chunk_size: usize,
    f: impl Fn(usize, &[T]) -> R + Sync,
) -> Vec<R> {
    assert!(chunk_size > 0, "par_chunks: chunk_size must be positive");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let j = jobs();
    if j <= 1 || n <= chunk_size {
        return items
            .chunks(chunk_size)
            .enumerate()
            .map(|(ci, part)| f(ci, part))
            .collect();
    }
    let n_chunks = n.div_ceil(chunk_size);
    run_ordered(n_chunks, j, |ci| {
        let start = ci * chunk_size;
        f(ci, &items[start..(start + chunk_size).min(n)])
    })
}

/// Deterministic ordered reduction: folds each fixed-size chunk
/// sequentially with `fold` (starting from `init()`), then merges the
/// per-chunk accumulators **left to right in chunk order** with `merge`.
///
/// Because the chunking is caller-fixed and the merge order is the chunk
/// order, the exact sequence of operations — and therefore any
/// floating-point rounding — is independent of the thread count. `merge`
/// does not need to be associative with `fold`; it only needs to combine
/// adjacent accumulators.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_fold<T: Sync, A: Send>(
    items: &[T],
    chunk_size: usize,
    init: impl Fn() -> A + Sync,
    fold: impl Fn(A, &T) -> A + Sync,
    merge: impl Fn(A, A) -> A,
) -> A {
    let partials = par_chunks(items, chunk_size, |_ci, part| {
        part.iter().fold(init(), &fold)
    });
    partials.into_iter().reduce(merge).unwrap_or_else(init)
}

/// Derives an independent RNG seed for a parallel work unit.
///
/// SplitMix64 finalization over `(master, stream)`: statistically
/// independent streams for adjacent indices, identical on every platform,
/// and — unlike handing consecutive integers to a seed expander — robust to
/// correlated low bits. The corpus generator keys this by chunk index; the
/// pipeline keys auxiliary passes by fixed tags.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .rotate_left(17)
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0xA076_1D64_78BD_642F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_is_ordered_inline() {
        let out = with_jobs(1, || par_map(&[3u32, 1, 2], |x| x * 10));
        assert_eq!(out, vec![30, 10, 20]);
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(42, 0));
    }
}
