//! Serialization half of the vendored serde stand-in.

use std::collections::{BTreeMap, HashMap};
use std::fmt::{self, Display};

/// Trait for serialization errors, mirroring `serde::ser::Error`.
pub trait Error: Sized + fmt::Debug + Display {
    /// Builds a custom error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any supported format.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format-specific serializer, mirroring the subset of `serde::Serializer`
/// the workspace uses.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Sequence builder returned by [`Serializer::serialize_seq`].
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Map builder returned by [`Serializer::serialize_map`].
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct builder returned by [`Serializer::serialize_struct`].
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a floating-point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct as its inner value.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant (externally tagged).
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins serializing a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins serializing a struct with named fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins serializing a struct enum variant (externally tagged).
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;

    /// Serializes the `Display` form of a value as a string.
    fn collect_str<T: Display + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_str(&value.to_string())
    }
}

/// Builder for sequence serialization.
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for map serialization.
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serializes one key/value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for struct serialization.
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Records a field skipped by `skip_serializing_if`.
    fn skip_field(&mut self, name: &'static str) -> Result<(), Self::Error> {
        let _ = name;
        Ok(())
    }
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_serialize_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8 i16 i32 i64 isize);
impl_serialize_uint!(u8 u16 u32 u64 usize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut buf = [0u8; 4];
        serializer.serialize_str(self.encode_utf8(&mut buf))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<'a, S, T, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
    I: Iterator<Item = &'a T>,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, N, self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize, H> Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(impl_serialize_tuple!(@count $($name)+)))?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        }
    )*};
    (@count $($name:ident)+) => { [$(stringify!($name)),+].len() };
}

impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Content-building serializer: the bridge used by format crates.
// ---------------------------------------------------------------------------

use crate::de::Content;

/// Serializes a value into the self-describing [`Content`] tree.
///
/// Format crates (like the vendored `serde_json`) build their output from the
/// returned tree.
pub fn to_content<T, E>(value: &T) -> Result<Content, E>
where
    T: Serialize + ?Sized,
    E: Error,
{
    value.serialize(ContentSerializer::<E>::new())
}

/// A [`Serializer`] whose output is a [`Content`] tree.
pub struct ContentSerializer<E> {
    _marker: std::marker::PhantomData<E>,
}

impl<E> ContentSerializer<E> {
    /// Creates a content serializer.
    pub fn new() -> Self {
        Self {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<E> Default for ContentSerializer<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for ContentSerializer<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ContentSerializer")
    }
}

/// Serializes a map key down to the string JSON requires.
fn key_to_string<K: Serialize + ?Sized, E: Error>(key: &K) -> Result<String, E> {
    match to_content::<K, E>(key)? {
        Content::Str(s) => Ok(s),
        Content::I64(v) => Ok(v.to_string()),
        Content::U64(v) => Ok(v.to_string()),
        Content::Bool(v) => Ok(v.to_string()),
        other => Err(E::custom(format!(
            "map key must serialize to a string, got {}",
            other.kind()
        ))),
    }
}

/// Sequence builder for [`ContentSerializer`].
pub struct ContentSeq<E> {
    items: Vec<Content>,
    _marker: std::marker::PhantomData<E>,
}

impl<E: Error> SerializeSeq for ContentSeq<E> {
    type Ok = Content;
    type Error = E;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), E> {
        self.items.push(to_content::<T, E>(value)?);
        Ok(())
    }

    fn end(self) -> Result<Content, E> {
        Ok(Content::Seq(self.items))
    }
}

/// Map builder for [`ContentSerializer`].
pub struct ContentMap<E> {
    entries: Vec<(String, Content)>,
    _marker: std::marker::PhantomData<E>,
}

impl<E: Error> SerializeMap for ContentMap<E> {
    type Ok = Content;
    type Error = E;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), E> {
        let k = key_to_string::<K, E>(key)?;
        self.entries.push((k, to_content::<V, E>(value)?));
        Ok(())
    }

    fn end(self) -> Result<Content, E> {
        Ok(Content::Map(self.entries))
    }
}

/// Struct builder for [`ContentSerializer`]; also backs struct variants.
pub struct ContentStruct<E> {
    fields: Vec<(String, Content)>,
    /// For struct variants, the externally-tagged wrapper key.
    variant: Option<&'static str>,
    _marker: std::marker::PhantomData<E>,
}

impl<E: Error> SerializeStruct for ContentStruct<E> {
    type Ok = Content;
    type Error = E;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), E> {
        self.fields
            .push((name.to_owned(), to_content::<T, E>(value)?));
        Ok(())
    }

    fn end(self) -> Result<Content, E> {
        let body = Content::Map(self.fields);
        Ok(match self.variant {
            Some(v) => Content::Map(vec![(v.to_owned(), body)]),
            None => body,
        })
    }
}

impl<E: Error> Serializer for ContentSerializer<E> {
    type Ok = Content;
    type Error = E;
    type SerializeSeq = ContentSeq<E>;
    type SerializeMap = ContentMap<E>;
    type SerializeStruct = ContentStruct<E>;

    fn serialize_bool(self, v: bool) -> Result<Content, E> {
        Ok(Content::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Content, E> {
        Ok(Content::I64(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Content, E> {
        Ok(Content::U64(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Content, E> {
        Ok(Content::F64(v))
    }

    fn serialize_str(self, v: &str) -> Result<Content, E> {
        Ok(Content::Str(v.to_owned()))
    }

    fn serialize_unit(self) -> Result<Content, E> {
        Ok(Content::Null)
    }

    fn serialize_none(self) -> Result<Content, E> {
        Ok(Content::Null)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Content, E> {
        to_content::<T, E>(value)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Content, E> {
        Ok(Content::Str(variant.to_owned()))
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Content, E> {
        to_content::<T, E>(value)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Content, E> {
        Ok(Content::Map(vec![(
            variant.to_owned(),
            to_content::<T, E>(value)?,
        )]))
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<ContentSeq<E>, E> {
        Ok(ContentSeq {
            items: Vec::with_capacity(len.unwrap_or(0)),
            _marker: std::marker::PhantomData,
        })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<ContentMap<E>, E> {
        Ok(ContentMap {
            entries: Vec::with_capacity(len.unwrap_or(0)),
            _marker: std::marker::PhantomData,
        })
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<ContentStruct<E>, E> {
        Ok(ContentStruct {
            fields: Vec::with_capacity(len),
            variant: None,
            _marker: std::marker::PhantomData,
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<ContentStruct<E>, E> {
        Ok(ContentStruct {
            fields: Vec::with_capacity(len),
            variant: Some(variant),
            _marker: std::marker::PhantomData,
        })
    }
}
