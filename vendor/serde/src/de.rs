//! Deserialization half of the vendored serde stand-in.
//!
//! Instead of serde's visitor machinery, the deserializer yields a
//! self-describing [`Content`] tree and typed `Deserialize` impls pick it
//! apart. This is the same trick serde's own derive uses internally for
//! untagged enums, promoted here to the whole (JSON-only) data model.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::{self, Display};
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

/// Trait for deserialization errors, mirroring `serde::de::Error`.
pub trait Error: Sized + fmt::Debug + Display {
    /// Builds a custom error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;

    /// Error for a struct field absent from the input.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format!("missing field `{field}`"))
    }

    /// Error for an enum variant name not matching any known variant.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    /// Error for a value of the wrong shape.
    fn invalid_type(unexpected: &str, expected: &str) -> Self {
        Self::custom(format!("invalid type: {unexpected}, expected {expected}"))
    }
}

/// A self-describing value tree — the interchange between format crates and
/// typed `Deserialize` impls. Map keys are strings because the only wire
/// format in this workspace is JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Human-readable name of this value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "boolean",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// A format-specific deserializer: anything that can produce a [`Content`]
/// tree. Manual impls in the workspace only ever forward to existing
/// `Deserialize` impls (e.g. `String::deserialize(deserializer)?`), so this
/// single entry point is the whole required surface.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;

    /// Consumes the deserializer, yielding the underlying value tree.
    fn take_content(self) -> Result<Content, Self::Error>;
}

/// A data structure that can be deserialized from any supported format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A [`Deserializer`] over an already-parsed [`Content`] tree.
pub struct ContentDeserializer<E> {
    content: Content,
    _marker: PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    /// Wraps a content tree for typed deserialization.
    pub fn new(content: Content) -> Self {
        Self {
            content,
            _marker: PhantomData,
        }
    }
}

impl<E> fmt::Debug for ContentDeserializer<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ContentDeserializer")
            .field(&self.content)
            .finish()
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;

    fn take_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Deserializes a typed value out of a [`Content`] tree.
pub fn from_content<'de, T, E>(content: Content) -> Result<T, E>
where
    T: Deserialize<'de>,
    E: Error,
{
    T::deserialize(ContentDeserializer::<E>::new(content))
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Str(s) => Ok(s),
            other => Err(D::Error::invalid_type(other.kind(), "string")),
        }
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(D::Error::invalid_type(other.kind(), "boolean")),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Str(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(D::Error::invalid_type("string", "a single character")),
                }
            }
            other => Err(D::Error::invalid_type(other.kind(), "a single character")),
        }
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.take_content()?;
                let out = match &content {
                    Content::I64(v) => <$t>::try_from(*v).ok(),
                    Content::U64(v) => <$t>::try_from(*v).ok(),
                    // JSON object keys arrive as strings; accept numeric text.
                    Content::Str(s) => s.parse::<$t>().ok(),
                    Content::F64(v) if v.fract() == 0.0 => Some(*v as $t),
                    _ => None,
                };
                out.ok_or_else(|| {
                    D::Error::invalid_type(content.kind(), concat!("an in-range ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_deserialize_int!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

macro_rules! impl_deserialize_float {
    ($($t:ty)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_content()? {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    other => Err(D::Error::invalid_type(other.kind(), "a number")),
                }
            }
        }
    )*};
}

impl_deserialize_float!(f32 f64);

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Null => Ok(None),
            content => from_content::<T, D::Error>(content).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        from_content::<T, D::Error>(deserializer.take_content()?).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Seq(items) => items.into_iter().map(from_content::<T, D::Error>).collect(),
            other => Err(D::Error::invalid_type(other.kind(), "array")),
        }
    }
}

fn map_entries<'de, K, V, E>(content: Content) -> Result<Vec<(K, V)>, E>
where
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    E: Error,
{
    match content {
        Content::Map(entries) => entries
            .into_iter()
            .map(|(k, v)| {
                let key = from_content::<K, E>(Content::Str(k))?;
                let value = from_content::<V, E>(v)?;
                Ok((key, value))
            })
            .collect(),
        other => Err(E::invalid_type(other.kind(), "object")),
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(map_entries::<K, V, D::Error>(deserializer.take_content()?)?
            .into_iter()
            .collect())
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(map_entries::<K, V, D::Error>(deserializer.take_content()?)?
            .into_iter()
            .collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Seq(items) => items.into_iter().map(from_content::<T, D::Error>).collect(),
            other => Err(D::Error::invalid_type(other.kind(), "array")),
        }
    }
}

impl<'de, T, H> Deserialize<'de> for HashSet<T, H>
where
    T: Deserialize<'de> + Eq + Hash,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Seq(items) => items.into_iter().map(from_content::<T, D::Error>).collect(),
            other => Err(D::Error::invalid_type(other.kind(), "array")),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal; $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_content()? {
                    Content::Seq(items) if items.len() == $len => {
                        let mut iter = items.into_iter();
                        Ok(($(from_content::<$name, D::Error>(
                            iter.next().expect("length checked"),
                        )?,)+))
                    }
                    other => Err(D::Error::invalid_type(
                        other.kind(),
                        concat!("array of length ", $len),
                    )),
                }
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (1; A)
    (2; A, B)
    (3; A, B, C)
    (4; A, B, C, Z)
}
