//! Minimal, API-compatible stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the subset of serde's surface the workspace uses:
//!
//! * `Serialize` / `Deserialize` traits with the same generic shapes as real
//!   serde, so hand-written impls (`Date`, `CveId`, `CweId`) compile verbatim;
//! * derive macros (re-exported from `serde_derive`) supporting the container
//!   attribute `transparent` and the field attributes `rename`, `default`,
//!   `skip` and `skip_serializing_if`;
//! * a self-describing [`de::Content`] tree that acts as the data-model
//!   interchange between derived impls and format crates (`serde_json`).
//!
//! The serializer side mirrors serde's visitor-free builder traits
//! (`SerializeSeq` / `SerializeMap` / `SerializeStruct`); the deserializer
//! side replaces serde's visitor machinery with a single
//! [`de::Deserializer::take_content`] entry point, which is sufficient for a
//! JSON-only workspace and keeps the vendored code small.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// The derive macros share the trait names, like real serde's `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
