//! Sampling strategies, mirroring `proptest::sample`.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Strategy that picks a uniformly random element of a vector.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

/// Builds a [`Select`] strategy over the given options.
///
/// Panics at generation time if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        assert!(!self.options.is_empty(), "sample::select on empty options");
        let idx = runner.rng().gen_range(0..self.options.len());
        self.options[idx].clone()
    }
}
