//! Value-generation strategies for the vendored proptest stand-in.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRunner;

/// A source of generated values.
///
/// `new_value` takes `&self` so strategies can be reused across cases; there
/// is no shrinking in this stand-in.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn ObjectSafeStrategy<Value = T>>;

/// Object-safe core of [`Strategy`], automatically implemented.
pub trait ObjectSafeStrategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value_dyn(&self, runner: &mut TestRunner) -> Self::Value;
}

impl<S: Strategy> ObjectSafeStrategy for S {
    type Value = S::Value;

    fn new_value_dyn(&self, runner: &mut TestRunner) -> S::Value {
        self.new_value(runner)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.as_ref().new_value_dyn(runner)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Strategy returned by [`crate::prop_oneof!`]: uniform choice among
/// alternatives.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        let idx = runner.rng().gen_range(0..self.options.len());
        self.options[idx].new_value(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize f32 f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.new_value(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// One atom of a string pattern: a set of candidate characters plus a
/// repetition range.
#[derive(Debug, Clone)]
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the small regex subset used as string strategies: literal
/// characters, `.` (printable ASCII), character classes like `[a-z0-9_.-]`,
/// each optionally followed by `{n}` or `{m,n}`.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    const PRINTABLE: std::ops::RangeInclusive<u8> = b' '..=b'~';
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices: Vec<char> = match chars[i] {
            '.' => PRINTABLE.map(char::from).collect(),
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        // `\x` escapes just mean the literal x in this subset.
                        if chars[j] == '\\' && j + 1 < close {
                            j += 1;
                        }
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close;
                set
            }
            '\\' if i + 1 < chars.len() => {
                i += 1;
                vec![chars[i]]
            }
            c => vec![c],
        };
        i += 1;
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("pattern repeat min"),
                    hi.trim().parse().expect("pattern repeat max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("pattern repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition in pattern {pattern:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn new_value(&self, runner: &mut TestRunner) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = runner.rng().gen_range(atom.min..=atom.max);
            for _ in 0..count {
                let idx = runner.rng().gen_range(0..atom.choices.len());
                out.push(atom.choices[idx]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_pattern_respects_class_and_bounds() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..200 {
            let s = "[a-z_]{0,12}".new_value(&mut runner);
            assert!(s.len() <= 12);
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn literal_and_dot_patterns() {
        let mut runner = TestRunner::deterministic();
        let s = "ab".new_value(&mut runner);
        assert_eq!(s, "ab");
        for _ in 0..50 {
            let s = ".{0,200}".new_value(&mut runner);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn union_and_map_compose() {
        let mut runner = TestRunner::deterministic();
        let strat = crate::prop_oneof![Just(1u32), Just(2u32)].prop_map(|v| v * 10);
        for _ in 0..50 {
            let v = strat.new_value(&mut runner);
            assert!(v == 10 || v == 20);
        }
    }
}
