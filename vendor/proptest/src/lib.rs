//! Minimal, API-compatible stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `name(pat in strategy, ...)` arguments;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * strategies: integer/float ranges, string patterns (a small
//!   character-class + repetition subset of regex), [`strategy::Just`],
//!   tuples, `prop_map`, [`prop_oneof!`] and [`sample::select`];
//! * a deterministic [`test_runner::TestRunner`] (fixed seed, 256 cases per
//!   test), so CI runs are reproducible.
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! generated inputs via the assertion message instead.

pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    // Lets tests write `prop::sample::select(...)` as with real proptest.
    pub use crate as prop;
}

/// Number of cases generated per property (fixed, like proptest's default).
pub const DEFAULT_CASES: u32 = 256;

/// Defines property tests. Each function body runs [`DEFAULT_CASES`] times
/// with freshly generated inputs; `prop_assert*` failures panic with the
/// case's inputs included in the message.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __runner = $crate::test_runner::TestRunner::deterministic();
            for __case in 0..$crate::DEFAULT_CASES {
                $(let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut __runner);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest case {}/{} failed: {}", __case + 1, $crate::DEFAULT_CASES, e);
                }
            }
        }
    )*};
}

/// Fallible assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fallible equality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fallible inequality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Picks among several strategies with equal probability.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
