//! Test-runner state for the vendored proptest stand-in.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Error produced by `prop_assert*` macros inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Holds the RNG driving value generation for one property test.
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner with a fixed seed, so test runs are reproducible.
    pub fn deterministic() -> Self {
        Self {
            rng: StdRng::seed_from_u64(0x70_72_6f_70),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
