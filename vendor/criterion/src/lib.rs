//! Minimal, API-compatible stand-in for the `criterion` crate.
//!
//! Supports the subset the bench targets use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with per-group `sample_size`),
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros
//! (both the simple and the `name/config/targets` forms). Every measurement
//! keeps all N wall-clock samples and reports **mean ± stddev** alongside
//! the best observation, both on stdout and in the `BENCH_JSON` line
//! artifact — enough to tell a real regression from scheduler noise without
//! real Criterion's full statistics machinery.

use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timing harness handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Every observed nanoseconds-per-iteration sample.
    observed_ns: Vec<f64>,
}

impl Bencher {
    /// Times the closure, recording every sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.observed_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Summary statistics over one benchmark's samples.
#[derive(Debug, Clone, Copy)]
struct Stats {
    best_ns: f64,
    mean_ns: f64,
    stddev_ns: f64,
    samples: usize,
}

impl Stats {
    /// Mean, sample standard deviation (N−1 denominator; 0 for a single
    /// sample), and best over the observations. `None` when nothing was
    /// measured.
    fn from_samples(ns: &[f64]) -> Option<Self> {
        if ns.is_empty() {
            return None;
        }
        let n = ns.len() as f64;
        let mean = ns.iter().sum::<f64>() / n;
        let var = if ns.len() > 1 {
            ns.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Some(Self {
            best_ns: ns.iter().cloned().fold(f64::INFINITY, f64::min),
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            samples: ns.len(),
        })
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        observed_ns: Vec::with_capacity(samples),
    };
    f(&mut b);
    if let Some(stats) = Stats::from_samples(&b.observed_ns) {
        println!(
            "bench: {id:<50} {:>14.0} ns/iter ± {:>10.0} (best {:.0}, n={})",
            stats.mean_ns, stats.stddev_ns, stats.best_ns, stats.samples
        );
        append_json_record(id, stats);
    } else {
        println!("bench: {id:<50} (no measurement)");
    }
}

/// When `BENCH_JSON` names a file, appends one JSON line per measurement —
/// `{"id": ..., "mean_ns": ..., "stddev_ns": ..., "best_ns": ...,
/// "samples": ...}` — so CI can upload a machine-readable perf artifact
/// (e.g. `BENCH_parallel.json`, `BENCH_mlkit.json`) per run. `best_ns`
/// stays in the record so older tooling that read the best-of-N format
/// keeps working.
fn append_json_record(id: &str, stats: Stats) {
    use std::io::Write as _;

    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"id\": \"{escaped}\", \"mean_ns\": {:.0}, \"stddev_ns\": {:.0}, \"best_ns\": {:.0}, \"samples\": {}}}\n",
        stats.mean_ns, stats.stddev_ns, stats.best_ns, stats.samples
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: BENCH_JSON={path} not writable: {e}");
    }
}

impl Criterion {
    /// Sets how many samples each bench takes (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Prints the final summary (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each bench in this group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, in either Criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
