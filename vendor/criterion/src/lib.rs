//! Minimal, API-compatible stand-in for the `criterion` crate.
//!
//! Supports the subset the bench targets use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with per-group `sample_size`),
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros
//! (both the simple and the `name/config/targets` forms). Every measurement
//! keeps all N wall-clock samples and reports **mean ± stddev** alongside
//! the best observation and the nearest-rank **p50/p99 percentiles**, both
//! on stdout and in the `BENCH_JSON` line artifact — enough to tell a real
//! regression from scheduler noise, and to gate tail latency, without real
//! Criterion's full statistics machinery.

use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timing harness handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Every observed nanoseconds-per-iteration sample.
    observed_ns: Vec<f64>,
}

impl Bencher {
    /// Times the closure, recording every sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.observed_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    /// Times `routine` over inputs produced by `setup`, excluding both the
    /// setup and the drop of the routine's output from the measurement —
    /// for benches whose subject consumes or mutates its input (e.g.
    /// applying a delta to a cloned warm state).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One untimed warm-up run.
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = black_box(routine(input));
            self.observed_ns.push(start.elapsed().as_nanos() as f64);
            drop(out);
        }
    }
}

/// Batch sizing hint, accepted for API compatibility with real Criterion;
/// the stand-in always sets up and times one input per sample.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to hold; real Criterion batches many per alloc.
    SmallInput,
    /// Inputs are expensive; real Criterion sets up one per iteration.
    LargeInput,
    /// Force one setup per timed iteration.
    PerIteration,
}

/// Summary statistics over one benchmark's samples.
#[derive(Debug, Clone, Copy)]
struct Stats {
    best_ns: f64,
    mean_ns: f64,
    stddev_ns: f64,
    /// Median (nearest-rank 50th percentile) of the samples.
    p50_ns: f64,
    /// Nearest-rank 99th percentile — the tail-latency number the serve
    /// gates compare; with fewer than 100 samples this degrades towards
    /// the max, which is the conservative direction for a latency gate.
    p99_ns: f64,
    samples: usize,
}

impl Stats {
    /// Mean, sample standard deviation (N−1 denominator; 0 for a single
    /// sample), best, and nearest-rank p50/p99 over the observations.
    /// `None` when nothing was measured.
    fn from_samples(ns: &[f64]) -> Option<Self> {
        if ns.is_empty() {
            return None;
        }
        let n = ns.len() as f64;
        let mean = ns.iter().sum::<f64>() / n;
        let var = if ns.len() > 1 {
            ns.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let mut sorted = ns.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        Some(Self {
            best_ns: sorted[0],
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            p50_ns: percentile(&sorted, 50.0),
            p99_ns: percentile(&sorted, 99.0),
            samples: ns.len(),
        })
    }
}

/// Nearest-rank percentile over an ascending-sorted, non-empty slice.
fn percentile(sorted: &[f64], pct: f64) -> f64 {
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        observed_ns: Vec::with_capacity(samples),
    };
    f(&mut b);
    if let Some(stats) = Stats::from_samples(&b.observed_ns) {
        println!(
            "bench: {id:<50} {:>14.0} ns/iter ± {:>10.0} (best {:.0}, p50 {:.0}, p99 {:.0}, n={})",
            stats.mean_ns,
            stats.stddev_ns,
            stats.best_ns,
            stats.p50_ns,
            stats.p99_ns,
            stats.samples
        );
        append_json_record(id, stats);
    } else {
        println!("bench: {id:<50} (no measurement)");
    }
}

/// When `BENCH_JSON` names a file, appends one JSON line per measurement —
/// `{"id": ..., "mean_ns": ..., "stddev_ns": ..., "best_ns": ...,
/// "p50_ns": ..., "p99_ns": ..., "samples": ...}` — so CI can upload a
/// machine-readable perf artifact (e.g. `BENCH_parallel.json`,
/// `BENCH_serve.json`) per run. `best_ns` stays in the record so older
/// tooling that read the best-of-N format keeps working; the percentiles
/// are what the latency-aware serve gate reads.
fn append_json_record(id: &str, stats: Stats) {
    use std::io::Write as _;

    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"id\": \"{escaped}\", \"mean_ns\": {:.0}, \"stddev_ns\": {:.0}, \"best_ns\": {:.0}, \"p50_ns\": {:.0}, \"p99_ns\": {:.0}, \"samples\": {}}}\n",
        stats.mean_ns, stats.stddev_ns, stats.best_ns, stats.p50_ns, stats.p99_ns, stats.samples
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: BENCH_JSON={path} not writable: {e}");
    }
}

impl Criterion {
    /// Sets how many samples each bench takes (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Prints the final summary (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each bench in this group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, in either Criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        // Under 100 samples, p99 degrades to the max — conservative for a
        // tail-latency gate.
        let ten: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile(&ten, 99.0), 10.0);
    }

    #[test]
    fn iter_batched_times_each_input_once() {
        let mut b = Bencher {
            samples: 5,
            observed_ns: Vec::new(),
        };
        let mut setups = 0u32;
        let mut runs = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8, 2, 3]
            },
            |v| {
                runs += 1;
                v.len()
            },
            BatchSize::LargeInput,
        );
        // One warm-up plus one per sample.
        assert_eq!(setups, 6);
        assert_eq!(runs, 6);
        assert_eq!(b.observed_ns.len(), 5);
    }

    #[test]
    fn stats_cover_all_fields() {
        let stats = Stats::from_samples(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(stats.best_ns, 1.0);
        assert_eq!(stats.mean_ns, 2.5);
        assert_eq!(stats.p50_ns, 2.0);
        assert_eq!(stats.p99_ns, 4.0);
        assert_eq!(stats.samples, 4);
        assert!(Stats::from_samples(&[]).is_none());
    }
}
