//! Derive macros for the vendored serde stand-in.
//!
//! Implemented directly over `proc_macro::TokenStream` (the build environment
//! has no `syn`/`quote`), supporting the shapes and attributes the workspace
//! actually uses:
//!
//! * structs with named fields, newtype/tuple structs, unit structs;
//! * enums with unit, newtype and struct variants;
//! * container attribute `#[serde(transparent)]`;
//! * field attributes `rename = "..."`, `default`, `skip`,
//!   `skip_serializing_if = "path"`.
//!
//! Generated code targets the `serde::ser` builder traits for serialization
//! and the `serde::de::Content` tree for deserialization.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct FieldAttrs {
    rename: Option<String>,
    default: bool,
    skip: bool,
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    /// `None` for tuple-struct fields (addressed by index).
    name: Option<String>,
    attrs: FieldAttrs,
    /// Whether the declared type's head is `Option` (missing => `None`).
    is_option: bool,
}

impl Field {
    fn key(&self) -> String {
        match &self.attrs.rename {
            Some(r) => r.clone(),
            None => self.name.clone().expect("named field"),
        }
    }
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    transparent: bool,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, got {other:?}"),
        }
    }

    fn expect_punct(&mut self, ch: char) {
        match self.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ch => {}
            other => panic!("serde_derive: expected `{ch}`, got {other:?}"),
        }
    }

    /// Consumes `#[...]` attributes, folding any `serde(...)` contents into
    /// `attrs` via `apply`.
    fn take_attrs(&mut self, mut apply: impl FnMut(&str, Option<String>)) {
        while self.is_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde_derive: expected attribute brackets, got {other:?}"),
            };
            let mut inner = Cursor::new(group.stream());
            if !inner.is_ident("serde") {
                continue; // doc comments, cfg_attr-free lint attrs, etc.
            }
            inner.next();
            let args = match inner.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                other => panic!("serde_derive: expected serde(...), got {other:?}"),
            };
            let mut items = Cursor::new(args.stream());
            while !items.at_end() {
                let key = items.expect_ident();
                let mut value = None;
                if items.is_punct('=') {
                    items.next();
                    match items.next() {
                        Some(TokenTree::Literal(lit)) => {
                            value = Some(unquote(&lit.to_string()));
                        }
                        other => panic!("serde_derive: expected literal, got {other:?}"),
                    }
                }
                apply(&key, value);
                if items.is_punct(',') {
                    items.next();
                }
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_vis(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skips a balanced `<...>` generics block if present.
    fn skip_generics(&mut self) {
        if !self.is_punct('<') {
            return;
        }
        let mut depth = 0i32;
        while let Some(tok) = self.next() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            return;
                        }
                    }
                    _ => {}
                }
            }
        }
        panic!("serde_derive: unbalanced generics");
    }
}

/// Strips the surrounding quotes from a string-literal token.
fn unquote(lit: &str) -> String {
    let inner = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("serde_derive: expected string literal, got {lit}"));
    // The attribute values used in this workspace contain no escapes.
    inner.to_owned()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(stream: TokenStream) -> Input {
    let mut c = Cursor::new(stream);
    let mut transparent = false;
    c.take_attrs(|key, _| {
        if key == "transparent" {
            transparent = true;
        }
    });
    c.skip_vis();
    let kind = c.expect_ident();
    let name = c.expect_ident();
    c.skip_generics();
    // Skip a `where` clause if one ever appears.
    while !c.at_end() && !matches!(c.peek(), Some(TokenTree::Group(_)) | None) {
        if c.is_punct(';') {
            break;
        }
        c.next();
    }
    let body = match kind.as_str() {
        "struct" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Body::UnitStruct,
        },
        "enum" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };
    Input {
        name,
        transparent,
        body,
    }
}

fn parse_field_attrs(c: &mut Cursor) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    c.take_attrs(|key, value| match key {
        "rename" => attrs.rename = value,
        "default" => attrs.default = true,
        "skip" => attrs.skip = true,
        "skip_serializing_if" => attrs.skip_serializing_if = value,
        other => panic!("serde_derive: unsupported field attribute `{other}`"),
    });
    attrs
}

/// Consumes a type, returning whether its head identifier is `Option`.
/// Stops at a top-level (angle-depth 0) comma, which is left unconsumed.
fn skip_type(c: &mut Cursor) -> bool {
    let mut is_option = false;
    let mut first = true;
    let mut depth = 0i32;
    while let Some(tok) = c.peek() {
        match tok {
            TokenTree::Punct(p) => {
                let ch = p.as_char();
                if ch == ',' && depth == 0 {
                    break;
                }
                if ch == '<' {
                    depth += 1;
                }
                if ch == '>' {
                    depth -= 1;
                }
            }
            TokenTree::Ident(i) if first && i.to_string() == "Option" => {
                is_option = true;
            }
            _ => {}
        }
        first = false;
        c.next();
    }
    is_option
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = parse_field_attrs(&mut c);
        c.skip_vis();
        let name = c.expect_ident();
        c.expect_punct(':');
        let is_option = skip_type(&mut c);
        if c.is_punct(',') {
            c.next();
        }
        fields.push(Field {
            name: Some(name),
            attrs,
            is_option,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while !c.at_end() {
        let _ = parse_field_attrs(&mut c);
        c.skip_vis();
        skip_type(&mut c);
        count += 1;
        if c.is_punct(',') {
            c.next();
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.take_attrs(|_, _| {});
        let name = c.expect_ident();
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                if n == 1 {
                    VariantShape::Newtype
                } else {
                    VariantShape::Tuple(n)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant if present.
        if c.is_punct('=') {
            c.next();
            c.next();
        }
        if c.is_punct(',') {
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let mut out = String::new();
            out.push_str("use serde::ser::SerializeStruct as _;\n");
            let live = fields.iter().filter(|f| !f.attrs.skip).count();
            out.push_str(&format!(
                "let mut __s = serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {live}usize)?;\n"
            ));
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                let key = f.key();
                let fname = f.name.as_ref().expect("named field");
                match &f.attrs.skip_serializing_if {
                    Some(path) => out.push_str(&format!(
                        "if !{path}(&self.{fname}) {{ __s.serialize_field(\"{key}\", &self.{fname})?; }} else {{ __s.skip_field(\"{key}\")?; }}\n"
                    )),
                    None => out.push_str(&format!(
                        "__s.serialize_field(\"{key}\", &self.{fname})?;\n"
                    )),
                }
            }
            out.push_str("__s.end()\n");
            out
        }
        Body::TupleStruct(1) => {
            if input.transparent {
                "serde::ser::Serialize::serialize(&self.0, __serializer)\n".to_owned()
            } else {
                format!(
                    "serde::ser::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)\n"
                )
            }
        }
        Body::TupleStruct(n) => {
            let mut out = String::new();
            out.push_str("use serde::ser::SerializeSeq as _;\n");
            out.push_str(&format!(
                "let mut __s = serde::ser::Serializer::serialize_seq(__serializer, ::std::option::Option::Some({n}usize))?;\n"
            ));
            for i in 0..*n {
                out.push_str(&format!("__s.serialize_element(&self.{i})?;\n"));
            }
            out.push_str("__s.end()\n");
            out
        }
        Body::UnitStruct => "serde::ser::Serializer::serialize_unit(__serializer)\n".to_owned(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::ser::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    VariantShape::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(__v0) => serde::ser::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", __v0),\n"
                    )),
                    VariantShape::Tuple(n) => panic!(
                        "serde_derive: tuple enum variant {name}::{vname} has {n} fields; only newtype variants are supported"
                    ),
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| f.name.clone().expect("named field"))
                            .collect();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nuse serde::ser::SerializeStruct as _;\nlet mut __s = serde::ser::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {len}usize)?;\n",
                            binds.join(", "),
                            len = fields.len(),
                        );
                        for f in fields {
                            let key = f.key();
                            let b = f.name.as_ref().expect("named field");
                            arm.push_str(&format!("__s.serialize_field(\"{key}\", {b})?;\n"));
                        }
                        arm.push_str("__s.end()\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: serde::ser::Serializer>(&self, __serializer: __S) \
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\
             }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Emits the code that rebuilds named fields from collected
/// `Option<Content>` slots `__f{i}`, as a struct-literal body.
fn named_fields_literal(fields: &[Field]) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        let fname = f.name.as_ref().expect("named field");
        let key = f.key();
        let missing = if f.attrs.skip || f.attrs.default {
            "::std::default::Default::default()".to_owned()
        } else if f.is_option {
            "::std::option::Option::None".to_owned()
        } else {
            format!(
                "return ::std::result::Result::Err(<__D::Error as serde::de::Error>::missing_field(\"{key}\"))"
            )
        };
        out.push_str(&format!(
            "{fname}: match __f{i} {{\n\
                 ::std::option::Option::Some(__v) => serde::de::from_content::<_, __D::Error>(__v)?,\n\
                 ::std::option::Option::None => {missing},\n\
             }},\n"
        ));
    }
    out
}

/// Emits slot declarations plus the key-matching scan loop over `__entries`.
fn named_fields_scan(fields: &[Field]) -> String {
    let mut out = String::new();
    for (i, _) in fields.iter().enumerate() {
        out.push_str(&format!(
            "let mut __f{i}: ::std::option::Option<serde::de::Content> = ::std::option::Option::None;\n"
        ));
    }
    out.push_str("for (__k, __v) in __entries {\nmatch __k.as_str() {\n");
    for (i, f) in fields.iter().enumerate() {
        if f.attrs.skip {
            continue;
        }
        let key = f.key();
        out.push_str(&format!(
            "\"{key}\" => __f{i} = ::std::option::Option::Some(__v),\n"
        ));
    }
    out.push_str("_ => {}\n}\n}\n");
    out
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let scan = named_fields_scan(fields);
            let build = named_fields_literal(fields);
            format!(
                "let __entries = match serde::de::Deserializer::take_content(__deserializer)? {{\n\
                     serde::de::Content::Map(__m) => __m,\n\
                     __other => return ::std::result::Result::Err(<__D::Error as serde::de::Error>::invalid_type(__other.kind(), \"struct {name}\")),\n\
                 }};\n\
                 {scan}\
                 ::std::result::Result::Ok({name} {{\n{build}}})\n"
            )
        }
        Body::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(serde::de::from_content::<_, __D::Error>(\
                 serde::de::Deserializer::take_content(__deserializer)?)?))\n"
        ),
        Body::TupleStruct(n) => {
            let mut build = String::new();
            for _ in 0..*n {
                build.push_str(
                    "serde::de::from_content::<_, __D::Error>(__iter.next().expect(\"length checked\"))?,\n",
                );
            }
            format!(
                "let __items = match serde::de::Deserializer::take_content(__deserializer)? {{\n\
                     serde::de::Content::Seq(__s) if __s.len() == {n} => __s,\n\
                     __other => return ::std::result::Result::Err(<__D::Error as serde::de::Error>::invalid_type(__other.kind(), \"tuple struct {name}\")),\n\
                 }};\n\
                 let mut __iter = __items.into_iter();\n\
                 ::std::result::Result::Ok({name}({build}))\n"
            )
        }
        Body::UnitStruct => format!(
            "match serde::de::Deserializer::take_content(__deserializer)? {{\n\
                 serde::de::Content::Null => ::std::result::Result::Ok({name}),\n\
                 __other => ::std::result::Result::Err(<__D::Error as serde::de::Error>::invalid_type(__other.kind(), \"unit struct {name}\")),\n\
             }}\n"
        ),
        Body::Enum(variants) => {
            let expected: Vec<String> = variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let expected = expected.join(", ");
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantShape::Newtype => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(serde::de::from_content::<_, __D::Error>(__v)?)),\n"
                    )),
                    VariantShape::Tuple(n) => panic!(
                        "serde_derive: tuple enum variant {name}::{vname} has {n} fields; only newtype variants are supported"
                    ),
                    VariantShape::Struct(fields) => {
                        let scan = named_fields_scan(fields);
                        let build = named_fields_literal(fields);
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __entries = match __v {{\n\
                                     serde::de::Content::Map(__m) => __m,\n\
                                     __other => return ::std::result::Result::Err(<__D::Error as serde::de::Error>::invalid_type(__other.kind(), \"struct variant {name}::{vname}\")),\n\
                                 }};\n\
                                 {scan}\
                                 ::std::result::Result::Ok({name}::{vname} {{\n{build}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "match serde::de::Deserializer::take_content(__deserializer)? {{\n\
                     serde::de::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(<__D::Error as serde::de::Error>::unknown_variant(__other, &[{expected}])),\n\
                     }},\n\
                     serde::de::Content::Map(__m) if __m.len() == 1 => {{\n\
                         let (__k, __v) = __m.into_iter().next().expect(\"length checked\");\n\
                         match __k.as_str() {{\n\
                             {data_arms}\
                             __other => ::std::result::Result::Err(<__D::Error as serde::de::Error>::unknown_variant(__other, &[{expected}])),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(<__D::Error as serde::de::Error>::invalid_type(__other.kind(), \"enum {name}\")),\n\
                 }}\n"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::de::Deserializer<'de>>(__deserializer: __D) \
                 -> ::std::result::Result<Self, __D::Error> {{\n\
                 #[allow(unused)] use serde::de::Error as _;\n\
                 {body}\
             }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives the vendored `serde::ser::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to tokenize")
}

/// Derives the vendored `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to tokenize")
}
