//! Minimal, API-compatible stand-in for the `rand` crate (0.8-era surface).
//!
//! Implements the subset the workspace uses: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods `gen`,
//! `gen_range` and `gen_bool`, and [`seq::SliceRandom`] shuffling. The
//! generator is xoshiro256++ with a SplitMix64 seed expander — deterministic
//! for a given seed on every platform, which is all the synthetic-corpus
//! pipeline needs.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the stand-in for rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Samples a uniformly random value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range; panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty)*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let offset = rng.next_u64() % span;
                (self.start as $wide).wrapping_add(offset as $wide) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = rng.next_u64() % (span + 1);
                (start as $wide).wrapping_add(offset as $wide) as $t
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_range_float {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32 f64);

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64, like rand's own small-rng family.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::RngCore;

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
