#!/usr/bin/env python3
"""Merges BENCH_*.json artifacts into one readable markdown table.

The perf-smoke job prints the table in its log and uploads it as
``BENCH_summary.md``, so the bench trajectory is visible per run without
downloading the raw line-JSON artifacts.  Percentile columns (p50/p99)
render as a dash for legacy artifacts recorded before the criterion shim
tracked them.

Usage: python3 ci/bench_summary.py BENCH_*.json > BENCH_summary.md
"""

import json
import os
import sys


def human(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("µs", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def main(paths):
    if not paths:
        sys.exit("usage: bench_summary.py BENCH_file.json [BENCH_file.json ...]")
    print("| artifact | bench id | best | mean ± stddev | p50 | p99 | samples |")
    print("|---|---|---|---|---|---|---|")
    rows = 0
    # Sorted so BENCH_summary.md row order is stable across CI runs
    # regardless of shell-glob or upload ordering.
    for path in sorted(paths):
        name = os.path.basename(path)
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                # Pre-stats-shim records carry only best_ns; pre-percentile
                # records lack p50/p99.  Render what exists rather than
                # refusing the whole artifact.
                if "mean_ns" in rec and "stddev_ns" in rec:
                    spread = f"{human(rec['mean_ns'])} ± {human(rec['stddev_ns'])}"
                else:
                    spread = "—"
                p50 = human(rec["p50_ns"]) if "p50_ns" in rec else "—"
                p99 = human(rec["p99_ns"]) if "p99_ns" in rec else "—"
                print(
                    f"| {name} | {rec['id']} | {human(rec['best_ns'])} "
                    f"| {spread} | {p50} | {p99} | {rec.get('samples', '—')} |"
                )
                rows += 1
    if rows == 0:
        sys.exit("no bench records found in the given artifacts")


if __name__ == "__main__":
    main(sys.argv[1:])
