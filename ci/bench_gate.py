#!/usr/bin/env python3
"""Unified CI bench gate for the perf-smoke job.

Each ``BENCH_*.json`` artifact (one JSON object per line, written by the
vendored criterion shim when ``BENCH_JSON`` is set) records
best/mean/stddev/p50/p99 per bench id.  ``MANIFEST`` lists, per artifact,
the ``(new, baseline)`` id pairs that must satisfy
``new.metric < baseline.metric`` for every gated metric — ``best_ns`` by
default, optionally ``p99_ns`` too for latency-sensitive paths (the serve
gate compares tails, not just bests).  An entry may carry a fourth
element, ``max_ratio``: the gate then allows ``new`` up to
``baseline * max_ratio`` instead of demanding a strict win — used for
overhead budgets ("the fault-aware engine may cost at most 5% on the
healthy path") rather than speedup claims.  Every "the new implementation
must beat its in-bench legacy replica at jobs=1" gate goes through here
instead of a copy-pasted inline-Python step per bench.

Best-of-N is compared rather than means: on shared runners a single noisy
sample inflates a 10-sample mean, while the best observation is stable —
this keeps the gate meaningful without flaking.  The p99 gates lean on the
margin being large (indexed lookups beat full scans by an order of
magnitude), so tail noise cannot flip them.

Every artifact named in ``MANIFEST`` is **required**: a listed artifact
that was not passed on the command line, or whose file is missing or
empty, is a hard failure — a bench that silently never ran must not pass
the gate.  Jobs that only run a slice of the benches (the fault-smoke job
produces just ``BENCH_faults.json``) pass ``--subset``: only the named
artifacts are then required, but each is still gated in full.

Usage: python3 ci/bench_gate.py [--subset] BENCH_mlkit.json ...
"""

import json
import os
import sys

# Per artifact: (new_id, baseline_id) gated on best_ns,
# (new_id, baseline_id, (metric, ...)) to gate several metrics, or
# (new_id, baseline_id, (metric, ...), max_ratio) to gate an overhead
# budget (new < baseline * max_ratio) instead of a strict win.
MANIFEST = {
    "BENCH_mlkit.json": [
        ("mlkit_fit/batched/jobs_1", "mlkit_fit/legacy_per_sample"),
    ],
    "BENCH_textkit.json": [
        ("textkit_preprocess/new/jobs_1", "textkit_preprocess/legacy"),
        ("textkit_corpus_encode/new/jobs_1", "textkit_corpus_encode/legacy"),
    ],
    "BENCH_names.json": [
        ("names_vendor_sweep/new/jobs_1", "names_vendor_sweep/legacy"),
        ("names_product_sweep/new/jobs_1", "names_product_sweep/legacy"),
    ],
    "BENCH_crawl.json": [
        ("crawl_estimate/new/jobs_1", "crawl_estimate/legacy"),
    ],
    "BENCH_serve.json": [
        # The headline serve gate is latency-aware: indexed lookups must
        # beat the linear-scan replica on the best observation AND at p99.
        (
            "serve_point_lookup/new/jobs_1",
            "serve_point_lookup/legacy",
            ("best_ns", "p99_ns"),
        ),
        ("serve_mixed/new/jobs_1", "serve_mixed/legacy", ("best_ns", "p99_ns")),
        ("serve_single_lookup/new", "serve_single_lookup/legacy"),
    ],
    "BENCH_ingest.json": [
        # Incremental ingestion: absorbing one dated delta through the warm
        # CleanState must beat batch-cleaning the accumulated corpus from
        # scratch — on the best observation AND at the p99 tail, since the
        # whole point of the carry-over caches is steady-state latency.
        (
            "ingest_delta/incremental/jobs_1",
            "ingest_delta/from_scratch",
            ("best_ns", "p99_ns"),
        ),
        ("ingest_serve/apply_delta", "ingest_serve/rebuild", ("best_ns", "p99_ns")),
    ],
    "BENCH_faults.json": [
        # Fault handling must be free when nothing fails: the retry engine
        # under an empty plan may cost at most 5% over the plain engine,
        # on the best observation and at the p99 tail.
        (
            "crawl_faults/new/no_fault",
            "crawl_faults/legacy",
            ("best_ns", "p99_ns"),
            1.05,
        ),
        # And recovery must be worth having: quarantining a corrupt feed
        # through the warm state beats re-cleaning the corpus from scratch.
        (
            "ingest_recover/quarantine/jobs_1",
            "ingest_recover/reclean",
            ("best_ns", "p99_ns"),
        ),
    ],
    "BENCH_quality.json": [
        # Quality assessment must be near-free: assembling the per-CVE
        # issue ledger during a clean may cost at most 10% over the
        # NullSink silent path, on the best observation and at p99.
        (
            "quality_clean/ledger/jobs_1",
            "quality_clean/silent",
            ("best_ns", "p99_ns"),
            1.10,
        ),
    ],
}

DEFAULT_METRICS = ("best_ns",)


def load_stats(path):
    stats = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                rec = json.loads(line)
                stats[rec["id"]] = rec
    return stats


def describe(rec):
    tail = ""
    if "p50_ns" in rec and "p99_ns" in rec:
        tail = f", p50 {rec['p50_ns']:.0f}, p99 {rec['p99_ns']:.0f}"
    return (
        f"best {rec['best_ns']:.0f} ns "
        f"(mean {rec['mean_ns']:.0f} ± {rec['stddev_ns']:.0f}{tail}, "
        f"n={rec['samples']})"
    )


def main(argv):
    subset = "--subset" in argv
    paths = [a for a in argv if a != "--subset"]
    if not paths:
        sys.exit("usage: bench_gate.py [--subset] BENCH_file.json [BENCH_file.json ...]")
    given = {os.path.basename(p) for p in paths}
    if not subset:
        unlisted = sorted(set(MANIFEST) - given)
        if unlisted:
            sys.exit(
                "manifest artifact(s) never passed to the gate — a skipped bench "
                f"must not pass silently: {unlisted}"
            )
    failures = []
    checked = 0
    for path in paths:
        name = os.path.basename(path)
        pairs = MANIFEST.get(name)
        if pairs is None:
            sys.exit(f"{name}: no manifest entry — add its gates to ci/bench_gate.py")
        if not os.path.exists(path):
            sys.exit(f"{name}: artifact file {path!r} is missing — did its bench run?")
        stats = load_stats(path)
        if not stats:
            sys.exit(f"{name}: artifact file {path!r} is empty — did its bench run?")
        for entry in pairs:
            new_id, baseline_id = entry[0], entry[1]
            metrics = entry[2] if len(entry) > 2 else DEFAULT_METRICS
            max_ratio = entry[3] if len(entry) > 3 else 1.0
            missing = [i for i in (new_id, baseline_id) if i not in stats]
            if missing:
                sys.exit(f"{name}: bench id(s) missing from artifact: {missing}")
            new, baseline = stats[new_id], stats[baseline_id]
            print(f"{name}: {new_id}: {describe(new)}")
            print(f"{name}: {baseline_id}: {describe(baseline)}")
            for metric in metrics:
                absent = [i for i in (new_id, baseline_id) if metric not in stats[i]]
                if absent:
                    sys.exit(
                        f"{name}: metric {metric!r} absent from {absent} — "
                        "regenerate the artifact with the current criterion shim"
                    )
                checked += 1
                if new[metric] < baseline[metric] * max_ratio:
                    ratio = new[metric] / baseline[metric]
                    if max_ratio > 1.0:
                        print(
                            f"{name}: OK [{metric}] — {new_id} is {ratio:.3f}x "
                            f"of {baseline_id} (budget {max_ratio:.2f}x)"
                        )
                    else:
                        print(
                            f"{name}: OK [{metric}] — {new_id} is {1 / ratio:.2f}x "
                            f"faster than {baseline_id}"
                        )
                else:
                    bound = (
                        f"exceeds {max_ratio:.2f}x of"
                        if max_ratio > 1.0
                        else "is no faster than"
                    )
                    failures.append(
                        f"{name}: {new_id} {bound} {baseline_id} on {metric}"
                    )
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        sys.exit(1)
    print(f"all {checked} bench gates passed")


if __name__ == "__main__":
    main(sys.argv[1:])
