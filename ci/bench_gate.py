#!/usr/bin/env python3
"""Unified CI bench gate for the perf-smoke job.

Each ``BENCH_*.json`` artifact (one JSON object per line, written by the
vendored criterion shim when ``BENCH_JSON`` is set) records best/mean/stddev
per bench id.  ``MANIFEST`` lists, per artifact, the ``(new, baseline)`` id
pairs that must satisfy ``new.best_ns < baseline.best_ns`` — every "the new
implementation must beat its in-bench legacy replica at jobs=1" gate goes
through here instead of a copy-pasted inline-Python step per bench.

Best-of-N is compared rather than means: on shared runners a single noisy
sample inflates a 10-sample mean, while the best observation is stable —
this keeps the gate meaningful without flaking.

Usage: python3 ci/bench_gate.py BENCH_mlkit.json BENCH_textkit.json ...
"""

import json
import os
import sys

MANIFEST = {
    "BENCH_mlkit.json": [
        ("mlkit_fit/batched/jobs_1", "mlkit_fit/legacy_per_sample"),
    ],
    "BENCH_textkit.json": [
        ("textkit_preprocess/new/jobs_1", "textkit_preprocess/legacy"),
        ("textkit_corpus_encode/new/jobs_1", "textkit_corpus_encode/legacy"),
    ],
    "BENCH_names.json": [
        ("names_vendor_sweep/new/jobs_1", "names_vendor_sweep/legacy"),
        ("names_product_sweep/new/jobs_1", "names_product_sweep/legacy"),
    ],
    "BENCH_crawl.json": [
        ("crawl_estimate/new/jobs_1", "crawl_estimate/legacy"),
    ],
}


def load_stats(path):
    stats = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                rec = json.loads(line)
                stats[rec["id"]] = rec
    return stats


def describe(rec):
    return (
        f"best {rec['best_ns']:.0f} ns "
        f"(mean {rec['mean_ns']:.0f} ± {rec['stddev_ns']:.0f}, n={rec['samples']})"
    )


def main(paths):
    if not paths:
        sys.exit("usage: bench_gate.py BENCH_file.json [BENCH_file.json ...]")
    failures = []
    for path in paths:
        name = os.path.basename(path)
        pairs = MANIFEST.get(name)
        if pairs is None:
            sys.exit(f"{name}: no manifest entry — add its gates to ci/bench_gate.py")
        stats = load_stats(path)
        for new_id, baseline_id in pairs:
            missing = [i for i in (new_id, baseline_id) if i not in stats]
            if missing:
                sys.exit(f"{name}: bench id(s) missing from artifact: {missing}")
            new, baseline = stats[new_id], stats[baseline_id]
            print(f"{name}: {new_id}: {describe(new)}")
            print(f"{name}: {baseline_id}: {describe(baseline)}")
            if new["best_ns"] < baseline["best_ns"]:
                speedup = baseline["best_ns"] / new["best_ns"]
                print(f"{name}: OK — {new_id} is {speedup:.2f}x faster than {baseline_id}")
            else:
                failures.append(f"{name}: {new_id} is no faster than {baseline_id}")
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        sys.exit(1)
    print(f"all {sum(len(MANIFEST[os.path.basename(p)]) for p in paths)} bench gates passed")


if __name__ == "__main__":
    main(sys.argv[1:])
