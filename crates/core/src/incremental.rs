//! Incremental ingestion: delta-aware cleaning with carry-over state.
//!
//! The real NVD is a stream of dated `recent`/`modified` feeds, not the
//! one-shot batch file [`crate::cleaner::Cleaner`] consumes. [`CleanState`]
//! makes the pipeline pay only for what changed: it accumulates delivered
//! entries and persists, across deltas,
//!
//! - per-CVE **disclosure estimates** (§4.1) — only touched CVEs are
//!   re-crawled, sound because per-URL crawl results are batch-invariant
//!   (pinned in `disclosure::engine_matches_legacy_per_entry`);
//! - the §4.2 **vendor sweep carry-over** ([`VendorSweepCache`]) — edit
//!   blocks and pair annotations are reused when their inputs are
//!   untouched — and the per-vendor **product sweeps**, re-run only for
//!   vendors whose (consolidated) product set changed;
//! - per-CVE **mined CWE ids** (§4.4) — descriptions are scanned once per
//!   delivered version, then replayed through the serial apply half;
//! - per-document **text features**: an incrementally maintained [`Idf`]
//!   over primary descriptions (document counts are order-independent, so
//!   add/remove replay is bit-identical to a fresh corpus fit).
//!
//! The §4.3 severity backport is the one stage that stays whole-corpus:
//! its stratified train/test split is a global function of the label
//! population, so any touched entry can reshuffle it. It is re-run per
//! delta when enabled (pure — it never mutates the database), and the
//! bench axis therefore gates the pipeline with the backport off.
//!
//! # The determinism contract
//!
//! Applying deltas `d1..dn` through one [`CleanState`] returns, at every
//! step, **bit-identical** results to batch-cleaning the accumulated
//! corpus from scratch with the same options — at any `NVD_JOBS`. The
//! caches above never change *what* is computed, only whether a pure
//! per-item result is recomputed; `tests/determinism.rs` enforces the
//! contract over seeded and property-sampled delta sequences.
//!
//! # Transactional ingestion
//!
//! Raw feeds enter through [`CleanState::ingest_json`] /
//! [`CleanState::ingest_document`] with validate-then-commit semantics: a
//! feed that fails to parse mutates nothing ([`IngestError`]), poison
//! *items* inside a parseable feed are isolated into the
//! [`QuarantineLedger`] while the rest are admitted, and replaying a
//! corrected feed after a rollback is bit-identical to never having seen
//! the broken one (`tests/faults.rs` proves both properties over seeded
//! and property-sampled corruption).
//!
//! # Lifecycle
//!
//! ```
//! use nvd_clean::incremental::CleanState;
//! use nvd_clean::cleaner::CleanOptions;
//! use nvd_clean::names::OracleVerifier;
//! use nvd_synth::delta::generate_delta_stream;
//! use nvd_synth::SynthConfig;
//!
//! let stream = generate_delta_stream(&SynthConfig::with_scale(0.002, 7), 3);
//! let oracle = OracleVerifier::new(stream.corpus.truth.vendor_alias_map());
//! let mut state = CleanState::new(CleanOptions {
//!     run_backport: false,
//!     ..CleanOptions::default()
//! });
//! // The base snapshot is just the first (large) delta.
//! let base: Vec<_> = stream.base.iter().cloned().collect();
//! state.apply_delta(&base, &stream.corpus.archive, &oracle);
//! for feed in &stream.feeds {
//!     let out = state.apply_delta(&feed.entries(), &stream.corpus.archive, &oracle);
//!     assert_eq!(out.database.len(), out.report.disclosure.len());
//! }
//! ```

use std::collections::{BTreeMap, BTreeSet};

use nvd_model::cwe::{CweCatalog, CweId};
use nvd_model::entry::CveEntry;
use nvd_model::feed::{item_to_entry, parse_feed_json, FeedDocument, FeedError};
use nvd_model::prelude::{CveId, Database, ProductName, VendorName};
use textkit::{preprocess, Idf};
use webarchive::WebArchive;

use crate::cleaner::{confirm_product, CleanOptions, CleanOutcome, CleanReport, NameReport};
use crate::cwe_fix::{apply_mined_cwe_ids, mine_entry_cwe_ids, CweFixOutcome};
use crate::disclosure::{DisclosureEstimate, DisclosureEstimator};
use crate::names::product::sweep_vendor;
use crate::names::{
    find_vendor_candidates_cached, NameMapping, PatternBreakdown, ProductCandidate,
    VendorSweepCache, Verifier,
};
use crate::quality::QualityLedger;
use crate::severity::backport_v3;

/// Hashing seed for the carried text-feature state, matching the type
/// classifier's default so the maintained IDF is directly reusable there.
const TEXT_SEED: u64 = 0x7c1f;

/// Why one feed failed to ingest as a whole. Produced by
/// [`CleanState::ingest_json`] *before* any state mutation: an `Err`
/// leaves the state bit-identical to never having seen the feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The feed text is not a parseable feed document (truncated JSON,
    /// schema mismatch).
    MalformedFeed {
        /// The underlying parse error.
        msg: String,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MalformedFeed { msg } => write!(f, "ingest: malformed feed: {msg}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Why one feed item was quarantined instead of admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The item failed to convert: malformed id, date, vector string,
    /// CWE label or CPE URI.
    MalformedItem {
        /// The conversion error.
        msg: String,
    },
    /// The item's CVE id appears more than once in the feed with
    /// *different* content, so no copy can be trusted. (Identical
    /// repeats are collapsed silently: the first copy is admitted.)
    ConflictingDuplicate,
}

/// One quarantined feed item: which feed it arrived in, the raw id string
/// it carried, and why it was isolated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// The caller's label for the feed (e.g. its date).
    pub feed: String,
    /// The raw `CVE_data_meta.ID` string of the item (not necessarily a
    /// valid CVE id).
    pub raw_id: String,
    /// Why the item was quarantined.
    pub reason: QuarantineReason,
}

/// The accumulated quarantine ledger: every poison item isolated across
/// all ingested feeds, in ingestion order. Deterministic — bit-identical
/// at any `NVD_JOBS` — because quarantine decisions are made serially in
/// feed order during validation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineLedger {
    records: Vec<QuarantineRecord>,
}

impl QuarantineLedger {
    /// All records, in ingestion order.
    pub fn records(&self) -> &[QuarantineRecord] {
        &self.records
    }

    /// Number of quarantined items.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been quarantined.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// What one successful transactional ingest produced.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// The clean outcome over the accumulated corpus: cleaned database,
    /// report, and the quality ledger (this feed's quarantined items
    /// included as [`crate::quality::IssueKind::Quarantined`] issues).
    pub outcome: CleanOutcome,
    /// Number of entries admitted from this feed (identical repeats
    /// collapse into one admission).
    pub admitted: usize,
    /// The items quarantined from this feed, in feed order (also appended
    /// to [`CleanState::quarantine`]).
    pub quarantined: Vec<QuarantineRecord>,
}

/// One vendor's cached §4.2 product sweep: the consolidated product set it
/// was computed over, plus the resulting candidates.
#[derive(Debug, Clone)]
struct ProductSweepEntry {
    products: BTreeSet<ProductName>,
    candidates: Vec<ProductCandidate>,
}

/// Per-document text-feature carry-over: the preprocessed terms of each
/// CVE's primary description and the incrementally maintained IDF over
/// them.
///
/// Updates are folded lazily: `apply_delta` only records each delivered
/// entry's primary description in `pending`, and [`CleanState::idf`]
/// replays the pending add/remove pairs on first use — so deltas that
/// never consult the text features don't pay for preprocessing. Document
/// frequencies are order-independent counts, so the deferred replay is
/// bit-identical to an eager fold (and to a fresh corpus fit).
#[derive(Debug, Clone)]
struct TextState {
    idf: Idf,
    terms: BTreeMap<CveId, Vec<String>>,
    pending: Vec<(CveId, Option<String>)>,
}

/// Persistent cleaning state for incremental ingestion. See the module
/// docs for the carried caches and the determinism contract.
#[derive(Debug, Clone)]
pub struct CleanState {
    options: CleanOptions,
    /// The accumulated raw corpus (every delivered entry, latest version).
    database: Database,
    disclosure: BTreeMap<CveId, DisclosureEstimate>,
    vendor_cache: VendorSweepCache,
    product_cache: BTreeMap<VendorName, ProductSweepEntry>,
    cwe_mined: BTreeMap<CveId, Vec<CweId>>,
    text: TextState,
    quarantine: QuarantineLedger,
}

impl CleanState {
    /// An empty state; the base snapshot is applied as the first delta.
    pub fn new(options: CleanOptions) -> Self {
        Self {
            options,
            database: Database::new(),
            disclosure: BTreeMap::new(),
            vendor_cache: VendorSweepCache::default(),
            product_cache: BTreeMap::new(),
            cwe_mined: BTreeMap::new(),
            text: TextState {
                idf: Idf::new(TEXT_SEED),
                terms: BTreeMap::new(),
                pending: Vec::new(),
            },
            quarantine: QuarantineLedger::default(),
        }
    }

    /// The accumulated quarantine ledger over every ingested feed.
    pub fn quarantine(&self) -> &QuarantineLedger {
        &self.quarantine
    }

    /// The accumulated raw (uncleaned) corpus: every delivered entry in
    /// arrival order, same-id redeliveries replaced in place.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The carried per-CVE disclosure estimates.
    pub fn disclosure(&self) -> &BTreeMap<CveId, DisclosureEstimate> {
        &self.disclosure
    }

    /// The incrementally maintained IDF over primary descriptions —
    /// bit-identical to a fresh fit over the accumulated corpus. Pending
    /// per-delta updates are folded in on first use.
    pub fn idf(&mut self) -> &Idf {
        for (id, text) in std::mem::take(&mut self.text.pending) {
            if let Some(old_terms) = self.text.terms.remove(&id) {
                self.text.idf.remove_document(&old_terms);
            }
            if let Some(text) = text {
                let terms = preprocess(&text);
                self.text.idf.add_document(&terms);
                self.text.terms.insert(id, terms);
            }
        }
        &self.text.idf
    }

    /// Applies one dated delta (new CVEs and modified redeliveries),
    /// returning the cleaned accumulated corpus, its report, and the
    /// quality ledger — bit-identical to
    /// `Cleaner::new(options).clean(state.database(), …)` after the same
    /// entries were pushed (the ledger additionally carries
    /// [`crate::quality::IssueKind::Quarantined`] issues for items the
    /// ingest path isolated, which the batch pipeline never sees).
    pub fn apply_delta<V: Verifier + Sync>(
        &mut self,
        delta: &[CveEntry],
        archive: &WebArchive,
        verifier: &V,
    ) -> CleanOutcome {
        // Fold the delta into the accumulated corpus. Text-feature updates
        // are queued for the lazy fold in [`Self::idf`]; the §4.2 dirty
        // set collects every vendor whose CPE rows may change — those of
        // each delivered entry's old and new versions.
        let mut touched: BTreeSet<CveId> = BTreeSet::new();
        let mut dirty_vendors: BTreeSet<VendorName> = BTreeSet::new();
        for entry in delta {
            if let Some(old) = self.database.get(&entry.id) {
                dirty_vendors.extend(old.affected.iter().map(|c| c.vendor.clone()));
            }
            dirty_vendors.extend(entry.affected.iter().map(|c| c.vendor.clone()));
            self.text
                .pending
                .push((entry.id, entry.primary_description().map(str::to_owned)));
            touched.insert(entry.id);
            self.database.push(entry.clone());
        }

        // §4.1 — disclosure for touched CVEs only. Crawl results are pure
        // per (archive, crawlers, url) and the estimate folds one entry's
        // results, so estimating a touched-only sub-database equals the
        // corresponding slice of a full-corpus estimate.
        let estimator = DisclosureEstimator::new(archive)
            .with_crawlers(self.options.crawlers.clone())
            .with_rule(self.options.aggregation);
        let touched_db = Database::from_entries(
            touched
                .iter()
                .map(|id| self.database.get(id).expect("just pushed").clone()),
        );
        for (id, est) in estimator.estimate_all(&touched_db) {
            self.disclosure.insert(id, est);
        }

        // §4.4 mining half — re-scan only touched entries' descriptions
        // (the names pass below never edits descriptions, so mining the
        // raw entry equals mining the name-cleaned one).
        let touched_entries: Vec<&CveEntry> = touched
            .iter()
            .map(|id| self.database.get(id).expect("just pushed"))
            .collect();
        let catalog = CweCatalog::builtin();
        let mined = minipar::par_map(&touched_entries, |e| mine_entry_cwe_ids(e, &catalog));
        for (id, ids) in touched.iter().zip(mined) {
            self.cwe_mined.insert(*id, ids);
        }

        // §4.2 — vendor names through the sweep carry-over; verification
        // and mapping construction are cheap whole-corpus passes, re-run
        // exactly as the batch pipeline does.
        let vendor_candidates =
            find_vendor_candidates_cached(&self.database, &mut self.vendor_cache, &dirty_vendors);
        let confirmed_flags: Vec<bool> =
            minipar::par_map(&vendor_candidates, |c| verifier.confirm(c));
        let confirmed: Vec<_> = vendor_candidates
            .iter()
            .zip(&confirmed_flags)
            .filter(|(_, &ok)| ok)
            .map(|(c, _)| c.clone())
            .collect();
        let pattern_breakdown = PatternBreakdown::tabulate(&vendor_candidates, &confirmed_flags);
        let mut mapping = NameMapping::build_vendor(&confirmed, &self.database);

        // §4.2 — product names: rebuild the consolidated vendor → products
        // map (the mapping may have changed), then re-sweep only vendors
        // whose product set did.
        let product_candidates = self.product_candidates_cached(&mapping);
        let product_confirmed: Vec<_> = product_candidates
            .iter()
            .filter(|c| confirm_product(c))
            .cloned()
            .collect();
        mapping.extend_products(&product_confirmed, &self.database);

        let mut cleaned = self.database.clone();
        let vendors_before = cleaned.vendor_set().len();
        let products_before = cleaned.product_set().len();
        let apply_stats = mapping.apply(&mut cleaned);
        let names = NameReport {
            vendors_before,
            vendors_after: cleaned.vendor_set().len(),
            products_before,
            products_after: cleaned.product_set().len(),
            vendor_candidates: vendor_candidates.len(),
            vendor_confirmed: confirmed.len(),
            product_candidates: product_candidates.len(),
            product_confirmed: product_confirmed.len(),
            pattern_breakdown,
            mapping,
            apply_stats,
        };

        // §4.4 apply half — replay the cached mined ids serially in entry
        // order, exactly as `rectify_cwe` would.
        let mined_per_entry: Vec<Vec<CweId>> = cleaned
            .iter()
            .map(|e| self.cwe_mined.get(&e.id).expect("mined on arrival").clone())
            .collect();
        let cwe: CweFixOutcome = apply_mined_cwe_ids(&mut cleaned, mined_per_entry);

        // §4.3 — severity backport: inherently whole-corpus (stratified
        // split over the label population), re-run when enabled.
        let severity = if self.options.run_backport {
            Some(backport_v3(&cleaned, &self.options.backport))
        } else {
            None
        };

        let disclosure = self.disclosure.clone();
        let report = CleanReport {
            disclosure,
            names,
            severity,
            cwe,
        };
        // Quality assessment over the whole accumulated corpus: detectors
        // read only (cleaned, report, quarantine) — all of which equal the
        // batch pipeline's on the same corpus (quarantine is empty on the
        // pure-delta path) — so the ledger is bit-identical batch vs
        // incremental at every step.
        let ledger = QualityLedger::assemble(&cleaned, &report, &self.quarantine);
        CleanOutcome {
            database: cleaned,
            report,
            ledger,
        }
    }

    /// Transactionally ingests one feed from raw JSON text.
    ///
    /// Validate-then-commit, all-or-nothing at the feed level: the text is
    /// parsed and every item converted *before* any state is touched, so
    /// an `Err` (truncated or schema-broken JSON) provably mutates
    /// nothing — re-ingesting a corrected feed afterwards is bit-identical
    /// to never having seen the broken one. Within a parseable feed,
    /// poison *items* are isolated into the quarantine ledger and the
    /// rest are admitted; see [`CleanState::ingest_document`].
    ///
    /// # Errors
    ///
    /// [`IngestError::MalformedFeed`] when the text does not parse as a
    /// feed document.
    pub fn ingest_json<V: Verifier + Sync>(
        &mut self,
        feed_label: &str,
        json: &str,
        archive: &WebArchive,
        verifier: &V,
    ) -> Result<IngestOutcome, IngestError> {
        let doc =
            parse_feed_json(json).map_err(|e| IngestError::MalformedFeed { msg: e.to_string() })?;
        Ok(self.ingest_document(feed_label, &doc, archive, verifier))
    }

    /// Transactionally ingests one parsed feed document.
    ///
    /// The validation phase converts every item and groups duplicates
    /// without touching `self`:
    ///
    /// * items that fail to convert are quarantined as
    ///   [`QuarantineReason::MalformedItem`];
    /// * ids repeated with identical content collapse benignly — the
    ///   first copy is admitted, the repeats are dropped silently;
    /// * ids repeated with *conflicting* content quarantine every copy
    ///   ([`QuarantineReason::ConflictingDuplicate`]): no copy can be
    ///   trusted, and admitting one arbitrarily would poison the corpus.
    ///
    /// Only then does the commit phase run: one ordinary
    /// [`CleanState::apply_delta`] over the admitted entries (in feed
    /// order) plus a ledger append — both infallible, so a feed either
    /// commits in full or, had validation been an error path, would have
    /// left the state untouched.
    pub fn ingest_document<V: Verifier + Sync>(
        &mut self,
        feed_label: &str,
        doc: &FeedDocument,
        archive: &WebArchive,
        verifier: &V,
    ) -> IngestOutcome {
        // Validation: convert every item, recording per-item quarantine
        // reasons, with no self-mutation.
        let mut converted: Vec<Option<CveEntry>> = Vec::with_capacity(doc.items.len());
        let mut reasons: Vec<Option<QuarantineReason>> = vec![None; doc.items.len()];
        for (i, item) in doc.items.iter().enumerate() {
            match item_to_entry(item) {
                Ok(entry) => converted.push(Some(entry)),
                Err(e) => {
                    let msg = match e {
                        FeedError::Item { msg, .. } => msg,
                        other => other.to_string(),
                    };
                    reasons[i] = Some(QuarantineReason::MalformedItem { msg });
                    converted.push(None);
                }
            }
        }

        // Duplicate grouping over the successfully converted items.
        let mut occurrences: BTreeMap<CveId, Vec<usize>> = BTreeMap::new();
        for (i, entry) in converted.iter().enumerate() {
            if let Some(entry) = entry {
                occurrences.entry(entry.id).or_default().push(i);
            }
        }
        let mut drop = vec![false; doc.items.len()];
        for occ in occurrences.values() {
            if occ.len() < 2 {
                continue;
            }
            let first = converted[occ[0]].as_ref().expect("converted occurrence");
            if occ[1..]
                .iter()
                .all(|&i| converted[i].as_ref().expect("converted occurrence") == first)
            {
                // Benign repeat: admit the first copy, drop the rest.
                for &i in &occ[1..] {
                    drop[i] = true;
                }
            } else {
                for &i in occ {
                    drop[i] = true;
                    reasons[i] = Some(QuarantineReason::ConflictingDuplicate);
                }
            }
        }

        let quarantined: Vec<QuarantineRecord> = reasons
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                r.as_ref().map(|reason| QuarantineRecord {
                    feed: feed_label.to_owned(),
                    raw_id: doc.items[i].cve.meta.id.clone(),
                    reason: reason.clone(),
                })
            })
            .collect();
        let admitted: Vec<CveEntry> = converted
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !drop[*i] && reasons[*i].is_none())
            .filter_map(|(_, e)| e)
            .collect();

        // Commit: infallible from here on. The quarantine append precedes
        // the delta so the returned ledger already carries this feed's
        // `Quarantined` issues.
        self.quarantine.records.extend(quarantined.iter().cloned());
        let outcome = self.apply_delta(&admitted, archive, verifier);
        IngestOutcome {
            outcome,
            admitted: admitted.len(),
            quarantined,
        }
    }

    /// The §4.2 product sweep with per-vendor carry-over: equals
    /// `find_product_candidates(&self.database, mapping)` bit for bit.
    fn product_candidates_cached(&mut self, mapping: &NameMapping) -> Vec<ProductCandidate> {
        let mut products: BTreeMap<VendorName, BTreeSet<ProductName>> = BTreeMap::new();
        for entry in self.database.iter() {
            for cpe in &entry.affected {
                let vendor = mapping.resolve_vendor(&cpe.vendor).clone();
                products
                    .entry(vendor)
                    .or_default()
                    .insert(cpe.product.clone());
            }
        }

        let stale: Vec<(&VendorName, &BTreeSet<ProductName>)> = products
            .iter()
            .filter(|(vendor, names)| {
                self.product_cache
                    .get(*vendor)
                    .is_none_or(|e| &e.products != *names)
            })
            .collect();
        let swept = minipar::par_map(&stale, |&(vendor, names)| sweep_vendor(vendor, names));
        for ((vendor, names), candidates) in stale.into_iter().zip(swept) {
            self.product_cache.insert(
                vendor.clone(),
                ProductSweepEntry {
                    products: names.clone(),
                    candidates,
                },
            );
        }

        // Concatenate per vendor in ascending order — the same order the
        // batch sweep's parallel flatten produces.
        products
            .keys()
            .flat_map(|vendor| {
                self.product_cache
                    .get(vendor)
                    .expect("swept or cached above")
                    .candidates
                    .iter()
                    .cloned()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cleaner::Cleaner;
    use crate::names::OracleVerifier;
    use nvd_synth::delta::generate_delta_stream;
    use nvd_synth::SynthConfig;
    use textkit::PreprocessedCorpus;

    fn options() -> CleanOptions {
        CleanOptions {
            run_backport: false,
            ..CleanOptions::default()
        }
    }

    #[test]
    fn incremental_equals_batch_at_every_delta() {
        let stream = generate_delta_stream(&SynthConfig::with_scale(0.002, 0x1234), 3);
        let oracle = OracleVerifier::new(stream.corpus.truth.vendor_alias_map());
        let mut state = CleanState::new(options());
        let cleaner = Cleaner::new(options());

        let base: Vec<_> = stream.base.iter().cloned().collect();
        let mut steps: Vec<Vec<CveEntry>> = vec![base];
        steps.extend(stream.feeds.iter().map(|f| f.entries()));

        for (i, delta) in steps.iter().enumerate() {
            let inc = state.apply_delta(delta, &stream.corpus.archive, &oracle);
            let batch = cleaner.clean(state.database(), &stream.corpus.archive, &oracle);
            assert_eq!(
                inc.database.as_slice(),
                batch.database.as_slice(),
                "cleaned database diverged after delta {i}"
            );
            // Debug formatting covers every report field, floats included.
            assert_eq!(
                format!("{:?}", inc.report),
                format!("{:?}", batch.report),
                "report diverged after delta {i}"
            );
            assert_eq!(
                inc.ledger, batch.ledger,
                "quality ledger diverged after delta {i}"
            );
        }
    }

    #[test]
    fn malformed_feed_json_mutates_nothing() {
        let stream = generate_delta_stream(&SynthConfig::with_scale(0.002, 0x42), 2);
        let oracle = OracleVerifier::new(stream.corpus.truth.vendor_alias_map());
        let mut state = CleanState::new(options());
        let base: Vec<_> = stream.base.iter().cloned().collect();
        state.apply_delta(&base, &stream.corpus.archive, &oracle);
        let before = state.clone();

        let good = serde_json::to_string(&nvd_model::feed::to_feed(
            &Database::from_entries(stream.feeds[0].entries()),
            "t",
        ))
        .unwrap();
        let truncated = &good[..good.len() * 2 / 3];
        let err = state
            .ingest_json("2020-01-01", truncated, &stream.corpus.archive, &oracle)
            .unwrap_err();
        assert!(matches!(err, IngestError::MalformedFeed { .. }));

        // Rollback is trivial because nothing moved: the state still
        // cleans bit-identically to the pre-failure snapshot.
        assert_eq!(state.database().as_slice(), before.database().as_slice());
        assert_eq!(state.quarantine(), before.quarantine());
        let mut replay = state.clone();
        let out = replay
            .ingest_json("2020-01-01", &good, &stream.corpus.archive, &oracle)
            .unwrap();
        let mut clean_only = before.clone();
        let clean = clean_only
            .ingest_json("2020-01-01", &good, &stream.corpus.archive, &oracle)
            .unwrap();
        assert_eq!(
            out.outcome.database.as_slice(),
            clean.outcome.database.as_slice()
        );
        assert_eq!(
            format!("{:?}", out.outcome.report),
            format!("{:?}", clean.outcome.report)
        );
        assert_eq!(out.outcome.ledger, clean.outcome.ledger);
    }

    #[test]
    fn ingest_quarantines_poison_items_and_admits_the_rest() {
        let stream = generate_delta_stream(&SynthConfig::with_scale(0.002, 0x99), 2);
        let oracle = OracleVerifier::new(stream.corpus.truth.vendor_alias_map());
        let mut state = CleanState::new(options());
        let base: Vec<_> = stream.base.iter().cloned().collect();
        state.apply_delta(&base, &stream.corpus.archive, &oracle);

        let feed_db = Database::from_entries(stream.feeds[0].entries());
        let mut doc = nvd_model::feed::to_feed(&feed_db, "t");
        let total = doc.items.len();
        assert!(total >= 3, "need a non-trivial feed");
        // Item 0: malformed id. Item 1: conflicting duplicate (repeat with
        // a mutated date). Last item: identical benign repeat.
        doc.items[0].cve.meta.id = "CVE-BROKEN".to_owned();
        let mut conflict = doc.items[1].clone();
        conflict.published_date = "1999-01-01".to_owned();
        doc.items.push(conflict);
        let benign = doc.items[total - 1].clone();
        doc.items.push(benign);

        let conflict_id: CveId = doc.items[1].cve.meta.id.parse().unwrap();
        let conflict_before = state.database().get(&conflict_id).cloned();
        let out = state.ingest_document("2020-02-02", &doc, &stream.corpus.archive, &oracle);
        assert_eq!(out.admitted, total - 2, "all but the two poison items");
        assert_eq!(out.quarantined.len(), 3, "broken id + both conflict copies");
        assert!(matches!(
            out.quarantined[0].reason,
            QuarantineReason::MalformedItem { .. }
        ));
        assert_eq!(out.quarantined[0].raw_id, "CVE-BROKEN");
        assert_eq!(out.quarantined[0].feed, "2020-02-02");
        assert!(out.quarantined[1..]
            .iter()
            .all(|r| r.reason == QuarantineReason::ConflictingDuplicate));
        assert_eq!(state.quarantine().len(), 3);
        // Neither conflicting copy was admitted: the id's accumulated
        // version (if the base delivered one) is untouched.
        assert_eq!(state.database().get(&conflict_id), conflict_before.as_ref());

        // The quarantine folds into the unified quality ledger: the broken
        // raw id lands unkeyed, the conflicting copies key to their CVE.
        use crate::quality::IssueKind;
        let ledger = &out.outcome.ledger;
        assert!(ledger
            .unkeyed()
            .iter()
            .any(|(raw, issue)| raw == "CVE-BROKEN" && issue.kind == IssueKind::Quarantined));
        if state.database().get(&conflict_id).is_some() {
            assert!(ledger
                .issues_for(&conflict_id)
                .iter()
                .any(|i| i.kind == IssueKind::Quarantined));
        }
    }

    #[test]
    fn carried_idf_matches_fresh_corpus_fit() {
        let stream = generate_delta_stream(&SynthConfig::with_scale(0.002, 0x77), 2);
        let oracle = OracleVerifier::new(stream.corpus.truth.vendor_alias_map());
        let mut state = CleanState::new(options());
        let base: Vec<_> = stream.base.iter().cloned().collect();
        state.apply_delta(&base, &stream.corpus.archive, &oracle);
        for feed in &stream.feeds {
            state.apply_delta(&feed.entries(), &stream.corpus.archive, &oracle);
        }

        // Materialise the lazily folded IDF, then compare against a fresh
        // corpus fit over the accumulated descriptions.
        let carried = state.idf().clone();
        let texts: Vec<&str> = state
            .database()
            .iter()
            .filter_map(|e| e.primary_description())
            .collect();
        let corpus = PreprocessedCorpus::build(texts.iter().copied(), TEXT_SEED);
        let fresh = Idf::fit_corpus(&corpus);
        assert_eq!(carried.len(), fresh.len());
        // Weight probes over every term hash the fresh fit knows, plus an
        // unseen term (exercises the doc-count-only path).
        for text in texts.iter().take(50) {
            for term in preprocess(text) {
                let h = textkit::encoder::term_features(&[term], TEXT_SEED)
                    .keys()
                    .next()
                    .copied()
                    .expect("one unigram feature");
                assert_eq!(
                    carried.weight(h).to_bits(),
                    fresh.weight(h).to_bits(),
                    "idf weight diverged"
                );
            }
        }
    }
}
