//! The typed quality-assessment layer.
//!
//! The paper's core contribution is *assessment*: every rectification in
//! §4 is first a measurement of how broken an entry is, and only then a
//! fix. This module makes that explicit. Each cleaning stage is a
//! detector that emits typed [`QualityIssue`]s — kind, severity,
//! human-readable evidence, and whether the pipeline auto-fixed the
//! problem or merely flagged it — into a per-CVE [`QualityLedger`]
//! through the [`QualityStage`] / [`QualitySink`] emission pair, instead
//! of mutating silently.
//!
//! Entries and the corpus are scored on three axes
//! ([`ScoreAxis::Completeness`], [`ScoreAxis::Consistency`],
//! [`ScoreAxis::Accuracy`]) with integer-point arithmetic, so scores —
//! like the ledger itself — are **bit-identical** at any `NVD_JOBS` and
//! across the batch and incremental cleaning paths: every detector reads
//! only deterministic report state ([`CleanReport`]) and the cleaned
//! database, in `BTreeMap`/database order, on one thread.
//!
//! The ledger is the payload `nvd-serve` exposes per CVE
//! (`Query::QualityLookup` / `Query::QualityHistogram`) and the source of
//! the `paper-repro --quality-md` report.

use std::collections::BTreeMap;

use nvd_model::cwe::CweLabel;
use nvd_model::prelude::{CveId, Database};

use crate::cleaner::CleanReport;
use crate::incremental::{QuarantineLedger, QuarantineReason};

/// The quality dimension an issue (or a score) speaks to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScoreAxis {
    /// Required data is present (disclosure evidence, CWE label, CVSS v3).
    Completeness,
    /// The entry agrees with the rest of the corpus (canonical names,
    /// no conflicting deliveries).
    Consistency,
    /// Recorded values are right (true disclosure date, concrete CWE).
    Accuracy,
    /// The unweighted mean of the three axes above.
    Overall,
}

impl ScoreAxis {
    /// The three concrete axes, in canonical order (no `Overall`).
    pub const CONCRETE: [ScoreAxis; 3] = [
        ScoreAxis::Completeness,
        ScoreAxis::Consistency,
        ScoreAxis::Accuracy,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Completeness => "completeness",
            Self::Consistency => "consistency",
            Self::Accuracy => "accuracy",
            Self::Overall => "overall",
        }
    }

    /// Stable wire code for checksums and digests.
    pub fn code(self) -> u8 {
        match self {
            Self::Completeness => 0,
            Self::Consistency => 1,
            Self::Accuracy => 2,
            Self::Overall => 3,
        }
    }
}

/// What kind of defect an issue records. One variant per detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IssueKind {
    /// §4.1: no disclosure date could be extracted from any reference
    /// (no references at all, or every fetch came back dead/dateless).
    MissingDisclosure,
    /// §4.1: the NVD publication date post-dates the earliest reference —
    /// the lag the paper measures; the estimate rectifies it.
    PublicationLag,
    /// §4.2: the entry's CPE vendor field used a non-canonical spelling
    /// and was rewritten by the consolidation mapping.
    VendorAlias,
    /// §4.2: the entry's CPE product field used a non-canonical spelling
    /// and was rewritten by the consolidation mapping.
    ProductAlias,
    /// §4.4: the entry carries a degenerate `NVD-CWE-Other` label instead
    /// of a concrete weakness type.
    DegenerateCwe,
    /// §4.4: the entry carries no usable type at all (`NVD-CWE-noinfo` or
    /// unassigned).
    MissingCwe,
    /// §4.3: the entry has no CVSS v3 vector; the backport predicts one
    /// for the v2-only population.
    MissingCvssV3,
    /// Ingestion: a feed item for this id was quarantined instead of
    /// admitted (malformed or a conflicting duplicate).
    Quarantined,
}

impl IssueKind {
    /// Every kind, in canonical (code) order.
    pub const ALL: [IssueKind; 8] = [
        IssueKind::MissingDisclosure,
        IssueKind::PublicationLag,
        IssueKind::VendorAlias,
        IssueKind::ProductAlias,
        IssueKind::DegenerateCwe,
        IssueKind::MissingCwe,
        IssueKind::MissingCvssV3,
        IssueKind::Quarantined,
    ];

    /// Stable wire code for checksums and digests.
    pub fn code(self) -> u8 {
        match self {
            Self::MissingDisclosure => 0,
            Self::PublicationLag => 1,
            Self::VendorAlias => 2,
            Self::ProductAlias => 3,
            Self::DegenerateCwe => 4,
            Self::MissingCwe => 5,
            Self::MissingCvssV3 => 6,
            Self::Quarantined => 7,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::MissingDisclosure => "missing-disclosure",
            Self::PublicationLag => "publication-lag",
            Self::VendorAlias => "vendor-alias",
            Self::ProductAlias => "product-alias",
            Self::DegenerateCwe => "degenerate-cwe",
            Self::MissingCwe => "missing-cwe",
            Self::MissingCvssV3 => "missing-cvss-v3",
            Self::Quarantined => "quarantined",
        }
    }

    /// The score axis this kind of defect degrades.
    pub fn axis(self) -> ScoreAxis {
        match self {
            Self::MissingDisclosure | Self::MissingCwe | Self::MissingCvssV3 => {
                ScoreAxis::Completeness
            }
            Self::VendorAlias | Self::ProductAlias | Self::Quarantined => ScoreAxis::Consistency,
            Self::PublicationLag | Self::DegenerateCwe => ScoreAxis::Accuracy,
        }
    }

    /// Points deducted from the axis when the issue is unresolved
    /// ([`Resolution::NeedsReview`]); auto-fixed issues deduct half.
    pub fn penalty(self) -> u8 {
        match self {
            Self::MissingDisclosure => 25,
            Self::PublicationLag => 10,
            Self::VendorAlias => 20,
            Self::ProductAlias => 15,
            Self::DegenerateCwe => 20,
            Self::MissingCwe => 25,
            Self::MissingCvssV3 => 30,
            Self::Quarantined => 40,
        }
    }

    /// The base severity a detector assigns issues of this kind.
    pub fn base_severity(self) -> IssueSeverity {
        match self {
            Self::PublicationLag => IssueSeverity::Info,
            Self::Quarantined => IssueSeverity::Error,
            _ => IssueSeverity::Warning,
        }
    }
}

/// How serious an issue is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IssueSeverity {
    /// Routine, fully rectified defects.
    Info,
    /// Defects that degrade analyses if left unaddressed.
    Warning,
    /// Data that cannot be trusted at all.
    Error,
}

impl IssueSeverity {
    /// Stable wire code for checksums and digests.
    pub fn code(self) -> u8 {
        match self {
            Self::Info => 0,
            Self::Warning => 1,
            Self::Error => 2,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Info => "info",
            Self::Warning => "warning",
            Self::Error => "error",
        }
    }
}

/// Whether the pipeline repaired the defect or only flagged it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resolution {
    /// The stage rewrote the entry; `fix` says what it did.
    AutoFixed {
        /// Human-readable description of the applied fix.
        fix: String,
    },
    /// Detected but not repairable automatically.
    NeedsReview,
}

impl Resolution {
    /// Whether this resolution is [`Resolution::AutoFixed`].
    pub fn is_auto_fixed(&self) -> bool {
        matches!(self, Self::AutoFixed { .. })
    }
}

/// One detected quality defect on one entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualityIssue {
    /// What kind of defect this is.
    pub kind: IssueKind,
    /// How serious it is.
    pub severity: IssueSeverity,
    /// Human-readable evidence the detector based its verdict on.
    pub evidence: String,
    /// Whether the pipeline fixed it or flagged it.
    pub resolution: Resolution,
}

impl QualityIssue {
    /// An issue with the kind's base severity.
    pub fn new(kind: IssueKind, evidence: String, resolution: Resolution) -> Self {
        Self {
            kind,
            severity: kind.base_severity(),
            evidence,
            resolution,
        }
    }
}

/// Per-entry quality score: integer points 0–100 per axis, so scores are
/// exactly reproducible everywhere the ledger is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QualityScore {
    /// Completeness points (0–100).
    pub completeness: u8,
    /// Consistency points (0–100).
    pub consistency: u8,
    /// Accuracy points (0–100).
    pub accuracy: u8,
}

impl QualityScore {
    /// The score of an issue-free entry.
    pub fn perfect() -> Self {
        Self {
            completeness: 100,
            consistency: 100,
            accuracy: 100,
        }
    }

    /// Scores a slice of issues: each deducts its kind's penalty from its
    /// kind's axis (half when auto-fixed), saturating at zero.
    pub fn from_issues(issues: &[QualityIssue]) -> Self {
        let mut score = Self::perfect();
        for issue in issues {
            let full = issue.kind.penalty();
            let deduction = if issue.resolution.is_auto_fixed() {
                full / 2
            } else {
                full
            };
            let slot = match issue.kind.axis() {
                ScoreAxis::Completeness => &mut score.completeness,
                ScoreAxis::Consistency => &mut score.consistency,
                ScoreAxis::Accuracy => &mut score.accuracy,
                ScoreAxis::Overall => unreachable!("no issue kind maps to Overall"),
            };
            *slot = slot.saturating_sub(deduction);
        }
        score
    }

    /// The integer mean of the three axes.
    pub fn overall(&self) -> u8 {
        ((self.completeness as u16 + self.consistency as u16 + self.accuracy as u16) / 3) as u8
    }

    /// The points on one axis (`Overall` is the integer mean).
    pub fn axis(&self, axis: ScoreAxis) -> u8 {
        match axis {
            ScoreAxis::Completeness => self.completeness,
            ScoreAxis::Consistency => self.consistency,
            ScoreAxis::Accuracy => self.accuracy,
            ScoreAxis::Overall => self.overall(),
        }
    }

    /// The decile histogram bucket (0–10) of one axis.
    pub fn bucket(&self, axis: ScoreAxis) -> u8 {
        self.axis(axis) / 10
    }
}

/// Corpus-level quality aggregates, derived from a ledger over a database.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusQuality {
    /// Entries scored (the database size).
    pub entries: usize,
    /// Entries carrying at least one issue.
    pub entries_with_issues: usize,
    /// Issues the pipeline repaired.
    pub auto_fixed: usize,
    /// Issues flagged for review.
    pub needs_review: usize,
    /// Issue counts per kind.
    pub by_kind: BTreeMap<IssueKind, usize>,
    /// Summed per-entry points per concrete axis
    /// (completeness, consistency, accuracy).
    pub point_sums: [u64; 3],
}

impl CorpusQuality {
    /// The corpus mean score on one axis, in 0–100 points.
    pub fn mean(&self, axis: ScoreAxis) -> f64 {
        if self.entries == 0 {
            return 100.0;
        }
        let sum = match axis {
            ScoreAxis::Completeness => self.point_sums[0],
            ScoreAxis::Consistency => self.point_sums[1],
            ScoreAxis::Accuracy => self.point_sums[2],
            ScoreAxis::Overall => {
                (self.point_sums[0] + self.point_sums[1] + self.point_sums[2]) / 3
            }
        };
        sum as f64 / self.entries as f64
    }
}

/// Where detectors put the issues they find. [`QualityLedger`] collects;
/// [`NullSink`] discards — the silent path the overhead bench baselines.
pub trait QualitySink {
    /// Whether emission does anything: stages skip evidence formatting
    /// entirely when this is `false`.
    fn enabled(&self) -> bool;

    /// Records one issue against a CVE.
    fn emit(&mut self, id: CveId, issue: QualityIssue);

    /// Records an issue whose subject has no parseable CVE id (quarantined
    /// raw feed items).
    fn emit_unkeyed(&mut self, raw_id: &str, issue: QualityIssue);
}

/// A sink that ignores everything — the zero-overhead silent path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl QualitySink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _id: CveId, _issue: QualityIssue) {}

    fn emit_unkeyed(&mut self, _raw_id: &str, _issue: QualityIssue) {}
}

/// One cleaning stage viewed as a quality detector: given the cleaned
/// database and its own outcome, it emits the issues it found (and fixed)
/// into a sink. Emission is serial and ordered — `BTreeMap` / database
/// order only — so the resulting ledger is bit-identical at any
/// `NVD_JOBS` and across the batch and incremental paths.
pub trait QualityStage {
    /// Stable stage name (reporting only).
    fn stage_name(&self) -> &'static str;

    /// Emits this stage's issues over the cleaned database.
    fn emit(&self, cleaned: &Database, sink: &mut dyn QualitySink);
}

/// §4.1 as a detector: per-CVE disclosure estimates vs publication dates.
#[derive(Debug, Clone, Copy)]
pub struct DisclosureStage<'a>(
    /// The per-CVE estimates from [`CleanReport::disclosure`].
    pub &'a BTreeMap<CveId, crate::disclosure::DisclosureEstimate>,
);

impl QualityStage for DisclosureStage<'_> {
    fn stage_name(&self) -> &'static str {
        "disclosure"
    }

    fn emit(&self, cleaned: &Database, sink: &mut dyn QualitySink) {
        for entry in cleaned.iter() {
            let Some(est) = self.0.get(&entry.id) else {
                continue;
            };
            if est.extracted == 0 {
                sink.emit(
                    entry.id,
                    QualityIssue::new(
                        IssueKind::MissingDisclosure,
                        format!(
                            "no disclosure evidence: {} references, {} fetched, {} failed, 0 dates extracted",
                            est.references, est.fetched, est.failed
                        ),
                        Resolution::NeedsReview,
                    ),
                );
            } else if est.estimated < entry.published {
                sink.emit(
                    entry.id,
                    QualityIssue::new(
                        IssueKind::PublicationLag,
                        format!(
                            "NVD publication {} post-dates earliest reference {}",
                            entry.published, est.estimated
                        ),
                        Resolution::AutoFixed {
                            fix: format!("disclosure estimated as {}", est.estimated),
                        },
                    ),
                );
            }
        }
    }
}

/// §4.2 as a detector: CVEs whose CPE names the consolidation mapping
/// rewrote.
#[derive(Debug, Clone, Copy)]
pub struct NamesStage<'a>(
    /// The name report from [`CleanReport::names`].
    pub &'a crate::cleaner::NameReport,
);

impl QualityStage for NamesStage<'_> {
    fn stage_name(&self) -> &'static str {
        "names"
    }

    fn emit(&self, _cleaned: &Database, sink: &mut dyn QualitySink) {
        let stats = &self.0.apply_stats;
        for id in &stats.cves_with_vendor_fixes {
            sink.emit(
                *id,
                QualityIssue::new(
                    IssueKind::VendorAlias,
                    "CPE vendor field used a non-canonical spelling".to_owned(),
                    Resolution::AutoFixed {
                        fix: "vendor rewritten to its canonical name".to_owned(),
                    },
                ),
            );
        }
        for id in &stats.cves_with_product_fixes {
            sink.emit(
                *id,
                QualityIssue::new(
                    IssueKind::ProductAlias,
                    "CPE product field used a non-canonical spelling".to_owned(),
                    Resolution::AutoFixed {
                        fix: "product rewritten to its canonical name".to_owned(),
                    },
                ),
            );
        }
    }
}

/// §4.4 as a detector: degenerate / missing CWE labels, fixed where the
/// description mining recovered concrete ids.
#[derive(Debug, Clone, Copy)]
pub struct CweStage<'a>(
    /// The rectification outcome from [`CleanReport::cwe`].
    pub &'a crate::cwe_fix::CweFixOutcome,
);

impl QualityStage for CweStage<'_> {
    fn stage_name(&self) -> &'static str {
        "cwe"
    }

    fn emit(&self, cleaned: &Database, sink: &mut dyn QualitySink) {
        for entry in cleaned.iter() {
            match entry.effective_cwe() {
                CweLabel::Other => sink.emit(
                    entry.id,
                    QualityIssue::new(
                        IssueKind::DegenerateCwe,
                        "labelled NVD-CWE-Other; no concrete id minable from the description"
                            .to_owned(),
                        Resolution::NeedsReview,
                    ),
                ),
                CweLabel::NoInfo | CweLabel::Unassigned => sink.emit(
                    entry.id,
                    QualityIssue::new(
                        IssueKind::MissingCwe,
                        "no usable CWE label; no concrete id minable from the description"
                            .to_owned(),
                        Resolution::NeedsReview,
                    ),
                ),
                CweLabel::Specific(_) => {
                    let Some(additions) = self.0.corrections.get(&entry.id) else {
                        continue;
                    };
                    // The cleaned entry keeps its original labels ahead of
                    // the mined additions, so a surviving degenerate label
                    // tells us what the fix repaired; an entry whose whole
                    // type set is the additions started unassigned-empty.
                    let had_other = entry.cwes.contains(&CweLabel::Other);
                    let had_missing = entry.cwes.contains(&CweLabel::NoInfo)
                        || entry.cwes.contains(&CweLabel::Unassigned)
                        || entry.cwes.len() == additions.len();
                    let kind = if had_other {
                        IssueKind::DegenerateCwe
                    } else if had_missing {
                        IssueKind::MissingCwe
                    } else {
                        // Already-typed entry augmented with extra ids:
                        // an enrichment, not a defect.
                        continue;
                    };
                    let mined: Vec<String> = additions.iter().map(|id| id.to_string()).collect();
                    sink.emit(
                        entry.id,
                        QualityIssue::new(
                            kind,
                            if had_other {
                                "labelled NVD-CWE-Other despite the description citing a concrete id".to_owned()
                            } else {
                                "no usable CWE label despite the description citing a concrete id".to_owned()
                            },
                            Resolution::AutoFixed {
                                fix: format!("assigned mined {}", mined.join(", ")),
                            },
                        ),
                    );
                }
            }
        }
    }
}

/// §4.3 as a detector: entries without a CVSS v3 vector, auto-fixed where
/// the backport predicted one.
#[derive(Debug, Clone, Copy)]
pub struct SeverityStage<'a>(
    /// The backport outcome from [`CleanReport::severity`], when it ran.
    pub Option<&'a crate::severity::BackportOutcome>,
);

impl QualityStage for SeverityStage<'_> {
    fn stage_name(&self) -> &'static str {
        "severity"
    }

    fn emit(&self, cleaned: &Database, sink: &mut dyn QualitySink) {
        for entry in cleaned.iter() {
            if entry.has_v3() {
                continue;
            }
            let evidence = if entry.cvss_v2.is_some() {
                "CVSS v2 vector only; no v3 score recorded".to_owned()
            } else {
                "no CVSS vector recorded at all".to_owned()
            };
            let resolution = match self.0.and_then(|bp| bp.predicted_severity(&entry.id)) {
                Some(sev) => Resolution::AutoFixed {
                    fix: format!("backported v3 severity {sev:?}"),
                },
                None => Resolution::NeedsReview,
            };
            sink.emit(
                entry.id,
                QualityIssue::new(IssueKind::MissingCvssV3, evidence, resolution),
            );
        }
    }
}

/// The ingest quarantine path as a detector: every isolated feed item
/// becomes a [`IssueKind::Quarantined`] record, keyed by CVE id when the
/// raw id parses and unkeyed otherwise.
#[derive(Debug, Clone, Copy)]
pub struct QuarantineStage<'a>(
    /// The accumulated quarantine ledger.
    pub &'a QuarantineLedger,
);

impl QualityStage for QuarantineStage<'_> {
    fn stage_name(&self) -> &'static str {
        "quarantine"
    }

    fn emit(&self, _cleaned: &Database, sink: &mut dyn QualitySink) {
        for record in self.0.records() {
            let why = match &record.reason {
                QuarantineReason::MalformedItem { msg } => {
                    format!("malformed item in feed {}: {msg}", record.feed)
                }
                QuarantineReason::ConflictingDuplicate => {
                    format!("conflicting duplicate deliveries in feed {}", record.feed)
                }
            };
            let issue = QualityIssue::new(IssueKind::Quarantined, why, Resolution::NeedsReview);
            match record.raw_id.parse::<CveId>() {
                Ok(id) => sink.emit(id, issue),
                Err(_) => sink.emit_unkeyed(&record.raw_id, issue),
            }
        }
    }
}

/// Runs every stage-detector in the pipeline's canonical order
/// (§4.1 disclosure, §4.2 names, §4.4 CWE, §4.3 severity, quarantine)
/// against a cleaned database and its report, emitting into `sink`.
///
/// Skips all work — including evidence formatting inside the stages —
/// when the sink is disabled.
pub fn emit_issues(
    cleaned: &Database,
    report: &CleanReport,
    quarantine: &QuarantineLedger,
    sink: &mut dyn QualitySink,
) {
    if !sink.enabled() {
        return;
    }
    let stages: [&dyn QualityStage; 5] = [
        &DisclosureStage(&report.disclosure),
        &NamesStage(&report.names),
        &CweStage(&report.cwe),
        &SeverityStage(report.severity.as_ref()),
        &QuarantineStage(quarantine),
    ];
    for stage in stages {
        stage.emit(cleaned, sink);
    }
}

/// The per-CVE issue ledger: every defect each detector found, in stage
/// emission order per CVE, plus unkeyed records for quarantined items
/// whose raw id is not a valid CVE id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QualityLedger {
    issues: BTreeMap<CveId, Vec<QualityIssue>>,
    unkeyed: Vec<(String, QualityIssue)>,
}

impl QualitySink for QualityLedger {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&mut self, id: CveId, issue: QualityIssue) {
        self.issues.entry(id).or_default().push(issue);
    }

    fn emit_unkeyed(&mut self, raw_id: &str, issue: QualityIssue) {
        self.unkeyed.push((raw_id.to_owned(), issue));
    }
}

impl QualityLedger {
    /// Builds the ledger for a cleaned database by running every
    /// stage-detector over the report (and the quarantine ledger, for
    /// ingest paths; batch cleaning passes an empty one).
    pub fn assemble(
        cleaned: &Database,
        report: &CleanReport,
        quarantine: &QuarantineLedger,
    ) -> Self {
        let mut ledger = Self::default();
        emit_issues(cleaned, report, quarantine, &mut ledger);
        ledger
    }

    /// The issues recorded against one CVE (empty when pristine).
    pub fn issues_for(&self, id: &CveId) -> &[QualityIssue] {
        self.issues.get(id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates `(id, issues)` for every CVE with at least one issue, in
    /// id order.
    pub fn iter(&self) -> impl Iterator<Item = (&CveId, &[QualityIssue])> {
        self.issues.iter().map(|(id, v)| (id, v.as_slice()))
    }

    /// Unkeyed issues: quarantined items whose raw id is not a CVE id.
    pub fn unkeyed(&self) -> &[(String, QualityIssue)] {
        &self.unkeyed
    }

    /// Number of CVEs carrying at least one issue.
    pub fn entries_with_issues(&self) -> usize {
        self.issues.len()
    }

    /// Total issues recorded, keyed and unkeyed.
    pub fn total_issues(&self) -> usize {
        self.issues.values().map(Vec::len).sum::<usize>() + self.unkeyed.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.issues.is_empty() && self.unkeyed.is_empty()
    }

    /// The quality score of one entry (perfect when issue-free).
    pub fn entry_score(&self, id: &CveId) -> QualityScore {
        QualityScore::from_issues(self.issues_for(id))
    }

    /// Corpus-level aggregates over a database: every entry is scored,
    /// issue-free entries as perfect.
    pub fn corpus_quality(&self, db: &Database) -> CorpusQuality {
        let mut q = CorpusQuality {
            entries: db.len(),
            entries_with_issues: 0,
            auto_fixed: 0,
            needs_review: 0,
            by_kind: BTreeMap::new(),
            point_sums: [0; 3],
        };
        for entry in db.iter() {
            let issues = self.issues_for(&entry.id);
            if !issues.is_empty() {
                q.entries_with_issues += 1;
            }
            for issue in issues {
                *q.by_kind.entry(issue.kind).or_insert(0) += 1;
                if issue.resolution.is_auto_fixed() {
                    q.auto_fixed += 1;
                } else {
                    q.needs_review += 1;
                }
            }
            let score = QualityScore::from_issues(issues);
            q.point_sums[0] += score.completeness as u64;
            q.point_sums[1] += score.consistency as u64;
            q.point_sums[2] += score.accuracy as u64;
        }
        for (raw, issue) in &self.unkeyed {
            let _ = raw;
            *q.by_kind.entry(issue.kind).or_insert(0) += 1;
            q.needs_review += 1;
        }
        q
    }

    /// Decile histogram (buckets 0–10) of per-entry scores on one axis
    /// over a database; issue-free entries land in bucket 10.
    pub fn histogram(&self, db: &Database, axis: ScoreAxis) -> [usize; 11] {
        let mut buckets = [0usize; 11];
        for entry in db.iter() {
            let score = QualityScore::from_issues(self.issues_for(&entry.id));
            buckets[score.bucket(axis) as usize] += 1;
        }
        buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(kind: IssueKind, fixed: bool) -> QualityIssue {
        QualityIssue::new(
            kind,
            "e".to_owned(),
            if fixed {
                Resolution::AutoFixed {
                    fix: "f".to_owned(),
                }
            } else {
                Resolution::NeedsReview
            },
        )
    }

    #[test]
    fn scoring_deducts_per_axis_and_halves_auto_fixes() {
        let issues = vec![
            issue(IssueKind::MissingDisclosure, false), // completeness -25
            issue(IssueKind::VendorAlias, true),        // consistency -10
            issue(IssueKind::PublicationLag, true),     // accuracy -5
        ];
        let s = QualityScore::from_issues(&issues);
        assert_eq!(s.completeness, 75);
        assert_eq!(s.consistency, 90);
        assert_eq!(s.accuracy, 95);
        assert_eq!(s.overall() as u16, (75u16 + 90 + 95) / 3);
        assert_eq!(s.bucket(ScoreAxis::Completeness), 7);
    }

    #[test]
    fn scoring_saturates_at_zero() {
        let issues: Vec<_> = (0..8)
            .map(|_| issue(IssueKind::MissingCvssV3, false))
            .collect();
        let s = QualityScore::from_issues(&issues);
        assert_eq!(s.completeness, 0);
        assert_eq!(s.consistency, 100);
    }

    #[test]
    fn ledger_collects_keyed_and_unkeyed() {
        let mut ledger = QualityLedger::default();
        let id: CveId = "CVE-2020-0001".parse().unwrap();
        ledger.emit(id, issue(IssueKind::Quarantined, false));
        ledger.emit(id, issue(IssueKind::MissingCwe, false));
        ledger.emit_unkeyed("CVE-BROKEN", issue(IssueKind::Quarantined, false));
        assert_eq!(ledger.issues_for(&id).len(), 2);
        assert_eq!(ledger.total_issues(), 3);
        assert_eq!(ledger.entries_with_issues(), 1);
        assert_eq!(ledger.unkeyed().len(), 1);
        assert!(ledger.entry_score(&id).consistency < 100);
    }

    #[test]
    fn null_sink_reports_disabled() {
        assert!(!NullSink.enabled());
        let ledger = QualityLedger::default();
        assert!(QualitySink::enabled(&ledger));
        assert!(ledger.is_empty());
    }

    #[test]
    fn every_kind_has_a_distinct_code_and_a_concrete_axis() {
        let mut codes: Vec<u8> = IssueKind::ALL.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), IssueKind::ALL.len());
        for kind in IssueKind::ALL {
            assert_ne!(kind.axis(), ScoreAxis::Overall);
            assert!(kind.penalty() > 0);
        }
    }
}
