//! CWE-field rectification (§4.4).
//!
//! Many NVD entries carry `NVD-CWE-Other`, `NVD-CWE-noinfo`, or no type at
//! all, yet their free-form descriptions — particularly evaluator comments —
//! embed the formal identifier ("CWE-835: Loop with Unreachable Exit
//! Condition ('Infinite Loop')"). The paper extracts IDs with the regular
//! expression `CWE-[0-9]*`, validates them against the CWE list, and adds
//! them to the entry's type set.

use std::collections::BTreeMap;

use nvd_model::cwe::{CweCatalog, CweId, CweLabel};
use nvd_model::entry::CveEntry;
use nvd_model::prelude::{CveId, Database};

/// Extracts every `CWE-<digits>` occurrence from free text, in order of
/// appearance, deduplicated.
pub fn extract_cwe_ids(text: &str) -> Vec<CweId> {
    let bytes = text.as_bytes();
    let mut out: Vec<CweId> = Vec::new();
    let mut i = 0;
    while let Some(pos) = text[i..].find("CWE-") {
        let start = i + pos + 4;
        let mut end = start;
        while end < bytes.len() && bytes[end].is_ascii_digit() {
            end += 1;
        }
        if end > start {
            if let Ok(num) = text[start..end].parse::<u32>() {
                let id = CweId::new(num);
                if !out.contains(&id) {
                    out.push(id);
                }
            }
        }
        i = end.max(start);
    }
    out
}

/// Statistics from one rectification pass (§4.4 "Improvement Impact").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CweFixStats {
    /// Entries labelled `NVD-CWE-Other` before the pass.
    pub other_count: usize,
    /// Entries labelled `NVD-CWE-noinfo` before the pass.
    pub noinfo_count: usize,
    /// Entries with no label before the pass.
    pub unassigned_count: usize,
    /// `Other` entries that gained a concrete type.
    pub fixed_other: usize,
    /// `noinfo`/unassigned entries that gained a concrete type.
    pub fixed_missing: usize,
    /// Already-typed entries that gained an additional type.
    pub augmented_typed: usize,
}

impl CweFixStats {
    /// Total entries whose type set changed (the paper's 2,456).
    pub fn total_corrected(&self) -> usize {
        self.fixed_other + self.fixed_missing + self.augmented_typed
    }

    /// Fraction of entries with degenerate labels (paper: ≈31%).
    pub fn degenerate_fraction(&self, db_len: usize) -> f64 {
        if db_len == 0 {
            return 0.0;
        }
        (self.other_count + self.noinfo_count + self.unassigned_count) as f64 / db_len as f64
    }
}

/// Outcome of [`rectify_cwe`]: per-CVE additions plus statistics.
#[derive(Debug, Clone, Default)]
pub struct CweFixOutcome {
    /// The concrete CWE IDs added to each corrected entry.
    pub corrections: BTreeMap<CveId, Vec<CweId>>,
    /// Aggregate statistics.
    pub stats: CweFixStats,
}

/// Mines descriptions for CWE IDs and adds catalog-validated ones to each
/// entry's type set, in place.
///
/// IDs not present in the catalog are discarded (the paper matches against
/// "the CWE list from their website"). Degenerate labels are kept alongside
/// the mined concrete types, as the paper *adds* to the CWE field.
///
/// The mining half — scanning every description of every entry — is pure
/// per CVE, so it fans out over the `minipar` pool; the mutation and
/// statistics half then applies the mined IDs serially in entry order.
/// Output is bit-identical at every `NVD_JOBS` setting.
pub fn rectify_cwe(db: &mut Database, catalog: &CweCatalog) -> CweFixOutcome {
    // Parallel mine: per-entry catalog-validated IDs in appearance order.
    let mined_per_entry: Vec<Vec<CweId>> = minipar::par_map(db.iter().as_slice(), |entry| {
        mine_entry_cwe_ids(entry, catalog)
    });
    apply_mined_cwe_ids(db, mined_per_entry)
}

/// The mining half of [`rectify_cwe`], for one entry: every catalog-valid
/// `CWE-<digits>` occurrence across all descriptions, in appearance order,
/// deduplicated. Pure in `(entry.descriptions, catalog)`, so the result is
/// cacheable per CVE — the incremental pipeline re-mines only touched
/// entries and replays cached lists through [`apply_mined_cwe_ids`].
pub fn mine_entry_cwe_ids(entry: &CveEntry, catalog: &CweCatalog) -> Vec<CweId> {
    let mut mined: Vec<CweId> = Vec::new();
    for d in &entry.descriptions {
        for id in extract_cwe_ids(&d.text) {
            if catalog.contains(id) && !mined.contains(&id) {
                mined.push(id);
            }
        }
    }
    mined
}

/// The apply half of [`rectify_cwe`]: mutates entries and accumulates
/// statistics serially in entry order from pre-mined per-entry ID lists
/// (one list per entry, in database order). With lists produced by
/// [`mine_entry_cwe_ids`] this is exactly [`rectify_cwe`].
pub fn apply_mined_cwe_ids(db: &mut Database, mined_per_entry: Vec<Vec<CweId>>) -> CweFixOutcome {
    assert_eq!(
        db.len(),
        mined_per_entry.len(),
        "one mined list per entry, in database order"
    );
    let mut outcome = CweFixOutcome::default();
    for (entry, mined) in db.iter_mut().zip(mined_per_entry) {
        let effective = entry.effective_cwe();
        match effective {
            CweLabel::Other => outcome.stats.other_count += 1,
            CweLabel::NoInfo => outcome.stats.noinfo_count += 1,
            CweLabel::Unassigned => outcome.stats.unassigned_count += 1,
            CweLabel::Specific(_) => {}
        }

        let additions: Vec<CweId> = mined
            .into_iter()
            .filter(|id| !entry.cwes.contains(&CweLabel::Specific(*id)))
            .collect();
        if additions.is_empty() {
            continue;
        }
        match effective {
            CweLabel::Other => outcome.stats.fixed_other += 1,
            CweLabel::NoInfo | CweLabel::Unassigned => outcome.stats.fixed_missing += 1,
            CweLabel::Specific(_) => outcome.stats.augmented_typed += 1,
        }
        for id in &additions {
            entry.cwes.push(CweLabel::Specific(*id));
        }
        outcome.corrections.insert(entry.id, additions);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::prelude::*;

    fn entry(id: u32, label: CweLabel, texts: &[&str]) -> CveEntry {
        let mut e = CveEntry::new(
            format!("CVE-2018-{id:04}").parse().unwrap(),
            "2018-01-01".parse().unwrap(),
        );
        e.cwes = vec![label];
        for (i, t) in texts.iter().enumerate() {
            e.descriptions.push(if i == 0 {
                Description::analyst(*t)
            } else {
                Description::evaluator(*t)
            });
        }
        e
    }

    #[test]
    fn extracts_ids_from_text() {
        let ids = extract_cwe_ids("See CWE-835: Infinite Loop and also CWE-89.");
        assert_eq!(ids, vec![CweId::new(835), CweId::new(89)]);
    }

    #[test]
    fn extraction_dedupes_and_ignores_malformed() {
        assert_eq!(
            extract_cwe_ids("CWE-79 CWE-79 CWE- xyz CWE-"),
            vec![CweId::new(79)]
        );
        assert!(extract_cwe_ids("no ids here").is_empty());
    }

    #[test]
    fn fixes_the_papers_example() {
        // CVE-2007-0838: labelled Other, evaluator text cites CWE-835.
        let mut db = Database::from_entries([entry(
            1,
            CweLabel::Other,
            &[
                "Unspecified vulnerability allows a denial of service.",
                "CWE-835: Loop with Unreachable Exit Condition ('Infinite Loop')",
            ],
        )]);
        let out = rectify_cwe(&mut db, &CweCatalog::builtin());
        assert_eq!(out.stats.fixed_other, 1);
        let e = db.iter().next().unwrap();
        assert!(e.cwes.contains(&CweLabel::Specific(CweId::new(835))));
        assert_eq!(e.effective_cwe(), CweLabel::Specific(CweId::new(835)));
    }

    #[test]
    fn uncatalogued_ids_are_discarded() {
        let mut db = Database::from_entries([entry(
            2,
            CweLabel::Other,
            &["refers to CWE-99999 which is not a real weakness"],
        )]);
        let out = rectify_cwe(&mut db, &CweCatalog::builtin());
        assert_eq!(out.stats.total_corrected(), 0);
    }

    #[test]
    fn typed_entries_can_gain_additional_types() {
        let mut db = Database::from_entries([entry(
            3,
            CweLabel::Specific(CweId::new(79)),
            &["also exhibits CWE-89 behaviour"],
        )]);
        let out = rectify_cwe(&mut db, &CweCatalog::builtin());
        assert_eq!(out.stats.augmented_typed, 1);
        let e = db.iter().next().unwrap();
        assert!(e.cwes.contains(&CweLabel::Specific(CweId::new(79))));
        assert!(e.cwes.contains(&CweLabel::Specific(CweId::new(89))));
    }

    #[test]
    fn already_listed_type_is_not_double_counted() {
        let mut db = Database::from_entries([entry(
            4,
            CweLabel::Specific(CweId::new(89)),
            &["classic CWE-89 SQL injection"],
        )]);
        let out = rectify_cwe(&mut db, &CweCatalog::builtin());
        assert_eq!(out.stats.total_corrected(), 0);
        assert_eq!(db.iter().next().unwrap().cwes.len(), 1);
    }

    #[test]
    fn stats_count_degenerate_population() {
        let mut db = Database::from_entries([
            entry(5, CweLabel::Other, &[]),
            entry(6, CweLabel::NoInfo, &[]),
            entry(7, CweLabel::Unassigned, &[]),
            entry(8, CweLabel::Specific(CweId::new(79)), &[]),
        ]);
        let out = rectify_cwe(&mut db, &CweCatalog::builtin());
        assert_eq!(out.stats.other_count, 1);
        assert_eq!(out.stats.noinfo_count, 1);
        assert_eq!(out.stats.unassigned_count, 1);
        assert!((out.stats.degenerate_fraction(db.len()) - 0.75).abs() < 1e-9);
    }
}
