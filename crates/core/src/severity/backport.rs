//! The end-to-end v3 backport (§4.3 "Improvement Impact", Tables 5–7).
//!
//! Ground truth = CVEs carrying both CVSS versions, split 80/20 stratified
//! by v3 band. All four models train on the same split; the best test-split
//! banded accuracy is selected (the paper selects its CNN at 86.29%), and
//! the winner predicts v3 scores for every v2-only CVE.

use std::collections::BTreeMap;

use mlkit::data::{stratified_split_indices, Dataset};
use mlkit::matrix::Matrix;
use nvd_model::prelude::{CveId, Database, Severity};

use super::eval::{evaluate, transition_matrix, v3_band_index, EvalReport};
use super::features::FeatureExtractor;
use super::models::{ModelKind, SeverityModel, TrainProfile};

/// Options for [`backport_v3`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackportOptions {
    /// Training fidelity (paper vs fast).
    pub profile: TrainProfile,
    /// Held-out fraction of the ground truth (paper: 20%).
    pub test_fraction: f64,
    /// RNG seed for the split and model initialisation.
    pub seed: u64,
    /// Force a specific model instead of selecting by test accuracy.
    pub force_model: Option<ModelKind>,
    /// Train only this subset (default: all four). Trims bench time.
    pub kinds: &'static [ModelKind],
}

impl Default for BackportOptions {
    fn default() -> Self {
        Self {
            profile: TrainProfile::Fast,
            test_fraction: 0.2,
            seed: 0xbac0,
            force_model: None,
            kinds: &ModelKind::ALL,
        }
    }
}

/// Everything the backport produces.
#[derive(Debug, Clone)]
pub struct BackportOutcome {
    /// Per-model test evaluation (Tables 5 and 7).
    pub reports: BTreeMap<ModelKind, EvalReport>,
    /// The selected model kind (the paper's CNN).
    pub chosen: ModelKind,
    /// Predicted v3 base score per v2-only CVE.
    pub predictions: BTreeMap<CveId, f64>,
    /// v2 → predicted-v3 transition matrix over the v2-only population
    /// (Table 6).
    pub backport_transition: mlkit::metrics::ConfusionMatrix,
    /// v2 → true-v3 transition matrix over the ground truth (Table 4).
    pub ground_truth_transition: mlkit::metrics::ConfusionMatrix,
    /// v2 → *predicted*-v3 transitions over the full ground truth
    /// (Table 13).
    pub full_prediction_transition: mlkit::metrics::ConfusionMatrix,
    /// v2 → true-v3 transitions over the test split only (Table 14).
    pub test_ground_truth_transition: mlkit::metrics::ConfusionMatrix,
    /// v2 → predicted-v3 transitions over the test split only (Table 15).
    pub test_prediction_transition: mlkit::metrics::ConfusionMatrix,
    /// Ground truth size (paper: ≈37K).
    pub ground_truth_size: usize,
    /// v2-only population size (paper: ≈74K).
    pub v2_only_size: usize,
}

impl BackportOutcome {
    /// Predicted v3 severity band for a CVE, if it was backported.
    pub fn predicted_severity(&self, id: &CveId) -> Option<Severity> {
        self.predictions
            .get(id)
            .map(|&s| Severity::from_v3_score(s))
    }

    /// The v3 severity of a CVE after rectification: the NVD label when
    /// present, else the prediction.
    pub fn effective_severity(&self, db: &Database, id: &CveId) -> Option<Severity> {
        db.get(id)
            .and_then(|e| e.severity_v3())
            .or_else(|| self.predicted_severity(id))
    }
}

/// Runs the full §4.3 pipeline over a database.
///
/// # Panics
///
/// Panics if fewer than 20 CVEs carry both CVSS versions (no ground truth
/// to learn from).
pub fn backport_v3(db: &Database, options: &BackportOptions) -> BackportOutcome {
    // --- assemble ground truth ------------------------------------------
    let ground: Vec<_> = db
        .iter()
        .filter(|e| e.cvss_v2.is_some() && e.cvss_v3.is_some())
        .collect();
    assert!(
        ground.len() >= 20,
        "need at least 20 dual-scored CVEs, found {}",
        ground.len()
    );

    let strata: Vec<usize> = ground
        .iter()
        .map(|e| v3_band_index(e.severity_v3().expect("filtered")))
        .collect();
    let (train_idx, test_idx) =
        stratified_split_indices(&strata, options.test_fraction, options.seed);

    // Target encoding must only see training data.
    let extractor = FeatureExtractor::fit(train_idx.iter().map(|&i| ground[i]));

    // Feature extraction is per-CVE and pure; rows land in index order, so
    // the assembled matrices are identical at any thread count.
    let assemble = |indices: &[usize]| -> (Dataset, Vec<Severity>) {
        let extracted = minipar::par_map(indices, |&i| {
            let e = ground[i];
            let f = extractor.extract(e).expect("filtered for v2");
            let y = e.cvss_v3.as_ref().expect("filtered").base_score;
            (f, y, e.severity_v2().expect("filtered"))
        });
        let mut rows = Vec::with_capacity(indices.len() * super::features::FEATURE_DIM);
        let mut y = Vec::with_capacity(indices.len());
        let mut v2_bands = Vec::with_capacity(indices.len());
        for (f, target, band) in extracted {
            rows.extend_from_slice(&f);
            y.push(target);
            v2_bands.push(band);
        }
        (
            Dataset::new(
                Matrix::from_vec(indices.len(), super::features::FEATURE_DIM, rows),
                y,
            ),
            v2_bands,
        )
    };
    let (train, _) = assemble(&train_idx);
    let (test, test_v2_bands) = assemble(&test_idx);

    // --- train the zoo -----------------------------------------------------
    let mut reports = BTreeMap::new();
    let mut models: BTreeMap<ModelKind, SeverityModel> = BTreeMap::new();
    for &kind in options.kinds {
        let model = SeverityModel::train(kind, &train.x, &train.y, options.profile, options.seed);
        let pred = model.predict(&test.x);
        reports.insert(kind, evaluate(&test.y, &pred, &test_v2_bands));
        models.insert(kind, model);
    }

    // --- select the winner ---------------------------------------------------
    let chosen = options.force_model.unwrap_or_else(|| {
        *reports
            .iter()
            .max_by(|a, b| {
                a.1.overall_accuracy
                    .partial_cmp(&b.1.overall_accuracy)
                    .expect("finite accuracy")
            })
            .expect("at least one model")
            .0
    });
    let winner = &models[&chosen];

    // --- backport the v2-only population ----------------------------------
    // The paper's ≈74K-CVE sweep: extract features per entry on the pool,
    // assemble one flat design matrix, and predict the whole population
    // through the winner's batched kernels.
    let v2_only: Vec<_> = db
        .iter()
        .filter(|e| e.cvss_v3.is_none() && e.cvss_v2.is_some())
        .collect();
    let mut predictions = BTreeMap::new();
    let mut v2_bands = Vec::with_capacity(v2_only.len());
    let mut pred_bands = Vec::with_capacity(v2_only.len());
    if !v2_only.is_empty() {
        let extracted = minipar::par_map(&v2_only, |e| {
            (
                extractor.extract(e).expect("has v2"),
                e.severity_v2().expect("has v2"),
            )
        });
        let mut rows = Vec::with_capacity(v2_only.len() * super::features::FEATURE_DIM);
        for (f, band) in &extracted {
            rows.extend_from_slice(f);
            v2_bands.push(*band);
        }
        let x = Matrix::from_vec(v2_only.len(), super::features::FEATURE_DIM, rows);
        let scores = winner.predict(&x);
        for (e, &score) in v2_only.iter().zip(&scores) {
            predictions.insert(e.id, score);
            pred_bands.push(Severity::from_v3_score(score));
        }
    }
    let backport_transition = transition_matrix(&v2_bands, &pred_bands);

    // --- Table 4: ground-truth transitions ---------------------------------
    let gt_v2: Vec<Severity> = ground
        .iter()
        .map(|e| e.severity_v2().expect("v2"))
        .collect();
    let gt_v3: Vec<Severity> = ground
        .iter()
        .map(|e| e.severity_v3().expect("v3"))
        .collect();
    let ground_truth_transition = transition_matrix(&gt_v2, &gt_v3);

    // --- Tables 13–15: sanity matrices on the ground truth ------------------
    // Same shape as the main sweep: parallel extraction, batched predict.
    let predict_bands = |indices: &[usize]| -> (Vec<Severity>, Vec<Severity>, Vec<Severity>) {
        let extracted = minipar::par_map(indices, |&i| {
            let e = ground[i];
            (
                extractor.extract(e).expect("has v2"),
                e.severity_v2().expect("v2"),
                e.severity_v3().expect("v3"),
            )
        });
        let mut rows = Vec::with_capacity(indices.len() * super::features::FEATURE_DIM);
        let mut v2b = Vec::with_capacity(indices.len());
        let mut trueb = Vec::with_capacity(indices.len());
        for (f, v2, tru) in &extracted {
            rows.extend_from_slice(f);
            v2b.push(*v2);
            trueb.push(*tru);
        }
        let x = Matrix::from_vec(indices.len(), super::features::FEATURE_DIM, rows);
        let predb = winner
            .predict(&x)
            .into_iter()
            .map(Severity::from_v3_score)
            .collect();
        (v2b, trueb, predb)
    };
    let all_idx: Vec<usize> = (0..ground.len()).collect();
    let (full_v2, _, full_pred) = predict_bands(&all_idx);
    let full_prediction_transition = transition_matrix(&full_v2, &full_pred);
    let (t_v2, t_true, t_pred) = predict_bands(&test_idx);
    let test_ground_truth_transition = transition_matrix(&t_v2, &t_true);
    let test_prediction_transition = transition_matrix(&t_v2, &t_pred);

    BackportOutcome {
        reports,
        chosen,
        v2_only_size: predictions.len(),
        predictions,
        backport_transition,
        ground_truth_transition,
        full_prediction_transition,
        test_ground_truth_transition,
        test_prediction_transition,
        ground_truth_size: ground.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_synth::{generate, SynthConfig};

    fn outcome() -> (nvd_model::prelude::Database, BackportOutcome) {
        let corpus = generate(&SynthConfig::with_scale(0.02, 17));
        let out = backport_v3(&corpus.database, &BackportOptions::default());
        (corpus.database, out)
    }

    #[test]
    fn backports_every_v2_only_cve() {
        let (db, out) = outcome();
        let v2_only = db
            .iter()
            .filter(|e| e.cvss_v2.is_some() && e.cvss_v3.is_none())
            .count();
        assert_eq!(out.predictions.len(), v2_only);
        assert_eq!(out.v2_only_size, v2_only);
        for s in out.predictions.values() {
            assert!((0.0..=10.0).contains(s));
        }
    }

    #[test]
    fn model_accuracy_is_meaningful() {
        let (_, out) = outcome();
        let best = out.reports[&out.chosen].overall_accuracy;
        // The paper's best model reaches 86%; the fast profile on a small
        // corpus should still clearly beat chance (4 classes ⇒ 25%).
        assert!(best > 0.55, "best accuracy {best}");
    }

    #[test]
    fn ground_truth_transition_shape_matches_table4() {
        let (_, out) = outcome();
        let m = &out.ground_truth_transition;
        // v2 High row: no Low, meaningful Critical mass.
        assert_eq!(m.count(2, 0), 0, "H→L must be empty");
        assert!(m.row_percent(2, 3) > 20.0, "H→C {}", m.row_percent(2, 3));
        // v2 Low row: dominated by Medium.
        assert!(m.row_percent(0, 1) > 50.0, "L→M {}", m.row_percent(0, 1));
    }

    #[test]
    fn deterministic_under_seed() {
        let corpus = generate(&SynthConfig::with_scale(0.01, 4));
        let a = backport_v3(&corpus.database, &BackportOptions::default());
        let b = backport_v3(&corpus.database, &BackportOptions::default());
        assert_eq!(a.chosen, b.chosen);
        assert_eq!(a.predictions, b.predictions);
    }

    #[test]
    fn forced_model_is_respected() {
        let corpus = generate(&SynthConfig::with_scale(0.01, 4));
        let out = backport_v3(
            &corpus.database,
            &BackportOptions {
                force_model: Some(ModelKind::Lr),
                kinds: &[ModelKind::Lr],
                ..BackportOptions::default()
            },
        );
        assert_eq!(out.chosen, ModelKind::Lr);
    }
}
