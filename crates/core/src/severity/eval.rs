//! Evaluation of severity predictions (§4.3, Tables 5, 7, 13–15).

use std::collections::BTreeMap;

use mlkit::metrics::{average_error, average_error_rate, ConfusionMatrix};
use nvd_model::prelude::Severity;

/// Index of a severity band in 4-column (v3) matrices.
pub fn v3_band_index(s: Severity) -> usize {
    match s {
        Severity::None | Severity::Low => 0,
        Severity::Medium => 1,
        Severity::High => 2,
        Severity::Critical => 3,
    }
}

/// Index of a severity band in 3-row (v2) matrices.
pub fn v2_band_index(s: Severity) -> usize {
    match s {
        Severity::None | Severity::Low => 0,
        Severity::Medium => 1,
        _ => 2,
    }
}

/// Builds a v2 → v3 severity transition matrix (3 rows padded into a 4×4
/// [`ConfusionMatrix`]; row 3 stays empty), the layout of Tables 4, 6 and
/// 13–15.
pub fn transition_matrix(v2: &[Severity], v3: &[Severity]) -> ConfusionMatrix {
    assert_eq!(v2.len(), v3.len(), "length mismatch");
    let mut m = ConfusionMatrix::new(4);
    for (a, b) in v2.iter().zip(v3) {
        m.record(v2_band_index(*a), v3_band_index(*b));
    }
    m
}

/// One model's evaluation against held-out true v3 scores.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Average absolute score error (paper's AE; CNN: 0.54).
    pub ae: f64,
    /// Average relative error in percent (paper's AER; CNN: 9.62).
    pub aer_percent: f64,
    /// Banded accuracy over the test split (paper's CNN: 86.29%).
    pub overall_accuracy: f64,
    /// Banded accuracy grouped by the sample's *v2* band (Table 7).
    pub accuracy_by_v2: BTreeMap<Severity, f64>,
    /// v2 → predicted-v3 transition matrix over the evaluated samples.
    pub transition: ConfusionMatrix,
}

/// Evaluates predicted v3 scores against true ones.
///
/// `v2_bands` holds each sample's v2 severity (for the per-input-class
/// accuracy of Table 7).
pub fn evaluate(y_true: &[f64], y_pred: &[f64], v2_bands: &[Severity]) -> EvalReport {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    assert_eq!(y_true.len(), v2_bands.len(), "length mismatch");
    let true_bands: Vec<Severity> = y_true.iter().map(|&s| Severity::from_v3_score(s)).collect();
    let pred_bands: Vec<Severity> = y_pred.iter().map(|&s| Severity::from_v3_score(s)).collect();

    let correct: Vec<bool> = true_bands
        .iter()
        .zip(&pred_bands)
        .map(|(t, p)| t == p)
        .collect();
    let overall_accuracy = if correct.is_empty() {
        0.0
    } else {
        correct.iter().filter(|&&c| c).count() as f64 / correct.len() as f64
    };

    let mut by_v2: BTreeMap<Severity, (usize, usize)> = BTreeMap::new();
    for (band, ok) in v2_bands.iter().zip(&correct) {
        let slot = by_v2.entry(*band).or_insert((0, 0));
        slot.1 += 1;
        if *ok {
            slot.0 += 1;
        }
    }

    EvalReport {
        ae: average_error(y_true, y_pred),
        aer_percent: 100.0 * average_error_rate(y_true, y_pred),
        overall_accuracy,
        accuracy_by_v2: by_v2
            .into_iter()
            .map(|(k, (h, n))| (k, h as f64 / n as f64))
            .collect(),
        transition: transition_matrix(v2_bands, &pred_bands),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_perfectly() {
        let y = [9.8, 5.0, 3.0, 7.5];
        let bands = [
            Severity::High,
            Severity::Medium,
            Severity::Low,
            Severity::High,
        ];
        let r = evaluate(&y, &y, &bands);
        assert_eq!(r.ae, 0.0);
        assert_eq!(r.aer_percent, 0.0);
        assert_eq!(r.overall_accuracy, 1.0);
        assert!(r.accuracy_by_v2.values().all(|&a| a == 1.0));
    }

    #[test]
    fn banded_accuracy_tolerates_in_band_error() {
        // 9.8 vs 9.1: both Critical → banded-correct despite score error.
        let r = evaluate(&[9.8], &[9.1], &[Severity::High]);
        assert_eq!(r.overall_accuracy, 1.0);
        assert!(r.ae > 0.5);
    }

    #[test]
    fn cross_band_error_is_punished() {
        // 7.2 (High) predicted 9.3 (Critical).
        let r = evaluate(&[7.2], &[9.3], &[Severity::High]);
        assert_eq!(r.overall_accuracy, 0.0);
    }

    #[test]
    fn transition_matrix_rows_are_v2_bands() {
        let m = transition_matrix(
            &[Severity::High, Severity::High, Severity::Medium],
            &[Severity::Critical, Severity::High, Severity::Medium],
        );
        assert_eq!(m.count(2, 3), 1);
        assert_eq!(m.count(2, 2), 1);
        assert_eq!(m.count(1, 1), 1);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn per_class_accuracy_groups_by_v2() {
        let r = evaluate(
            &[9.8, 7.2, 5.0],
            &[9.5, 9.5, 5.0],
            &[Severity::High, Severity::High, Severity::Medium],
        );
        // Both High-input samples: one correct (Critical band match), one
        // wrong.
        assert!((r.accuracy_by_v2[&Severity::High] - 0.5).abs() < 1e-9);
        assert!((r.accuracy_by_v2[&Severity::Medium] - 1.0).abs() < 1e-9);
    }
}
