//! The §4.3 model zoo: LR, SVR, CNN, DNN.
//!
//! Architectures follow the paper exactly: the CNN has "four consecutive
//! convolutional layers. The first two layers consist of 64 filters and the
//! remaining layers consist of 128 filters" followed by a 512-neuron dense
//! layer and a single sigmoid output; the DNN has "four fully connected
//! layers with size of 128, 128, 256, and 256" and the same output; both
//! train with Adam (lr 0.001) on MSE for 100 epochs. The SVR uses an RBF
//! kernel with γ = 0.1 and C = 2. A [`TrainProfile::Fast`] preset shrinks
//! widths and epochs for tests and CI while preserving every architectural
//! ingredient.

use mlkit::data::StandardScaler;
use mlkit::linear::RidgeRegression;
use mlkit::matrix::Matrix;
use mlkit::nn::{Activation, Network, NetworkBuilder, TrainConfig};
use mlkit::svr::{Svr, SvrConfig};

use super::features::FEATURE_DIM;

/// Which §4.3 model to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelKind {
    /// Linear regression.
    Lr,
    /// ε-SVR with an RBF kernel (γ = 0.1, C = 2).
    Svr,
    /// The paper's convolutional network (its best model).
    Cnn,
    /// The paper's dense network.
    Dnn,
}

impl ModelKind {
    /// All four, in the paper's Table 5 order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Lr,
        ModelKind::Svr,
        ModelKind::Cnn,
        ModelKind::Dnn,
    ];

    /// The paper's label for the model.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Lr => "LR",
            ModelKind::Svr => "SVR",
            ModelKind::Cnn => "CNN",
            ModelKind::Dnn => "DNN",
        }
    }
}

/// Training fidelity: paper-faithful or fast-for-tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainProfile {
    /// Paper architecture and epochs (expensive: minutes on large splits).
    Paper,
    /// Same shapes, smaller widths and fewer epochs (seconds).
    #[default]
    Fast,
}

#[derive(Debug, Clone)]
enum Inner {
    Lr(RidgeRegression),
    Svr(Box<Svr>),
    Nn(Box<Network>),
}

/// A trained severity model predicting v3 base scores from the 13-feature
/// vectors of [`super::features`].
#[derive(Debug, Clone)]
pub struct SeverityModel {
    kind: ModelKind,
    scaler: StandardScaler,
    inner: Inner,
}

impl SeverityModel {
    /// Trains a model of the given kind.
    ///
    /// `y` are v3 base scores in `[0, 10]`; neural models learn `y / 10`
    /// behind their sigmoid output, exactly like the paper.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `x.cols() != FEATURE_DIM`.
    pub fn train(kind: ModelKind, x: &Matrix, y: &[f64], profile: TrainProfile, seed: u64) -> Self {
        assert!(x.rows() > 0, "empty training set");
        assert_eq!(x.cols(), FEATURE_DIM, "feature width mismatch");
        let scaler = StandardScaler::fit(x);
        let xs = scaler.transform(x);
        let inner = match kind {
            ModelKind::Lr => Inner::Lr(
                RidgeRegression::fit(&xs, y, 1e-6).expect("ridge-regularised fit succeeds"),
            ),
            ModelKind::Svr => {
                let (features, epochs) = match profile {
                    TrainProfile::Paper => (512, 60),
                    TrainProfile::Fast => (128, 15),
                };
                Inner::Svr(Box::new(Svr::fit(
                    &xs,
                    y,
                    SvrConfig {
                        gamma: 0.1,
                        c: 2.0,
                        epsilon: 0.1,
                        features,
                        epochs,
                        learning_rate: 0.05,
                        seed,
                    },
                )))
            }
            ModelKind::Cnn => {
                let (f1, f2, dense, epochs) = match profile {
                    TrainProfile::Paper => (64, 128, 512, 100),
                    TrainProfile::Fast => (8, 16, 32, 30),
                };
                let mut net = NetworkBuilder::input_1d(FEATURE_DIM)
                    .conv1d(f1, 3, Activation::Relu)
                    .conv1d(f1, 3, Activation::Relu)
                    .conv1d(f2, 3, Activation::Relu)
                    .conv1d(f2, 3, Activation::Relu)
                    .dense(dense, Activation::Relu)
                    .dense(1, Activation::Sigmoid)
                    .build(seed);
                let y01: Vec<f64> = y.iter().map(|v| v / 10.0).collect();
                net.fit_scalar(
                    &xs,
                    &y01,
                    &TrainConfig {
                        epochs,
                        batch_size: 32,
                        learning_rate: 0.001,
                        seed,
                        ..TrainConfig::default()
                    },
                );
                Inner::Nn(Box::new(net))
            }
            ModelKind::Dnn => {
                let (w1, w2, epochs) = match profile {
                    TrainProfile::Paper => (128, 256, 100),
                    TrainProfile::Fast => (16, 32, 30),
                };
                let mut net = NetworkBuilder::input_1d(FEATURE_DIM)
                    .dense(w1, Activation::Relu)
                    .dense(w1, Activation::Relu)
                    .dense(w2, Activation::Relu)
                    .dense(w2, Activation::Relu)
                    .dense(1, Activation::Sigmoid)
                    .build(seed);
                let y01: Vec<f64> = y.iter().map(|v| v / 10.0).collect();
                net.fit_scalar(
                    &xs,
                    &y01,
                    &TrainConfig {
                        epochs,
                        batch_size: 32,
                        learning_rate: 0.001,
                        seed,
                        ..TrainConfig::default()
                    },
                );
                Inner::Nn(Box::new(net))
            }
        };
        Self {
            kind,
            scaler,
            inner,
        }
    }

    /// Which model this is.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Predicts v3 base scores for every row of a feature matrix, clamped
    /// to [0, 10]. The whole batch runs through the scaler and the model's
    /// batched kernels in one pass — there is no per-sample entry point.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        let xs = self.scaler.transform(x);
        let mut raw = match &self.inner {
            Inner::Lr(m) => m.predict(&xs),
            Inner::Svr(m) => m.predict(&xs),
            Inner::Nn(m) => {
                let mut p = m.predict(&xs);
                for v in &mut p {
                    *v *= 10.0;
                }
                p
            }
        };
        for v in &mut raw {
            *v = v.clamp(0.0, 10.0);
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic severity-like task: score is a nonlinear function of the
    /// first features.
    fn toy_data(n: usize) -> (Matrix, Vec<f64>) {
        let mut data = Vec::with_capacity(n * FEATURE_DIM);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = [0.0; FEATURE_DIM];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = (((i * 31 + j * 17) % 97) as f64) / 97.0;
            }
            let score = (3.0 + 4.0 * row[0] + 3.0 * row[3] * row[4] + 2.0 * row[12]).min(10.0);
            y.push(score);
            data.extend_from_slice(&row);
        }
        (Matrix::from_vec(n, FEATURE_DIM, data), y)
    }

    #[test]
    fn all_models_train_and_predict_in_range() {
        let (x, y) = toy_data(120);
        for kind in ModelKind::ALL {
            let m = SeverityModel::train(kind, &x, &y, TrainProfile::Fast, 3);
            for p in m.predict(&x) {
                assert!((0.0..=10.0).contains(&p), "{kind:?} predicted {p}");
            }
        }
    }

    #[test]
    fn models_beat_constant_baseline() {
        let (x, y) = toy_data(200);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let baseline: f64 = y.iter().map(|v| (v - mean).abs()).sum::<f64>() / y.len() as f64;
        for kind in [ModelKind::Lr, ModelKind::Cnn, ModelKind::Dnn] {
            let m = SeverityModel::train(kind, &x, &y, TrainProfile::Fast, 7);
            let pred = m.predict(&x);
            let ae = mlkit::metrics::average_error(&y, &pred);
            assert!(
                ae < baseline,
                "{kind:?}: AE {ae} not better than baseline {baseline}"
            );
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = toy_data(60);
        let a = SeverityModel::train(ModelKind::Dnn, &x, &y, TrainProfile::Fast, 11);
        let b = SeverityModel::train(ModelKind::Dnn, &x, &y, TrainProfile::Fast, 11);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ModelKind::Cnn.label(), "CNN");
        assert_eq!(ModelKind::ALL.len(), 4);
    }
}
