//! Feature extraction for severity prediction (§4.3 "Features").
//!
//! The paper uses "the following v2 parameters as features to extrapolate
//! v3 scores: access vector and complexity, authentication, integrity,
//! availability, all privilege, user privilege, and other privilege flags",
//! plus the CWE-ID (after Holm & Afridi's finding that CVSS reliability
//! depends on the vulnerability type).
//!
//! The 13 features, in order:
//!
//! | # | feature |
//! |---|---------|
//! | 0 | access vector (L/A/N → 0/0.5/1) |
//! | 1 | access complexity (H/M/L → 0/0.5/1) |
//! | 2 | authentication (M/S/N → 0/0.5/1) |
//! | 3 | confidentiality impact (N/P/C → 0/0.5/1) |
//! | 4 | integrity impact |
//! | 5 | availability impact |
//! | 6 | all-privilege flag (all impacts Complete) |
//! | 7 | user-privilege flag (some Partial, none Complete) |
//! | 8 | other-privilege flag (otherwise) |
//! | 9 | v2 base score / 10 |
//! | 10 | v2 impact subscore / 10.01 |
//! | 11 | v2 exploitability subscore / 20 |
//! | 12 | CWE target encoding (mean training v3 score of the type / 10) |
//!
//! The CWE feature is a *target encoding* learned from the training split
//! only — the standard way to hand a high-cardinality categorical to the
//! paper's regression models without inflating the input dimension.

use std::collections::BTreeMap;

use nvd_model::cwe::CweLabel;
use nvd_model::metrics::{
    AccessComplexityV2, AccessVectorV2, AuthenticationV2, CvssV2Vector, ImpactV2,
};
use nvd_model::prelude::CveEntry;

/// Number of features per sample.
pub const FEATURE_DIM: usize = 13;

/// Learned feature extractor (holds the CWE target encoding).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureExtractor {
    cwe_mean_v3: BTreeMap<u32, f64>,
    global_mean_v3: f64,
}

impl FeatureExtractor {
    /// Learns the CWE target encoding from training entries that carry
    /// both CVSS versions.
    pub fn fit<'a, I: IntoIterator<Item = &'a CveEntry>>(train: I) -> Self {
        let mut sums: BTreeMap<u32, (f64, usize)> = BTreeMap::new();
        let mut total = 0.0;
        let mut count = 0usize;
        for entry in train {
            let Some(v3) = &entry.cvss_v3 else { continue };
            total += v3.base_score;
            count += 1;
            if let Some(id) = entry.effective_cwe().specific() {
                let slot = sums.entry(id.number()).or_insert((0.0, 0));
                slot.0 += v3.base_score;
                slot.1 += 1;
            }
        }
        let global = if count > 0 { total / count as f64 } else { 5.0 };
        Self {
            cwe_mean_v3: sums
                .into_iter()
                .map(|(id, (s, n))| (id, s / n as f64))
                .collect(),
            global_mean_v3: global,
        }
    }

    /// Mean training v3 score (fallback encoding for unseen types).
    pub fn global_mean(&self) -> f64 {
        self.global_mean_v3
    }

    /// Extracts the 13-feature vector for an entry.
    ///
    /// Returns `None` for entries without a v2 vector (nothing to
    /// extrapolate from).
    pub fn extract(&self, entry: &CveEntry) -> Option<[f64; FEATURE_DIM]> {
        let record = entry.cvss_v2.as_ref()?;
        let v = &record.vector;
        let cwe_feature = match entry.effective_cwe() {
            CweLabel::Specific(id) => self
                .cwe_mean_v3
                .get(&id.number())
                .copied()
                .unwrap_or(self.global_mean_v3),
            _ => self.global_mean_v3,
        } / 10.0;
        let (all_priv, user_priv, other_priv) = privilege_flags(v);
        Some([
            av_level(v.access_vector),
            ac_level(v.access_complexity),
            au_level(v.authentication),
            impact_level(v.confidentiality),
            impact_level(v.integrity),
            impact_level(v.availability),
            all_priv,
            user_priv,
            other_priv,
            record.base_score / 10.0,
            cvss::v2::impact_subscore(v) / 10.01,
            cvss::v2::exploitability_subscore(v) / 20.0,
            cwe_feature,
        ])
    }
}

fn av_level(av: AccessVectorV2) -> f64 {
    match av {
        AccessVectorV2::Local => 0.0,
        AccessVectorV2::AdjacentNetwork => 0.5,
        AccessVectorV2::Network => 1.0,
    }
}

fn ac_level(ac: AccessComplexityV2) -> f64 {
    match ac {
        AccessComplexityV2::High => 0.0,
        AccessComplexityV2::Medium => 0.5,
        AccessComplexityV2::Low => 1.0,
    }
}

fn au_level(au: AuthenticationV2) -> f64 {
    match au {
        AuthenticationV2::Multiple => 0.0,
        AuthenticationV2::Single => 0.5,
        AuthenticationV2::None => 1.0,
    }
}

fn impact_level(i: ImpactV2) -> f64 {
    match i {
        ImpactV2::None => 0.0,
        ImpactV2::Partial => 0.5,
        ImpactV2::Complete => 1.0,
    }
}

/// The paper's "all privilege, user privilege, and other privilege flags":
/// complete compromise of all three impact dimensions, partial compromise,
/// or anything else.
fn privilege_flags(v: &CvssV2Vector) -> (f64, f64, f64) {
    let impacts = v.impacts();
    if impacts.iter().all(|i| *i == ImpactV2::Complete) {
        (1.0, 0.0, 0.0)
    } else if impacts.contains(&ImpactV2::Partial)
        && impacts.iter().all(|i| *i != ImpactV2::Complete)
    {
        (0.0, 1.0, 0.0)
    } else {
        (0.0, 0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::cwe::CweId;
    use nvd_model::prelude::*;

    fn entry(v2: &str, score: f64, cwe: Option<u32>, v3_score: Option<f64>) -> CveEntry {
        let mut e = CveEntry::new(
            "CVE-2017-0001".parse().unwrap(),
            "2017-01-01".parse().unwrap(),
        );
        e.cvss_v2 = Some(CvssV2Record {
            vector: v2.parse().unwrap(),
            base_score: score,
        });
        if let Some(c) = cwe {
            e.cwes = vec![CweLabel::Specific(CweId::new(c))];
        }
        if let Some(s) = v3_score {
            e.cvss_v3 = Some(CvssV3Record {
                vector: "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
                    .parse()
                    .unwrap(),
                base_score: s,
            });
        }
        e
    }

    #[test]
    fn features_are_in_unit_range() {
        let train = [entry(
            "AV:N/AC:L/Au:N/C:P/I:P/A:P",
            7.5,
            Some(89),
            Some(9.8),
        )];
        let fx = FeatureExtractor::fit(train.iter());
        let f = fx.extract(&train[0]).unwrap();
        for (i, v) in f.iter().enumerate() {
            assert!((0.0..=1.0).contains(v), "feature {i} = {v}");
        }
    }

    #[test]
    fn privilege_flags_partition() {
        let complete: CvssV2Vector = "AV:N/AC:L/Au:N/C:C/I:C/A:C".parse().unwrap();
        assert_eq!(privilege_flags(&complete), (1.0, 0.0, 0.0));
        let partial: CvssV2Vector = "AV:N/AC:L/Au:N/C:P/I:P/A:N".parse().unwrap();
        assert_eq!(privilege_flags(&partial), (0.0, 1.0, 0.0));
        let mixed: CvssV2Vector = "AV:N/AC:L/Au:N/C:C/I:P/A:N".parse().unwrap();
        assert_eq!(privilege_flags(&mixed), (0.0, 0.0, 1.0));
    }

    #[test]
    fn cwe_target_encoding_reflects_training_means() {
        let train = [
            entry("AV:N/AC:L/Au:N/C:P/I:P/A:P", 7.5, Some(89), Some(9.8)),
            entry("AV:N/AC:L/Au:N/C:P/I:P/A:P", 7.5, Some(89), Some(9.4)),
            entry("AV:N/AC:M/Au:N/C:N/I:P/A:N", 4.3, Some(79), Some(6.1)),
        ];
        let fx = FeatureExtractor::fit(train.iter());
        let f_sqli = fx.extract(&train[0]).unwrap();
        let f_xss = fx.extract(&train[2]).unwrap();
        assert!((f_sqli[12] - 0.96).abs() < 1e-9);
        assert!((f_xss[12] - 0.61).abs() < 1e-9);
    }

    #[test]
    fn unseen_cwe_falls_back_to_global_mean() {
        let train = [entry(
            "AV:N/AC:L/Au:N/C:P/I:P/A:P",
            7.5,
            Some(89),
            Some(8.0),
        )];
        let fx = FeatureExtractor::fit(train.iter());
        let probe = entry("AV:N/AC:L/Au:N/C:P/I:P/A:P", 7.5, Some(999), None);
        let f = fx.extract(&probe).unwrap();
        assert!((f[12] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn entries_without_v2_yield_none() {
        let fx = FeatureExtractor::fit([].iter());
        let e = CveEntry::new(
            "CVE-2017-0002".parse().unwrap(),
            "2017-01-01".parse().unwrap(),
        );
        assert!(fx.extract(&e).is_none());
    }
}
