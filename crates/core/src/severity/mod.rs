//! CVSS v3 severity backporting (§4.3).
//!
//! Two thirds of the paper's NVD snapshot have no CVSS v3 score. The
//! pipeline here: extract features from the v2 vector plus the CWE type
//! ([`features`]), train a model zoo — linear regression, RBF SVR, CNN,
//! DNN — on the ≈37K CVEs carrying both versions ([`models`]), evaluate
//! with the paper's AE / AER / per-class-accuracy metrics ([`eval`]), then
//! predict v3 base scores for every v2-only CVE ([`backport`]).

pub mod backport;
pub mod eval;
pub mod features;
pub mod models;

pub use backport::{backport_v3, BackportOptions, BackportOutcome};
pub use eval::{transition_matrix, EvalReport};
pub use features::{FeatureExtractor, FEATURE_DIM};
pub use models::{ModelKind, SeverityModel, TrainProfile};
