//! # nvd-clean
//!
//! NVD data-quality assessment and rectification — the core library of the
//! Rust reproduction of *"Cleaning the NVD: Comprehensive Quality
//! Assessment, Improvements, and Analyses"* (Anwar et al., DSN 2021).
//!
//! The paper identifies four classes of inconsistency in the National
//! Vulnerability Database and builds automated corrections:
//!
//! | § | problem | fix | module |
//! |---|---------|-----|--------|
//! | 4.1 | publication date ≠ public disclosure date | crawl reference URLs, take the earliest extracted date | [`disclosure`] |
//! | 4.2 | inconsistent vendor/product names | heuristics + verification + canonical remapping | [`names`] |
//! | 4.3 | two thirds of CVEs lack CVSS v3 | learn v3 from v2 features + CWE (LR/SVR/CNN/DNN) | [`severity`] |
//! | 4.4 | degenerate CWE labels | mine `CWE-\d+` from descriptions; k-NN description classifier | [`cwe_fix`], [`typeclf`] |
//!
//! [`cleaner`] chains all four into a pipeline producing a
//! [`cleaner::CleanOutcome`]: the rectified database, a
//! [`cleaner::CleanReport`], and the typed per-CVE
//! [`quality::QualityLedger`] every stage emits its findings into.
//!
//! ## Example
//!
//! ```
//! use nvd_clean::cleaner::Cleaner;
//! use nvd_clean::names::OracleVerifier;
//! use nvd_synth::{generate, SynthConfig};
//!
//! let corpus = generate(&SynthConfig::with_scale(0.003, 1));
//! let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
//! let outcome = Cleaner::default().clean(
//!     &corpus.database,
//!     &corpus.archive,
//!     &oracle,
//! );
//! assert!(outcome.database.vendor_set().len() <= corpus.database.vendor_set().len());
//! assert_eq!(outcome.report.disclosure.len(), outcome.database.len());
//! assert!(outcome.ledger.total_issues() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cleaner;
pub mod cwe_fix;
pub mod disclosure;
pub mod incremental;
pub mod names;
pub mod quality;
pub mod severity;
pub mod typeclf;

pub use cleaner::{CleanOptions, CleanOutcome, CleanReport, Cleaner, NameReport};
pub use cwe_fix::{extract_cwe_ids, rectify_cwe, CweFixOutcome, CweFixStats};
pub use disclosure::{AggregationRule, DisclosureEstimate, DisclosureEstimator, LagSummary};
pub use incremental::{
    CleanState, IngestError, IngestOutcome, QuarantineLedger, QuarantineReason, QuarantineRecord,
};
pub use names::{NameMapping, OracleVerifier, Verifier};
pub use quality::{
    CorpusQuality, IssueKind, IssueSeverity, NullSink, QualityIssue, QualityLedger, QualityScore,
    QualitySink, QualityStage, Resolution, ScoreAxis,
};
pub use severity::{backport_v3, BackportOptions, BackportOutcome, ModelKind, TrainProfile};
pub use typeclf::{train_type_classifier, TypeClassifier, TypeClassifierOptions};
