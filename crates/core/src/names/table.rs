//! The interned name table behind the §4.2 blocking substrate.
//!
//! Both candidate sweeps ([`vendor`](super::vendor), [`product`](super::product))
//! start by interning the relevant name universe into dense `u32` ids
//! assigned in ascending name order. That ordering is the whole trick:
//! comparing ids *is* comparing names, so an ordered id pair
//! `(min_id, max_id)` sorts exactly like the lexicographically ordered name
//! pair — a flat `Vec<(u32, u32)>` plus `sort_unstable` + `dedup`
//! reproduces the historical `BTreeSet<(&Name, &Name)>` candidate order
//! with integer comparisons, which is what lets the blocked sweeps fan out
//! over `minipar` while staying bit-identical to the serial sweep.

/// A dense-id view over a sorted, deduplicated set of names.
///
/// Ids follow ascending name order; [`NameTable::id_of`] replaces the
/// `O(n)` `iter().find(...)` scans the pre-blocking sweeps used for
/// abbreviation lookups with a binary search over the interned slice.
#[derive(Debug)]
pub struct NameTable<'a, N> {
    names: Vec<&'a N>,
}

impl<'a, N: Ord + AsRef<str>> NameTable<'a, N> {
    /// Builds a table from a strictly ascending iterator of names (e.g. a
    /// `BTreeSet`'s or `BTreeMap`'s borrowing iterator).
    pub fn from_sorted_iter(iter: impl IntoIterator<Item = &'a N>) -> Self {
        let names: Vec<&'a N> = iter.into_iter().collect();
        debug_assert!(
            names.windows(2).all(|w| w[0] < w[1]),
            "names must be strictly ascending"
        );
        Self { names }
    }

    /// Number of interned names (the id space is `0..len`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name behind a dense id.
    pub fn name(&self, id: u32) -> &'a N {
        self.names[id as usize]
    }

    /// All names, indexable by id.
    pub fn names(&self) -> &[&'a N] {
        &self.names
    }

    /// The dense id of `s`, if that exact string is interned.
    pub fn id_of(&self, s: &str) -> Option<u32> {
        self.names
            .binary_search_by(|n| n.as_ref().cmp(s))
            .ok()
            .map(|i| i as u32)
    }

    /// `(id, name)` pairs in ascending id (= name) order.
    pub fn enumerate(&self) -> impl Iterator<Item = (u32, &'a N)> + '_ {
        self.names.iter().enumerate().map(|(i, &n)| (i as u32, n))
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use super::*;
    use nvd_model::prelude::VendorName;

    #[test]
    fn ids_follow_name_order_and_lookup_round_trips() {
        let names: Vec<VendorName> = ["oracle", "bea", "bea_systems", "avast"]
            .iter()
            .map(|s| VendorName::new(s))
            .collect();
        let set: BTreeSet<&VendorName> = names.iter().collect();
        let table = NameTable::from_sorted_iter(set);
        assert_eq!(table.len(), 4);
        let in_order: Vec<&str> = table.names().iter().map(|n| n.as_str()).collect();
        assert_eq!(in_order, ["avast", "bea", "bea_systems", "oracle"]);
        for (id, name) in table.enumerate() {
            assert_eq!(table.id_of(name.as_str()), Some(id));
            assert_eq!(table.name(id), name);
        }
        assert_eq!(table.id_of("microsoft"), None);
    }

    #[test]
    fn empty_table() {
        let table: NameTable<'_, VendorName> = NameTable::from_sorted_iter(BTreeSet::new());
        assert!(table.is_empty());
        assert_eq!(table.id_of("x"), None);
    }
}
