//! Consolidation mapping: grouping confirmed pairs and electing canonical
//! names.
//!
//! §4.2: "For the names associated with a vendor, we considered the one
//! with the most associated CVEs as the consistent name, and remapped
//! inconsistent vendor names in the NVD using our mapping."

use std::collections::{BTreeMap, BTreeSet};

use nvd_model::prelude::{CveId, Database, ProductName, VendorName};

use super::product::ProductCandidate;
use super::vendor::VendorCandidate;

/// Union–find over interned names.
#[derive(Debug)]
struct DisjointSet {
    parent: Vec<usize>,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// The consolidation mapping produced from confirmed candidate pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NameMapping {
    /// Inconsistent vendor name → consistent vendor name.
    pub vendor: BTreeMap<VendorName, VendorName>,
    /// (consistent vendor, inconsistent product) → consistent product.
    pub product: BTreeMap<(VendorName, ProductName), ProductName>,
}

impl NameMapping {
    /// Builds the vendor half of the mapping: confirmed pairs are grouped
    /// transitively; each group's canonical name is the member with the
    /// most associated CVEs (ties break to the lexicographically smaller
    /// name for determinism).
    pub fn build_vendor(confirmed: &[VendorCandidate], db: &Database) -> Self {
        let cve_counts: BTreeMap<&VendorName, usize> = db
            .cves_by_vendor()
            .into_iter()
            .map(|(v, ids)| (v, ids.len()))
            .collect();

        // Intern names.
        let mut index: BTreeMap<&VendorName, usize> = BTreeMap::new();
        let mut names: Vec<&VendorName> = Vec::new();
        for c in confirmed {
            for n in [&c.a, &c.b] {
                if !index.contains_key(n) {
                    index.insert(n, names.len());
                    names.push(n);
                }
            }
        }
        let mut dsu = DisjointSet::new(names.len());
        for c in confirmed {
            dsu.union(index[&c.a], index[&c.b]);
        }

        // Group members per root.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..names.len() {
            groups.entry(dsu.find(i)).or_default().push(i);
        }

        let mut vendor = BTreeMap::new();
        for members in groups.values() {
            let canonical = *members
                .iter()
                .max_by(|&&a, &&b| {
                    let ca = cve_counts.get(names[a]).copied().unwrap_or(0);
                    let cb = cve_counts.get(names[b]).copied().unwrap_or(0);
                    ca.cmp(&cb).then(names[b].cmp(names[a]))
                })
                .expect("non-empty group");
            for &m in members {
                if m != canonical {
                    vendor.insert(names[m].clone(), names[canonical].clone());
                }
            }
        }
        Self {
            vendor,
            product: BTreeMap::new(),
        }
    }

    /// Adds the product half from confirmed product candidates; canonical
    /// election again by CVE count under the (already consolidated) vendor.
    pub fn extend_products(&mut self, confirmed: &[ProductCandidate], db: &Database) {
        // CVE counts per (vendor, product) after vendor consolidation.
        let mut counts: BTreeMap<(VendorName, ProductName), usize> = BTreeMap::new();
        for entry in db.iter() {
            let mut seen: BTreeSet<(VendorName, ProductName)> = BTreeSet::new();
            for cpe in &entry.affected {
                let vendor = self.resolve_vendor(&cpe.vendor).clone();
                seen.insert((vendor, cpe.product.clone()));
            }
            for key in seen {
                *counts.entry(key).or_insert(0) += 1;
            }
        }

        // Group per vendor.
        let mut by_vendor: BTreeMap<&VendorName, Vec<&ProductCandidate>> = BTreeMap::new();
        for c in confirmed {
            by_vendor.entry(&c.vendor).or_default().push(c);
        }
        for (vendor, cands) in by_vendor {
            let mut index: BTreeMap<&ProductName, usize> = BTreeMap::new();
            let mut names: Vec<&ProductName> = Vec::new();
            for c in cands.iter() {
                for n in [&c.a, &c.b] {
                    if !index.contains_key(n) {
                        index.insert(n, names.len());
                        names.push(n);
                    }
                }
            }
            let mut dsu = DisjointSet::new(names.len());
            for c in cands.iter() {
                dsu.union(index[&c.a], index[&c.b]);
            }
            let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for i in 0..names.len() {
                groups.entry(dsu.find(i)).or_default().push(i);
            }
            for members in groups.values() {
                let canonical = *members
                    .iter()
                    .max_by(|&&a, &&b| {
                        let ca = counts
                            .get(&(vendor.clone(), names[a].clone()))
                            .copied()
                            .unwrap_or(0);
                        let cb = counts
                            .get(&(vendor.clone(), names[b].clone()))
                            .copied()
                            .unwrap_or(0);
                        ca.cmp(&cb).then(names[b].cmp(names[a]))
                    })
                    .expect("non-empty group");
                for &m in members {
                    if m != canonical {
                        self.product
                            .insert((vendor.clone(), names[m].clone()), names[canonical].clone());
                    }
                }
            }
        }
    }

    /// Resolves a vendor name through the mapping (identity if absent).
    pub fn resolve_vendor<'a>(&'a self, name: &'a VendorName) -> &'a VendorName {
        self.vendor.get(name).unwrap_or(name)
    }

    /// Resolves a product name under its (consolidated) vendor.
    pub fn resolve_product<'a>(
        &'a self,
        vendor: &VendorName,
        product: &'a ProductName,
    ) -> &'a ProductName {
        self.product
            .get(&(vendor.clone(), product.clone()))
            .unwrap_or(product)
    }

    /// Applies the mapping in place, returning per-field impact statistics.
    pub fn apply(&self, db: &mut Database) -> ApplyStats {
        let mut stats = ApplyStats::default();
        for entry in db.iter_mut() {
            let mut vendor_touched = false;
            let mut product_touched = false;
            for cpe in &mut entry.affected {
                let resolved_vendor = self.resolve_vendor(&cpe.vendor).clone();
                if resolved_vendor != cpe.vendor {
                    cpe.vendor = resolved_vendor;
                    vendor_touched = true;
                }
                let resolved_product = self.resolve_product(&cpe.vendor, &cpe.product).clone();
                if resolved_product != cpe.product {
                    cpe.product = resolved_product;
                    product_touched = true;
                }
            }
            if vendor_touched {
                stats.cves_with_vendor_fixes.insert(entry.id);
            }
            if product_touched {
                stats.cves_with_product_fixes.insert(entry.id);
            }
        }
        db.rebuild_index();
        stats.vendor_names_removed = self.vendor.len();
        stats.product_names_removed = self.product.len();
        stats
    }

    /// Counts how many of the given vendor names this mapping would change —
    /// the paper's cross-database application to SecurityFocus and
    /// SecurityTracker (Table 3).
    pub fn count_mappable<'a, I: IntoIterator<Item = &'a VendorName>>(&self, names: I) -> usize {
        names
            .into_iter()
            .filter(|n| self.vendor.contains_key(*n))
            .count()
    }

    /// Distinct consistent names that inconsistent vendor names map onto
    /// (Table 3's `#con`).
    pub fn consistent_vendor_targets(&self) -> usize {
        self.vendor.values().collect::<BTreeSet<_>>().len()
    }
}

/// Statistics from applying a [`NameMapping`] to a database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Distinct vendor spellings eliminated.
    pub vendor_names_removed: usize,
    /// Distinct product spellings eliminated.
    pub product_names_removed: usize,
    /// CVEs whose vendor field changed.
    pub cves_with_vendor_fixes: BTreeSet<CveId>,
    /// CVEs whose product field changed.
    pub cves_with_product_fixes: BTreeSet<CveId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::product::ProductHeuristic;
    use nvd_model::prelude::*;

    fn db_with(cpes: &[(&str, &str)]) -> Database {
        let mut db = Database::new();
        for (i, (v, p)) in cpes.iter().enumerate() {
            let id: CveId = format!("CVE-2016-{:04}", i + 1).parse().unwrap();
            let mut e = CveEntry::new(id, "2016-01-01".parse().unwrap());
            e.affected.push(CpeName::application(*v, *p));
            db.push(e);
        }
        db
    }

    fn vendor_pair(a: &str, b: &str) -> VendorCandidate {
        VendorCandidate {
            a: VendorName::new(a),
            b: VendorName::new(b),
            tokens_identical: false,
            matching_products: 0,
            prefix: false,
            product_as_vendor: false,
            abbreviation: false,
            lcs_len: 3,
        }
    }

    #[test]
    fn canonical_is_name_with_most_cves() {
        // bea: 3 CVEs, bea_systems: 1 — canonical must be bea.
        let mut db = db_with(&[
            ("bea", "weblogic"),
            ("bea", "weblogic"),
            ("bea", "tuxedo"),
            ("bea_systems", "weblogic"),
        ]);
        let mapping = NameMapping::build_vendor(&[vendor_pair("bea", "bea_systems")], &db);
        assert_eq!(
            mapping.vendor.get(&VendorName::new("bea_systems")),
            Some(&VendorName::new("bea"))
        );
        let stats = mapping.apply(&mut db);
        assert_eq!(stats.cves_with_vendor_fixes.len(), 1);
        assert!(db.vendor_set().iter().all(|v| v.as_str() != "bea_systems"));
    }

    #[test]
    fn transitive_groups_share_one_canonical() {
        let db = db_with(&[
            ("microsoft", "windows"),
            ("microsoft", "office"),
            ("microsft", "windows"),
            ("windows", "media_player"),
        ]);
        let mapping = NameMapping::build_vendor(
            &[
                vendor_pair("microsft", "microsoft"),
                vendor_pair("microsft", "windows"),
            ],
            &db,
        );
        assert_eq!(
            mapping.resolve_vendor(&VendorName::new("windows")),
            &VendorName::new("microsoft")
        );
        assert_eq!(mapping.consistent_vendor_targets(), 1);
    }

    #[test]
    fn apply_is_idempotent() {
        let mut db = db_with(&[("bea", "weblogic"), ("bea_systems", "weblogic")]);
        let mapping = NameMapping::build_vendor(&[vendor_pair("bea", "bea_systems")], &db);
        mapping.apply(&mut db);
        let snapshot: Vec<_> = db.iter().cloned().collect();
        mapping.apply(&mut db);
        let again: Vec<_> = db.iter().cloned().collect();
        assert_eq!(snapshot, again);
    }

    #[test]
    fn product_mapping_resolves_under_consolidated_vendor() {
        let mut db = db_with(&[
            ("avg", "antivirus"),
            ("avg", "antivirus"),
            ("avg", "anti-virus"),
        ]);
        let mut mapping = NameMapping::default();
        mapping.extend_products(
            &[ProductCandidate {
                vendor: VendorName::new("avg"),
                a: ProductName::new("anti-virus"),
                b: ProductName::new("antivirus"),
                heuristic: ProductHeuristic::TokenEquivalent,
            }],
            &db,
        );
        let stats = mapping.apply(&mut db);
        assert_eq!(stats.cves_with_product_fixes.len(), 1);
        assert!(db.product_set().iter().all(|p| p.as_str() != "anti-virus"));
    }

    #[test]
    fn count_mappable_for_side_databases() {
        let db = db_with(&[("bea", "weblogic"), ("bea_systems", "weblogic")]);
        let mapping = NameMapping::build_vendor(&[vendor_pair("bea", "bea_systems")], &db);
        let side = [
            VendorName::new("bea_systems"),
            VendorName::new("oracle"),
            VendorName::new("bea"),
        ];
        assert_eq!(mapping.count_mappable(side.iter()), 1);
    }
}
