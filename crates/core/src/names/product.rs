//! Product-name candidate detection (§4.2).
//!
//! After vendor consolidation, likely matching product names *under the
//! same vendor* are flagged by: (1) identical tokenisation after splitting
//! on white space and special characters (`internet-explorer` /
//! `internet_explorer`), (2) abbreviation by first characters
//! (`internet_explorer` / `ie`), and (3) small edit distance — human typos
//! such as `tbe_banner_engine` / `the_banner_engine`. The paper notes edit
//! distance needs verification because near-identical products can be
//! genuinely different (`ucs-e160dp-m1_firmware` / `ucs-e140dp-m1_firmware`),
//! which is why candidates carry their heuristic for the verifier.
//!
//! On the blocked engine each vendor is one block: its product set is
//! interned into a per-vendor [`NameTable`], the three heuristics propose
//! ordered id triples, and the per-vendor sweeps fan out over `minipar`,
//! concatenating in ascending vendor order. Because ids follow name order
//! and vendors are the outermost sort key, that concatenation reproduces
//! the historical global sort + dedup byte for byte (`names::legacy` keeps
//! the old sweep as the oracle that pins this).

use std::collections::{BTreeMap, BTreeSet};

use nvd_model::prelude::{Database, ProductName, VendorName};
use textkit::distance::levenshtein_at_most;
use textkit::tokenize::{abbreviation, name_components};

use super::mapping::NameMapping;
use super::table::NameTable;

/// Which heuristic proposed a product pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProductHeuristic {
    /// Same tokens once separators are normalised.
    TokenEquivalent,
    /// One name abbreviates the other's token initials.
    Abbreviation,
    /// Levenshtein distance 1 (suspected typo).
    EditDistance,
}

/// A flagged product-name pair under one (consolidated) vendor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductCandidate {
    /// The owning vendor (post vendor-consolidation).
    pub vendor: VendorName,
    /// Lexicographically smaller product name.
    pub a: ProductName,
    /// Lexicographically larger product name.
    pub b: ProductName,
    /// The proposing heuristic.
    pub heuristic: ProductHeuristic,
}

/// Digit-difference guard for the edit-distance heuristic: names that
/// differ in a digit are usually genuinely different models/versions
/// (the paper's cisco firmware example).
///
/// The comparison is positional — character `i` of `a` against character
/// `i` of `b` — which is only meaningful when the two byte streams align
/// one-to-one. The equal-length precondition below makes that explicit:
/// unequal lengths mean an insertion/deletion typo, where positional digit
/// comparison would be misaligned, so the guard never fires and the pair
/// stays eligible for flagging.
fn differs_only_in_digit(a: &str, b: &str) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.bytes()
        .zip(b.bytes())
        .any(|(x, y)| x != y && x.is_ascii_digit() && y.is_ascii_digit())
}

/// Vendors with more products than this skip the quadratic edit-distance
/// heuristic (per-vendor product counts are normally small).
const EDIT_SWEEP_CAP: usize = 600;

/// Finds candidate product pairs under each vendor after applying the
/// vendor mapping.
///
/// Each vendor's sweep is independent, so the per-vendor blocks fan out
/// over `minipar` and concatenate in ascending vendor order; output is
/// bit-identical at every `NVD_JOBS` setting.
pub fn find_product_candidates(db: &Database, mapping: &NameMapping) -> Vec<ProductCandidate> {
    // Products per consolidated vendor.
    let mut products: BTreeMap<VendorName, BTreeSet<ProductName>> = BTreeMap::new();
    for entry in db.iter() {
        for cpe in &entry.affected {
            let vendor = mapping.resolve_vendor(&cpe.vendor).clone();
            products
                .entry(vendor)
                .or_default()
                .insert(cpe.product.clone());
        }
    }

    let per_vendor: Vec<(&VendorName, &BTreeSet<ProductName>)> = products.iter().collect();
    let sweeps = minipar::par_map(&per_vendor, |&(vendor, names)| sweep_vendor(vendor, names));
    sweeps.into_iter().flatten().collect()
}

/// The per-vendor block: interns the vendor's products and runs the three
/// heuristics over dense ids, returning candidates in `(a, b)` order with
/// the strongest heuristic kept on duplicates.
///
/// Pure in `(vendor, names)` — the incremental pipeline caches each
/// vendor's sweep and re-runs it only when that vendor's product set
/// changed.
pub(crate) fn sweep_vendor(
    vendor: &VendorName,
    names: &BTreeSet<ProductName>,
) -> Vec<ProductCandidate> {
    let table = NameTable::from_sorted_iter(names.iter());
    let n = table.len() as u32;
    let mut pairs: Vec<(u32, u32, ProductHeuristic)> = Vec::new();

    // Heuristic 1: identical token sequences.
    let mut by_tokens: BTreeMap<Vec<String>, Vec<u32>> = BTreeMap::new();
    for (id, p) in table.enumerate() {
        by_tokens
            .entry(name_components(p.as_str()))
            .or_default()
            .push(id);
    }
    for group in by_tokens.into_values() {
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                pairs.push((a, b, ProductHeuristic::TokenEquivalent));
            }
        }
    }

    // Heuristic 2: abbreviation of token initials, resolved through the
    // table's binary search (the legacy sweep re-scanned the name list on
    // every hit).
    for (id, p) in table.enumerate() {
        if let Some(abbrev) = abbreviation(p.as_str()) {
            if abbrev.len() >= 2 && abbrev != p.as_str() {
                if let Some(other) = table.id_of(&abbrev) {
                    pairs.push((id.min(other), id.max(other), ProductHeuristic::Abbreviation));
                }
            }
        }
    }

    // Heuristic 3: edit distance 1 (typos), guarded against digit-only
    // differences; quadratic within the vendor, which is fine because
    // per-vendor product counts are small. The banded early-exit
    // Levenshtein stops scanning once the distance band exceeds 1.
    if table.len() <= EDIT_SWEEP_CAP {
        for a in 0..n {
            let sa = table.name(a).as_str();
            for b in a + 1..n {
                let sb = table.name(b).as_str();
                if sa.len().abs_diff(sb.len()) > 1 {
                    continue;
                }
                if differs_only_in_digit(sa, sb) {
                    continue;
                }
                if levenshtein_at_most(sa, sb, 1) == Some(1) {
                    pairs.push((a, b, ProductHeuristic::EditDistance));
                }
            }
        }
    }

    // A pair can be proposed by several heuristics; keep the strongest
    // (TokenEquivalent < Abbreviation < EditDistance by enum order — token
    // equivalence is the most reliable, so sort and dedupe keeps it).
    pairs.sort_unstable();
    pairs.dedup_by_key(|&mut (a, b, _)| (a, b));
    pairs
        .into_iter()
        .map(|(a, b, heuristic)| ProductCandidate {
            vendor: vendor.clone(),
            a: table.name(a).clone(),
            b: table.name(b).clone(),
            heuristic,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::prelude::*;

    fn db_with(cpes: &[(&str, &str)]) -> Database {
        let mut db = Database::new();
        for (i, (v, p)) in cpes.iter().enumerate() {
            let id: CveId = format!("CVE-2017-{:04}", i + 1).parse().unwrap();
            let mut e = CveEntry::new(id, "2017-01-01".parse().unwrap());
            e.affected.push(CpeName::application(*v, *p));
            db.push(e);
        }
        db
    }

    fn find(db: &Database) -> Vec<ProductCandidate> {
        find_product_candidates(db, &NameMapping::default())
    }

    #[test]
    fn finds_separator_variants() {
        let db = db_with(&[
            ("microsoft", "internet_explorer"),
            ("microsoft", "internet-explorer"),
        ]);
        let cands = find(&db);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].heuristic, ProductHeuristic::TokenEquivalent);
    }

    #[test]
    fn finds_abbreviation() {
        let db = db_with(&[("microsoft", "internet_explorer"), ("microsoft", "ie")]);
        let cands = find(&db);
        assert!(cands
            .iter()
            .any(|c| c.heuristic == ProductHeuristic::Abbreviation));
    }

    #[test]
    fn finds_typo_pair() {
        let db = db_with(&[
            ("nativesolutions", "tbe_banner_engine"),
            ("nativesolutions", "the_banner_engine"),
        ]);
        let cands = find(&db);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].heuristic, ProductHeuristic::EditDistance);
    }

    #[test]
    fn digit_difference_is_not_flagged() {
        // The paper's example: different cisco firmware models at edit
        // distance 1 must NOT be merged.
        let db = db_with(&[
            ("cisco", "ucs-e160dp-m1_firmware"),
            ("cisco", "ucs-e140dp-m1_firmware"),
        ]);
        let cands = find(&db);
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    fn digit_guard_is_positional() {
        // The paper's cisco firmware regression: equal lengths, one digit
        // position differs → guard fires.
        assert!(differs_only_in_digit(
            "ucs-e160dp-m1_firmware",
            "ucs-e140dp-m1_firmware"
        ));
        // Letter typo at equal length → no digit difference.
        assert!(!differs_only_in_digit(
            "tbe_banner_engine",
            "the_banner_engine"
        ));
        // Unequal lengths (insertion typo) never trip the guard, even with
        // digits present — positional comparison would be misaligned.
        assert!(!differs_only_in_digit("router2", "router21"));
        assert!(!differs_only_in_digit("e160", "e1600"));
        // Identical names have no differing position at all.
        assert!(!differs_only_in_digit("e160", "e160"));
    }

    #[test]
    fn different_vendors_are_not_compared() {
        let db = db_with(&[("avg", "antivirus"), ("avast", "antivirus!")]);
        let cands = find(&db);
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    fn vendor_mapping_brings_products_together() {
        // anti-virus is recorded under alias vendor "avg_technologies";
        // after vendor consolidation both product spellings are under avg.
        let db = db_with(&[("avg", "antivirus"), ("avg_technologies", "anti-virus")]);
        let mut mapping = NameMapping::default();
        mapping
            .vendor
            .insert(VendorName::new("avg_technologies"), VendorName::new("avg"));
        let cands = find_product_candidates(&db, &mapping);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].vendor.as_str(), "avg");
    }

    #[test]
    fn blocked_sweep_matches_legacy_replica_on_mixed_fixture() {
        // All three heuristics fire, across several vendors, with a pair
        // (internet_explorer / internet-explorer) proposed by both token
        // equivalence and edit distance so the dedup tiebreak is exercised.
        let db = db_with(&[
            ("microsoft", "internet_explorer"),
            ("microsoft", "internet-explorer"),
            ("microsoft", "ie"),
            ("nativesolutions", "tbe_banner_engine"),
            ("nativesolutions", "the_banner_engine"),
            ("cisco", "ucs-e160dp-m1_firmware"),
            ("cisco", "ucs-e140dp-m1_firmware"),
            ("avg", "antivirus"),
            ("avg", "anti-virus"),
        ]);
        let mapping = NameMapping::default();
        let blocked = find_product_candidates(&db, &mapping);
        let legacy = crate::names::legacy::find_product_candidates_legacy(&db, &mapping);
        assert_eq!(blocked, legacy);
    }

    #[test]
    fn blocked_sweep_is_bit_identical_across_job_counts() {
        let db = db_with(&[
            ("microsoft", "internet_explorer"),
            ("microsoft", "internet-explorer"),
            ("microsoft", "ie"),
            ("nativesolutions", "tbe_banner_engine"),
            ("nativesolutions", "the_banner_engine"),
            ("avg", "antivirus"),
            ("avg", "anti-virus"),
        ]);
        let mapping = NameMapping::default();
        let serial = minipar::with_jobs(1, || find_product_candidates(&db, &mapping));
        let wide = minipar::with_jobs(4, || find_product_candidates(&db, &mapping));
        assert_eq!(serial, wide);
    }
}
