//! Product-name candidate detection (§4.2).
//!
//! After vendor consolidation, likely matching product names *under the
//! same vendor* are flagged by: (1) identical tokenisation after splitting
//! on white space and special characters (`internet-explorer` /
//! `internet_explorer`), (2) abbreviation by first characters
//! (`internet_explorer` / `ie`), and (3) small edit distance — human typos
//! such as `tbe_banner_engine` / `the_banner_engine`. The paper notes edit
//! distance needs verification because near-identical products can be
//! genuinely different (`ucs-e160dp-m1_firmware` / `ucs-e140dp-m1_firmware`),
//! which is why candidates carry their heuristic for the verifier.

use std::collections::{BTreeMap, BTreeSet};

use nvd_model::prelude::{Database, ProductName, VendorName};
use textkit::distance::levenshtein;
use textkit::tokenize::{abbreviation, name_components};

use super::mapping::NameMapping;

/// Which heuristic proposed a product pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProductHeuristic {
    /// Same tokens once separators are normalised.
    TokenEquivalent,
    /// One name abbreviates the other's token initials.
    Abbreviation,
    /// Levenshtein distance 1 (suspected typo).
    EditDistance,
}

/// A flagged product-name pair under one (consolidated) vendor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductCandidate {
    /// The owning vendor (post vendor-consolidation).
    pub vendor: VendorName,
    /// Lexicographically smaller product name.
    pub a: ProductName,
    /// Lexicographically larger product name.
    pub b: ProductName,
    /// The proposing heuristic.
    pub heuristic: ProductHeuristic,
}

/// Digit-difference guard for the edit-distance heuristic: names that
/// differ in a digit are usually genuinely different models/versions
/// (the paper's cisco firmware example).
fn differs_only_in_digit(a: &str, b: &str) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.bytes()
        .zip(b.bytes())
        .any(|(x, y)| x != y && x.is_ascii_digit() && y.is_ascii_digit())
}

/// Finds candidate product pairs under each vendor after applying the
/// vendor mapping.
pub fn find_product_candidates(db: &Database, mapping: &NameMapping) -> Vec<ProductCandidate> {
    // Products per consolidated vendor.
    let mut products: BTreeMap<VendorName, BTreeSet<ProductName>> = BTreeMap::new();
    for entry in db.iter() {
        for cpe in &entry.affected {
            let vendor = mapping.resolve_vendor(&cpe.vendor).clone();
            products
                .entry(vendor)
                .or_default()
                .insert(cpe.product.clone());
        }
    }

    let mut out = Vec::new();
    for (vendor, names) in &products {
        let names: Vec<&ProductName> = names.iter().collect();

        // Heuristic 1: identical token sequences.
        let mut by_tokens: BTreeMap<Vec<String>, Vec<&ProductName>> = BTreeMap::new();
        for p in &names {
            by_tokens
                .entry(name_components(p.as_str()))
                .or_default()
                .push(p);
        }
        for group in by_tokens.values() {
            for (i, a) in group.iter().enumerate() {
                for b in group.iter().skip(i + 1) {
                    push_ordered(&mut out, vendor, a, b, ProductHeuristic::TokenEquivalent);
                }
            }
        }

        // Heuristic 2: abbreviation of token initials.
        let name_set: BTreeSet<&str> = names.iter().map(|p| p.as_str()).collect();
        for p in &names {
            if let Some(abbrev) = abbreviation(p.as_str()) {
                if abbrev.len() >= 2 && abbrev != p.as_str() && name_set.contains(abbrev.as_str()) {
                    let other = names
                        .iter()
                        .find(|q| q.as_str() == abbrev.as_str())
                        .expect("present in set");
                    push_ordered(&mut out, vendor, p, other, ProductHeuristic::Abbreviation);
                }
            }
        }

        // Heuristic 3: edit distance 1 (typos), guarded against digit-only
        // differences; quadratic within the vendor, which is fine because
        // per-vendor product counts are small.
        if names.len() <= 600 {
            for (i, a) in names.iter().enumerate() {
                for b in names.iter().skip(i + 1) {
                    if a.as_str().len().abs_diff(b.as_str().len()) > 1 {
                        continue;
                    }
                    if differs_only_in_digit(a.as_str(), b.as_str()) {
                        continue;
                    }
                    if levenshtein(a.as_str(), b.as_str()) == 1 {
                        push_ordered(&mut out, vendor, a, b, ProductHeuristic::EditDistance);
                    }
                }
            }
        }
    }
    // A pair can be proposed by several heuristics; keep the strongest
    // (TokenEquivalent < Abbreviation < EditDistance by enum order — token
    // equivalence is the most reliable, so sort and dedupe keeps it).
    out.sort_by(|x, y| {
        (&x.vendor, &x.a, &x.b, x.heuristic).cmp(&(&y.vendor, &y.a, &y.b, y.heuristic))
    });
    out.dedup_by(|x, y| x.vendor == y.vendor && x.a == y.a && x.b == y.b);
    out
}

fn push_ordered(
    out: &mut Vec<ProductCandidate>,
    vendor: &VendorName,
    a: &ProductName,
    b: &ProductName,
    heuristic: ProductHeuristic,
) {
    if a == b {
        return;
    }
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    out.push(ProductCandidate {
        vendor: vendor.clone(),
        a: x.clone(),
        b: y.clone(),
        heuristic,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::prelude::*;

    fn db_with(cpes: &[(&str, &str)]) -> Database {
        let mut db = Database::new();
        for (i, (v, p)) in cpes.iter().enumerate() {
            let id: CveId = format!("CVE-2017-{:04}", i + 1).parse().unwrap();
            let mut e = CveEntry::new(id, "2017-01-01".parse().unwrap());
            e.affected.push(CpeName::application(*v, *p));
            db.push(e);
        }
        db
    }

    fn find(db: &Database) -> Vec<ProductCandidate> {
        find_product_candidates(db, &NameMapping::default())
    }

    #[test]
    fn finds_separator_variants() {
        let db = db_with(&[
            ("microsoft", "internet_explorer"),
            ("microsoft", "internet-explorer"),
        ]);
        let cands = find(&db);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].heuristic, ProductHeuristic::TokenEquivalent);
    }

    #[test]
    fn finds_abbreviation() {
        let db = db_with(&[("microsoft", "internet_explorer"), ("microsoft", "ie")]);
        let cands = find(&db);
        assert!(cands
            .iter()
            .any(|c| c.heuristic == ProductHeuristic::Abbreviation));
    }

    #[test]
    fn finds_typo_pair() {
        let db = db_with(&[
            ("nativesolutions", "tbe_banner_engine"),
            ("nativesolutions", "the_banner_engine"),
        ]);
        let cands = find(&db);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].heuristic, ProductHeuristic::EditDistance);
    }

    #[test]
    fn digit_difference_is_not_flagged() {
        // The paper's example: different cisco firmware models at edit
        // distance 1 must NOT be merged.
        let db = db_with(&[
            ("cisco", "ucs-e160dp-m1_firmware"),
            ("cisco", "ucs-e140dp-m1_firmware"),
        ]);
        let cands = find(&db);
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    fn different_vendors_are_not_compared() {
        let db = db_with(&[("avg", "antivirus"), ("avast", "antivirus!")]);
        let cands = find(&db);
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    fn vendor_mapping_brings_products_together() {
        // anti-virus is recorded under alias vendor "avg_technologies";
        // after vendor consolidation both product spellings are under avg.
        let db = db_with(&[("avg", "antivirus"), ("avg_technologies", "anti-virus")]);
        let mut mapping = NameMapping::default();
        mapping
            .vendor
            .insert(VendorName::new("avg_technologies"), VendorName::new("avg"));
        let cands = find_product_candidates(&db, &mapping);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].vendor.as_str(), "avg");
    }
}
