//! Vendor and product name consolidation (§4.2).
//!
//! The paper's pipeline: heuristics flag *candidate* name pairs that are
//! likely the same entity ([`vendor`], [`product`]); a verification step —
//! manual in the paper, pluggable here ([`verify`]) — confirms matching
//! pairs; confirmed pairs are grouped and each group remapped to the name
//! with the most associated CVEs ([`mapping`]).
//!
//! Both candidate sweeps run on the blocked matching engine: names are
//! interned into dense-id [`table::NameTable`]s, blocking passes
//! materialise candidate groups as sorted id vectors, and pair proposal
//! plus signal annotation fan out over the `minipar` pool while staying
//! bit-identical to the pre-blocking serial sweeps (kept verbatim in the
//! hidden `legacy` module as the test oracle and bench baseline).

pub mod mapping;
pub mod product;
pub mod table;
pub mod vendor;
pub mod verify;

#[doc(hidden)]
pub mod legacy;

pub use mapping::{ApplyStats, NameMapping};
pub use product::{find_product_candidates, ProductCandidate, ProductHeuristic};
pub use table::NameTable;
pub use vendor::{
    find_vendor_candidates, find_vendor_candidates_cached, PatternBreakdown, VendorCandidate,
    VendorSweepCache,
};
pub use verify::{AcceptanceRateVerifier, OracleVerifier, Verifier};
