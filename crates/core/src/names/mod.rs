//! Vendor and product name consolidation (§4.2).
//!
//! The paper's pipeline: heuristics flag *candidate* name pairs that are
//! likely the same entity ([`vendor`], [`product`]); a verification step —
//! manual in the paper, pluggable here ([`verify`]) — confirms matching
//! pairs; confirmed pairs are grouped and each group remapped to the name
//! with the most associated CVEs ([`mapping`]).

pub mod mapping;
pub mod product;
pub mod vendor;
pub mod verify;

pub use mapping::{ApplyStats, NameMapping};
pub use product::{find_product_candidates, ProductCandidate, ProductHeuristic};
pub use vendor::{find_vendor_candidates, PatternBreakdown, VendorCandidate};
pub use verify::{AcceptanceRateVerifier, OracleVerifier, Verifier};
