//! Vendor-name candidate detection (§4.2, Table 2).
//!
//! Three heuristics flag likely matching vendor-name pairs:
//!
//! 1. the names **share characters in common** — identical up to special
//!    characters, misspellings, abbreviations, or substrings;
//! 2. **a product name is used as a vendor name**;
//! 3. the two vendors **share a product name**.
//!
//! Pairs are annotated with the paper's Table 2 signals: token-identity,
//! number of matching products (`#MP`), strict-prefix relation (`Pref`),
//! product-as-vendor (`PaV`), and the longest-common-substring length.
//!
//! The sweep runs on the blocked engine: the vendor universe is interned
//! into a [`NameTable`], every blocking pass materialises its candidate
//! groups as sorted-id work units, pair proposal fans the blocks over
//! `minipar` (merged in ascending block order, then `sort` + `dedup` on id
//! pairs — which reproduces the historical `BTreeSet` ordering exactly,
//! because ids are assigned in name order), and signal annotation is a
//! second `par_map` over the deduped proposal list. Output is bit-identical
//! to the serial sweep at every `NVD_JOBS`; `names::legacy` keeps the
//! pre-blocking implementation as the oracle that pins this.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use nvd_model::prelude::{Database, ProductName, VendorName};
use textkit::distance::{is_strict_prefix_pair, levenshtein_at_most, longest_common_substring_len};
use textkit::tokenize::{abbreviation, strip_specials};

use super::table::NameTable;

/// A flagged vendor-name pair with its Table 2 signals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VendorCandidate {
    /// Lexicographically smaller name.
    pub a: VendorName,
    /// Lexicographically larger name.
    pub b: VendorName,
    /// Identical after removing special characters.
    pub tokens_identical: bool,
    /// Number of product names the two vendors share (`#MP`).
    pub matching_products: usize,
    /// One name is a strict prefix of the other (`Pref`).
    pub prefix: bool,
    /// One name equals a product of the other (`PaV`).
    pub product_as_vendor: bool,
    /// One name is the initials-abbreviation of the other.
    pub abbreviation: bool,
    /// Longest common substring length between the names.
    pub lcs_len: usize,
}

impl VendorCandidate {
    /// Whether the longest-substring signal clears the paper's ≥3 bar.
    pub fn lcs_at_least_3(&self) -> bool {
        self.lcs_len >= 3
    }
}

/// Shared-product groups larger than this are skipped: huge groups (e.g. a
/// generic product name) propose quadratically many junk pairs.
const SHARED_PRODUCT_GROUP_CAP: usize = 50;

/// Edit-distance blocks larger than this are skipped for the same reason.
const EDIT_GROUP_CAP: usize = 200;

/// Edit-distance budget for the near-duplicate spelling blocks.
const EDIT_MAX: usize = 2;

/// How many prefix-scan start ids each work unit covers.
const PREFIX_SCAN_CHUNK: u32 = 256;

/// One blocking work unit: a group of ids that may contain matching pairs,
/// plus the rule for proposing pairs from it. Ids inside a block ascend, so
/// every proposal is already an ordered `(smaller, larger)` pair.
#[derive(Debug)]
enum Block {
    /// Every unordered pair in the group is proposed (identical normalised
    /// form; shared product name).
    AllPairs(Vec<u32>),
    /// The centre pairs with every other member (abbreviation collisions;
    /// product-as-vendor).
    Star { center: u32, others: Vec<u32> },
    /// Pairs within edit distance [`EDIT_MAX`] (shared 4-prefix / 4-suffix
    /// spelling blocks).
    EditPairs(Vec<u32>),
    /// Forward prefix scan over the ascending id range `[start, end)`: each
    /// start id pairs with every follower it strictly prefixes.
    PrefixScan { start: u32, end: u32 },
}

impl Block {
    /// Appends this block's proposals to `out` as ordered id pairs.
    fn propose(&self, table: &NameTable<'_, VendorName>, out: &mut Vec<(u32, u32)>) {
        match self {
            Block::AllPairs(ids) => {
                for (i, &a) in ids.iter().enumerate() {
                    for &b in &ids[i + 1..] {
                        out.push((a, b));
                    }
                }
            }
            Block::Star { center, others } => {
                for &o in others {
                    if o != *center {
                        out.push((o.min(*center), o.max(*center)));
                    }
                }
            }
            Block::EditPairs(ids) => edit_pairs_into(table, ids, out),
            Block::PrefixScan { start, end } => {
                let n = table.len() as u32;
                for i in *start..*end {
                    let prefix = table.name(i).as_str();
                    for j in i + 1..n {
                        if !table.name(j).as_str().starts_with(prefix) {
                            break;
                        }
                        out.push((i, j));
                    }
                }
            }
        }
    }
}

/// Appends the surviving pairs of one edit-distance block: every pair of
/// members within Levenshtein distance [`EDIT_MAX`].
fn edit_pairs_into(table: &NameTable<'_, VendorName>, ids: &[u32], out: &mut Vec<(u32, u32)>) {
    for (i, &a) in ids.iter().enumerate() {
        let sa = table.name(a).as_str();
        for &b in &ids[i + 1..] {
            if levenshtein_at_most(sa, table.name(b).as_str(), EDIT_MAX).is_some() {
                out.push((a, b));
            }
        }
    }
}

/// Finds all candidate vendor pairs in a database.
///
/// Blocking keeps this sub-quadratic: pairs are proposed from shared
/// normalised forms, shared abbreviations, shared products, vendor names
/// colliding with product names, prefix neighbourhoods in sorted order, and
/// near-duplicate spelling (edit distance ≤ 2 within a shared-trigram
/// block). Proposal and signal annotation each fan out over the `minipar`
/// pool; output is bit-identical at every `NVD_JOBS` setting.
pub fn find_vendor_candidates(db: &Database) -> Vec<VendorCandidate> {
    // Every CPE contributes its vendor to `products_by_vendor`, so the
    // map's key set *is* the vendor universe in sorted order — interning
    // from it skips the separate `vendor_set` pass the legacy sweep paid
    // for, and the per-id product sets are just the values in key order.
    let products_by_vendor = db.products_by_vendor();
    let table = NameTable::from_sorted_iter(products_by_vendor.keys().copied());
    let products: Vec<&BTreeSet<&ProductName>> = products_by_vendor.values().collect();
    // Per-id derived keys, computed once and shared by blocking and
    // annotation (the legacy sweep recomputed them per pair).
    let norms: Vec<String> = table
        .names()
        .iter()
        .map(|v| strip_specials(v.as_str()))
        .collect();
    let abbrevs: Vec<Option<String>> = table
        .names()
        .iter()
        .map(|v| abbreviation(v.as_str()))
        .collect();

    let mut blocks = standard_blocks(&table, &products, &norms, &abbrevs);
    for (_key, group) in edit_groups(&table) {
        blocks.push(Block::EditPairs(group));
    }

    // Pair proposal: one task per block, merged in ascending block order.
    // The id sort afterwards makes the merge order irrelevant to output —
    // and equal to the legacy BTreeSet iteration order.
    let per_block = minipar::par_map(&blocks, |b| {
        let mut out = Vec::new();
        b.propose(&table, &mut out);
        out
    });
    let mut pairs: Vec<(u32, u32)> = per_block.into_iter().flatten().collect();
    pairs.sort_unstable();
    pairs.dedup();

    // Signal annotation: pure per pair, fanned over the deduped list.
    minipar::par_map(&pairs, |&(ia, ib)| {
        annotate_pair(&table, &products, &norms, &abbrevs, ia, ib)
    })
}

/// Blocking passes 1–5 (everything except the edit-distance blocks, which
/// the incremental sweep caches separately).
fn standard_blocks(
    table: &NameTable<'_, VendorName>,
    products: &[&BTreeSet<&ProductName>],
    norms: &[String],
    abbrevs: &[Option<String>],
) -> Vec<Block> {
    let mut blocks: Vec<Block> = Vec::new();

    // Block 1: identical strip-specials form.
    let mut by_norm: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
    for (id, _) in table.enumerate() {
        by_norm
            .entry(norms[id as usize].as_str())
            .or_default()
            .push(id);
    }
    for group in by_norm.into_values() {
        if group.len() >= 2 {
            blocks.push(Block::AllPairs(group));
        }
    }

    // Block 2: abbreviation collisions (lms ↔ lan_management_system). The
    // short form resolves through the table's binary search instead of the
    // legacy O(n) scan per collision.
    let mut by_abbrev: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
    for (id, _) in table.enumerate() {
        if let Some(a) = abbrevs[id as usize].as_deref() {
            if a.len() >= 2 {
                by_abbrev.entry(a).or_default().push(id);
            }
        }
    }
    for (abbrev, group) in by_abbrev {
        if let Some(short) = table.id_of(abbrev) {
            blocks.push(Block::Star {
                center: short,
                others: group,
            });
        }
    }

    // Block 3: shared product names.
    let mut vendors_by_product: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
    for (id, _) in table.enumerate() {
        for p in products[id as usize] {
            vendors_by_product.entry(p.as_str()).or_default().push(id);
        }
    }
    for group in vendors_by_product.values() {
        if (2..=SHARED_PRODUCT_GROUP_CAP).contains(&group.len()) {
            blocks.push(Block::AllPairs(group.clone()));
        }
    }

    // Block 4: vendor name equals a product name of another vendor.
    for (id, v) in table.enumerate() {
        if let Some(owners) = vendors_by_product.get(v.as_str()) {
            let others: Vec<u32> = owners.iter().copied().filter(|&o| o != id).collect();
            if !others.is_empty() {
                blocks.push(Block::Star { center: id, others });
            }
        }
    }

    // Block 5: prefix neighbourhoods in sorted order, chunked into
    // fixed-size start ranges so the scan parallelises.
    let n = table.len() as u32;
    let mut start = 0u32;
    while start < n {
        let end = (start + PREFIX_SCAN_CHUNK).min(n);
        blocks.push(Block::PrefixScan { start, end });
        start = end;
    }

    blocks
}

/// Block 6: near-duplicate spellings via shared 4-prefix blocks, plus
/// last-4 blocks for misspellings dropping an early character
/// (microsoft/microsft share only a 1-prefix with the typo at position 1).
/// Each cap-filtered group is returned with a cache key (`p`/`s` pass tag
/// plus the block's character key) so the incremental sweep can reuse
/// survivors when a block's member names are unchanged.
fn edit_groups(table: &NameTable<'_, VendorName>) -> Vec<(String, Vec<u32>)> {
    let mut by_prefix4: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    let mut by_suffix4: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    for (id, v) in table.enumerate() {
        by_prefix4
            .entry(v.as_str().chars().take(4).collect())
            .or_default()
            .push(id);
        by_suffix4
            .entry(v.as_str().chars().rev().take(4).collect())
            .or_default()
            .push(id);
    }
    let tag = |pass: char, key: &str| {
        let mut k = String::with_capacity(key.len() + 2);
        k.push(pass);
        k.push(':');
        k.push_str(key);
        k
    };
    by_prefix4
        .into_iter()
        .map(|(key, group)| (tag('p', &key), group))
        .chain(
            by_suffix4
                .into_iter()
                .map(|(key, group)| (tag('s', &key), group)),
        )
        .filter(|(_, group)| (2..=EDIT_GROUP_CAP).contains(&group.len()))
        .collect()
}

/// Annotates one proposed pair with its Table 2 signals. Pure in the two
/// names, their derived keys, and their product sets.
fn annotate_pair(
    table: &NameTable<'_, VendorName>,
    products: &[&BTreeSet<&ProductName>],
    norms: &[String],
    abbrevs: &[Option<String>],
    ia: u32,
    ib: u32,
) -> VendorCandidate {
    let (a, b) = (table.name(ia), table.name(ib));
    let pa = products[ia as usize];
    let pb = products[ib as usize];
    let matching_products = pa.intersection(pb).count();
    let product_as_vendor =
        pa.iter().any(|p| p.as_str() == b.as_str()) || pb.iter().any(|p| p.as_str() == a.as_str());
    let abbrev = abbrevs[ia as usize].as_deref() == Some(b.as_str())
        || abbrevs[ib as usize].as_deref() == Some(a.as_str());
    VendorCandidate {
        a: a.clone(),
        b: b.clone(),
        tokens_identical: norms[ia as usize] == norms[ib as usize],
        matching_products,
        prefix: is_strict_prefix_pair(a.as_str(), b.as_str()),
        product_as_vendor,
        abbreviation: abbrev,
        lcs_len: longest_common_substring_len(a.as_str(), b.as_str()),
    }
}

/// Carry-over state for [`find_vendor_candidates_cached`]: enough of the
/// previous sweep to skip the expensive parts whose inputs are unchanged.
///
/// Two layers, each keyed on **owned names** (ids shift as the universe
/// grows, names don't):
///
/// - per edit-distance block (keyed by pass + 4-char key): the member
///   names and the surviving pairs — a block whose member-name list is
///   unchanged reuses its survivors without re-running Levenshtein;
/// - per proposed pair: the annotated candidate — reused when neither
///   vendor is in the caller's dirty set (every other signal is a pure
///   function of the two names).
///
/// The cache never influences *which* pairs are proposed or how they are
/// ordered, only whether their per-pair work is recomputed, so
/// [`find_vendor_candidates_cached`] is bit-identical to
/// [`find_vendor_candidates`] on the same database.
#[derive(Debug, Clone, Default)]
pub struct VendorSweepCache {
    edit_blocks: HashMap<String, EditBlockEntry>,
    pairs: HashMap<String, VendorCandidate>,
}

#[derive(Debug, Clone)]
struct EditBlockEntry {
    members: Vec<String>,
    survivors: Vec<(String, String)>,
}

/// Joint key for an ordered name pair (`\0` never occurs in a CPE name).
fn pair_key(a: &str, b: &str) -> String {
    let mut k = String::with_capacity(a.len() + b.len() + 1);
    k.push_str(a);
    k.push('\0');
    k.push_str(b);
    k
}

/// [`find_vendor_candidates`] with carry-over: recomputes the cheap
/// near-linear blocking passes, but reuses cached edit-distance survivors
/// and pair annotations wherever the delta left their inputs untouched.
/// Output is bit-identical to the uncached sweep at every `NVD_JOBS`.
///
/// `dirty` is the invalidation contract: it must contain every vendor
/// name whose CPE rows may have changed since `cache` was last refreshed
/// — for a delta, the vendors of every delivered entry's old **and** new
/// versions (which also covers vendors entering or leaving the universe).
/// A superset is always safe; an incomplete set can return stale product
/// signals.
pub fn find_vendor_candidates_cached(
    db: &Database,
    cache: &mut VendorSweepCache,
    dirty: &BTreeSet<VendorName>,
) -> Vec<VendorCandidate> {
    let products_by_vendor = db.products_by_vendor();
    let table = NameTable::from_sorted_iter(products_by_vendor.keys().copied());
    let products: Vec<&BTreeSet<&ProductName>> = products_by_vendor.values().collect();
    let norms: Vec<String> = table
        .names()
        .iter()
        .map(|v| strip_specials(v.as_str()))
        .collect();
    let abbrevs: Vec<Option<String>> = table
        .names()
        .iter()
        .map(|v| abbreviation(v.as_str()))
        .collect();

    // Cached pair annotations are only trusted when both sides are
    // outside the caller's dirty set.
    let dirty: Vec<bool> = table.enumerate().map(|(_, v)| dirty.contains(v)).collect();

    let std_blocks = standard_blocks(&table, &products, &norms, &abbrevs);

    // Edit blocks: reuse survivors when the member-name list is unchanged.
    let mut reused: Vec<(u32, u32)> = Vec::new();
    let mut jobs: Vec<(String, Vec<u32>)> = Vec::new();
    for (key, group) in edit_groups(&table) {
        let hit = cache.edit_blocks.get(&key).filter(|e| {
            e.members.len() == group.len()
                && e.members
                    .iter()
                    .zip(&group)
                    .all(|(m, &id)| m == table.name(id).as_str())
        });
        match hit {
            Some(e) => {
                for (a, b) in &e.survivors {
                    let ia = table.id_of(a).expect("cached member still interned");
                    let ib = table.id_of(b).expect("cached member still interned");
                    reused.push((ia, ib));
                }
            }
            None => jobs.push((key, group)),
        }
    }

    let per_block = minipar::par_map(&std_blocks, |b| {
        let mut out = Vec::new();
        b.propose(&table, &mut out);
        out
    });
    let computed: Vec<Vec<(u32, u32)>> = minipar::par_map(&jobs, |job| {
        let mut out = Vec::new();
        edit_pairs_into(&table, &job.1, &mut out);
        out
    });
    for ((key, ids), survivors) in jobs.iter().zip(&computed) {
        cache.edit_blocks.insert(
            key.clone(),
            EditBlockEntry {
                members: ids
                    .iter()
                    .map(|&id| table.name(id).as_str().to_owned())
                    .collect(),
                survivors: survivors
                    .iter()
                    .map(|&(a, b)| {
                        (
                            table.name(a).as_str().to_owned(),
                            table.name(b).as_str().to_owned(),
                        )
                    })
                    .collect(),
            },
        );
    }

    let mut pairs: Vec<(u32, u32)> = per_block
        .into_iter()
        .flatten()
        .chain(reused)
        .chain(computed.into_iter().flatten())
        .collect();
    pairs.sort_unstable();
    pairs.dedup();

    let annotated = minipar::par_map(&pairs, |&(ia, ib)| {
        if !dirty[ia as usize] && !dirty[ib as usize] {
            if let Some(c) = cache
                .pairs
                .get(&pair_key(table.name(ia).as_str(), table.name(ib).as_str()))
            {
                return c.clone();
            }
        }
        annotate_pair(&table, &products, &norms, &abbrevs, ia, ib)
    });

    // Refresh the carry-over for the next delta.
    cache.pairs = annotated
        .iter()
        .map(|c| (pair_key(c.a.as_str(), c.b.as_str()), c.clone()))
        .collect();
    annotated
}

/// The paper's Table 2 row structure: candidate/confirmed counts per
/// pattern, split by the LCS ≥ 3 signal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternBreakdown {
    /// `(possible, confirmed)` for token-identical pairs.
    pub tokens: (usize, usize),
    /// Per `#MP` bucket (0, 1, >1) with LCS ≥ 3.
    pub mp_lcs3: [(usize, usize); 3],
    /// Prefix pairs with LCS ≥ 3.
    pub pref_lcs3: (usize, usize),
    /// Product-as-vendor pairs with LCS ≥ 3.
    pub pav_lcs3: (usize, usize),
    /// Per `#MP` bucket (0, 1, >1) with LCS < 3.
    pub mp_lcs_short: [(usize, usize); 3],
    /// Prefix pairs with LCS < 3.
    pub pref_lcs_short: (usize, usize),
    /// Product-as-vendor pairs with LCS < 3.
    pub pav_lcs_short: (usize, usize),
}

impl PatternBreakdown {
    /// Tabulates candidates the way Table 2 does. `confirmed` flags one
    /// entry per candidate (same order).
    pub fn tabulate(candidates: &[VendorCandidate], confirmed: &[bool]) -> Self {
        assert_eq!(candidates.len(), confirmed.len(), "length mismatch");
        let mut out = Self::default();
        let add = |slot: &mut (usize, usize), ok: bool| {
            slot.0 += 1;
            if ok {
                slot.1 += 1;
            }
        };
        for (c, &ok) in candidates.iter().zip(confirmed) {
            if c.tokens_identical {
                add(&mut out.tokens, ok);
                continue;
            }
            let mp_bucket = match c.matching_products {
                0 => 0,
                1 => 1,
                _ => 2,
            };
            if c.lcs_at_least_3() {
                add(&mut out.mp_lcs3[mp_bucket], ok);
                if c.prefix {
                    add(&mut out.pref_lcs3, ok);
                }
                if c.product_as_vendor {
                    add(&mut out.pav_lcs3, ok);
                }
            } else {
                add(&mut out.mp_lcs_short[mp_bucket], ok);
                if c.prefix {
                    add(&mut out.pref_lcs_short, ok);
                }
                if c.product_as_vendor {
                    add(&mut out.pav_lcs_short, ok);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::prelude::*;

    fn db_with(cpes: &[(&str, &str)]) -> Database {
        let mut db = Database::new();
        for (i, (v, p)) in cpes.iter().enumerate() {
            let id: CveId = format!("CVE-2015-{:04}", i + 1).parse().unwrap();
            let mut e = CveEntry::new(id, "2015-01-01".parse().unwrap());
            e.affected.push(CpeName::application(*v, *p));
            db.push(e);
        }
        db
    }

    fn has_pair(cands: &[VendorCandidate], a: &str, b: &str) -> bool {
        cands.iter().any(|c| {
            (c.a.as_str() == a && c.b.as_str() == b) || (c.a.as_str() == b && c.b.as_str() == a)
        })
    }

    #[test]
    fn finds_special_character_variant() {
        let db = db_with(&[("avast", "antivirus"), ("avast!", "antivirus")]);
        let cands = find_vendor_candidates(&db);
        assert!(has_pair(&cands, "avast", "avast!"));
        let c = cands.iter().find(|c| c.a.as_str() == "avast").unwrap();
        assert!(c.tokens_identical);
        assert!(c.matching_products >= 1);
    }

    #[test]
    fn finds_misspelling() {
        let db = db_with(&[("microsoft", "windows"), ("microsft", "office")]);
        let cands = find_vendor_candidates(&db);
        assert!(has_pair(&cands, "microsft", "microsoft"));
    }

    #[test]
    fn finds_prefix_extension() {
        let db = db_with(&[("lynx", "lynx"), ("lynx_project", "browser")]);
        let cands = find_vendor_candidates(&db);
        let c = cands
            .iter()
            .find(|c| has_pair(std::slice::from_ref(c), "lynx", "lynx_project"))
            .expect("prefix pair found");
        assert!(c.prefix);
    }

    #[test]
    fn finds_abbreviation() {
        let db = db_with(&[
            ("lan_management_system", "lms_client"),
            ("lms", "lms_client"),
        ]);
        let cands = find_vendor_candidates(&db);
        let c = cands
            .iter()
            .find(|c| has_pair(std::slice::from_ref(c), "lms", "lan_management_system"))
            .expect("abbreviation pair found");
        assert!(c.abbreviation);
        // lms/lan_management_system share the product too.
        assert_eq!(c.matching_products, 1);
    }

    #[test]
    fn finds_product_as_vendor() {
        let db = db_with(&[("microsoft", "windows"), ("windows", "media_player")]);
        let cands = find_vendor_candidates(&db);
        let c = cands
            .iter()
            .find(|c| has_pair(std::slice::from_ref(c), "microsoft", "windows"))
            .expect("PaV pair found");
        assert!(c.product_as_vendor);
    }

    #[test]
    fn finds_shared_product_pair_with_unrelated_names() {
        let db = db_with(&[("nginx", "nginx"), ("igor_sysoev", "nginx")]);
        let cands = find_vendor_candidates(&db);
        let c = cands
            .iter()
            .find(|c| has_pair(std::slice::from_ref(c), "igor_sysoev", "nginx"))
            .expect("shared-product pair found");
        assert!(c.matching_products >= 1);
    }

    #[test]
    fn unrelated_vendors_not_flagged() {
        let db = db_with(&[("oracle", "database"), ("mozilla", "firefox")]);
        let cands = find_vendor_candidates(&db);
        assert!(!has_pair(&cands, "oracle", "mozilla"));
    }

    #[test]
    fn tabulation_buckets_match_counts() {
        let db = db_with(&[
            ("avast", "antivirus"),
            ("avast!", "antivirus"),
            ("lynx", "lynx"),
            ("lynx_project", "browser"),
        ]);
        let cands = find_vendor_candidates(&db);
        let confirmed: Vec<bool> = cands.iter().map(|_| true).collect();
        let t = PatternBreakdown::tabulate(&cands, &confirmed);
        let total = t.tokens.0
            + t.mp_lcs3.iter().map(|x| x.0).sum::<usize>()
            + t.mp_lcs_short.iter().map(|x| x.0).sum::<usize>();
        assert_eq!(total, cands.len());
    }

    #[test]
    fn blocked_sweep_matches_legacy_replica_on_mixed_fixture() {
        // Every block kind fires at least once: strip-specials variants,
        // abbreviations, shared products, product-as-vendor, prefixes,
        // and both edit-distance block flavours.
        let db = db_with(&[
            ("avast", "antivirus"),
            ("avast!", "antivirus"),
            ("lan_management_system", "lms_client"),
            ("lms", "lms_client"),
            ("microsoft", "windows"),
            ("microsft", "office"),
            ("windows", "media_player"),
            ("lynx", "lynx"),
            ("lynx_project", "browser"),
            ("nginx", "nginx"),
            ("igor_sysoev", "nginx"),
            ("oracle", "database"),
        ]);
        let blocked = find_vendor_candidates(&db);
        let legacy = crate::names::legacy::find_vendor_candidates_legacy(&db);
        assert_eq!(blocked, legacy);
    }

    #[test]
    fn cached_sweep_matches_uncached_across_deltas() {
        let mut db = db_with(&[
            ("avast", "antivirus"),
            ("avast!", "antivirus"),
            ("microsoft", "windows"),
            ("microsft", "office"),
            ("lynx", "lynx"),
            ("lynx_project", "browser"),
        ]);
        let mut cache = VendorSweepCache::default();
        let all: BTreeSet<VendorName> = db.vendor_set().into_iter().cloned().collect();
        assert_eq!(
            find_vendor_candidates_cached(&db, &mut cache, &all),
            find_vendor_candidates(&db),
            "cold cache diverged"
        );
        // A delta introducing one near-duplicate vendor: only it is dirty.
        let id: CveId = "CVE-2016-0001".parse().unwrap();
        let mut e = CveEntry::new(id, "2016-01-01".parse().unwrap());
        e.affected.push(CpeName::application("avst", "antivirus"));
        db.push(e);
        let dirty: BTreeSet<VendorName> = [VendorName::new("avst")].into_iter().collect();
        assert_eq!(
            find_vendor_candidates_cached(&db, &mut cache, &dirty),
            find_vendor_candidates(&db),
            "warm cache diverged after an insert"
        );
        // An empty delta: everything reused, still identical.
        assert_eq!(
            find_vendor_candidates_cached(&db, &mut cache, &BTreeSet::new()),
            find_vendor_candidates(&db),
            "warm cache diverged on an empty delta"
        );
    }

    #[test]
    fn blocked_sweep_is_bit_identical_across_job_counts() {
        let db = db_with(&[
            ("avast", "antivirus"),
            ("avast!", "antivirus"),
            ("microsoft", "windows"),
            ("microsft", "office"),
            ("windows", "media_player"),
            ("lynx", "lynx"),
            ("lynx_project", "browser"),
        ]);
        let serial = minipar::with_jobs(1, || find_vendor_candidates(&db));
        let wide = minipar::with_jobs(4, || find_vendor_candidates(&db));
        assert_eq!(serial, wide);
    }
}
