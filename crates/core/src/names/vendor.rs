//! Vendor-name candidate detection (§4.2, Table 2).
//!
//! Three heuristics flag likely matching vendor-name pairs:
//!
//! 1. the names **share characters in common** — identical up to special
//!    characters, misspellings, abbreviations, or substrings;
//! 2. **a product name is used as a vendor name**;
//! 3. the two vendors **share a product name**.
//!
//! Pairs are annotated with the paper's Table 2 signals: token-identity,
//! number of matching products (`#MP`), strict-prefix relation (`Pref`),
//! product-as-vendor (`PaV`), and the longest-common-substring length.

use std::collections::{BTreeMap, BTreeSet};

use nvd_model::prelude::{Database, VendorName};
use textkit::distance::{is_strict_prefix_pair, levenshtein, longest_common_substring_len};
use textkit::tokenize::{abbreviation, strip_specials};

/// A flagged vendor-name pair with its Table 2 signals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VendorCandidate {
    /// Lexicographically smaller name.
    pub a: VendorName,
    /// Lexicographically larger name.
    pub b: VendorName,
    /// Identical after removing special characters.
    pub tokens_identical: bool,
    /// Number of product names the two vendors share (`#MP`).
    pub matching_products: usize,
    /// One name is a strict prefix of the other (`Pref`).
    pub prefix: bool,
    /// One name equals a product of the other (`PaV`).
    pub product_as_vendor: bool,
    /// One name is the initials-abbreviation of the other.
    pub abbreviation: bool,
    /// Longest common substring length between the names.
    pub lcs_len: usize,
}

impl VendorCandidate {
    /// Whether the longest-substring signal clears the paper's ≥3 bar.
    pub fn lcs_at_least_3(&self) -> bool {
        self.lcs_len >= 3
    }
}

/// Finds all candidate vendor pairs in a database.
///
/// Blocking keeps this sub-quadratic: pairs are proposed from shared
/// normalised forms, shared abbreviations, shared products, vendor names
/// colliding with product names, prefix neighbourhoods in sorted order, and
/// near-duplicate spelling (edit distance ≤ 2 within a shared-trigram
/// block). Signals are then computed per proposed pair.
pub fn find_vendor_candidates(db: &Database) -> Vec<VendorCandidate> {
    let vendors: Vec<&VendorName> = db.vendor_set().into_iter().collect();
    let products_by_vendor = db.products_by_vendor();
    let empty = BTreeSet::new();

    let mut proposed: BTreeSet<(&VendorName, &VendorName)> = BTreeSet::new();

    // Block 1: identical strip-specials form.
    let mut by_norm: BTreeMap<String, Vec<&VendorName>> = BTreeMap::new();
    for v in &vendors {
        by_norm
            .entry(strip_specials(v.as_str()))
            .or_default()
            .push(v);
    }
    for group in by_norm.values() {
        pair_group(group, &mut proposed);
    }

    // Block 2: abbreviation collisions (lms ↔ lan_management_system).
    let mut by_abbrev: BTreeMap<String, Vec<&VendorName>> = BTreeMap::new();
    for v in &vendors {
        if let Some(a) = abbreviation(v.as_str()) {
            if a.len() >= 2 {
                by_abbrev.entry(a).or_default().push(v);
            }
        }
    }
    let vendor_lookup: BTreeSet<&str> = vendors.iter().map(|v| v.as_str()).collect();
    for (abbrev, group) in &by_abbrev {
        if vendor_lookup.contains(abbrev.as_str()) {
            let short = vendors
                .iter()
                .find(|v| v.as_str() == abbrev.as_str())
                .expect("present in lookup");
            for long in group {
                order_and_insert(short, long, &mut proposed);
            }
        }
    }

    // Block 3: shared product names.
    let mut vendors_by_product: BTreeMap<&str, Vec<&VendorName>> = BTreeMap::new();
    for (vendor, products) in &products_by_vendor {
        for p in products {
            vendors_by_product
                .entry(p.as_str())
                .or_default()
                .push(vendor);
        }
    }
    for group in vendors_by_product.values() {
        if group.len() <= 50 {
            pair_group(group, &mut proposed);
        }
    }

    // Block 4: vendor name equals a product name of another vendor.
    for v in &vendors {
        if let Some(owners) = vendors_by_product.get(v.as_str()) {
            for owner in owners {
                if owner.as_str() != v.as_str() {
                    order_and_insert(v, owner, &mut proposed);
                }
            }
        }
    }

    // Block 5: prefix neighbourhoods in sorted order.
    for (i, v) in vendors.iter().enumerate() {
        for w in vendors.iter().skip(i + 1) {
            if !w.as_str().starts_with(v.as_str()) {
                break;
            }
            order_and_insert(v, w, &mut proposed);
        }
    }

    // Block 6: near-duplicate spellings via shared 4-prefix blocks.
    let mut by_prefix4: BTreeMap<String, Vec<&VendorName>> = BTreeMap::new();
    for v in &vendors {
        let key: String = v.as_str().chars().take(4).collect();
        by_prefix4.entry(key).or_default().push(v);
    }
    for group in by_prefix4.values() {
        if group.len() > 200 {
            continue;
        }
        for (i, a) in group.iter().enumerate() {
            for b in group.iter().skip(i + 1) {
                if levenshtein(a.as_str(), b.as_str()) <= 2 {
                    order_and_insert(a, b, &mut proposed);
                }
            }
        }
    }
    // Misspellings dropping an early character (microsoft/microsft share
    // only a 1-prefix with the typo at position 1): block on last-4 too.
    let mut by_suffix4: BTreeMap<String, Vec<&VendorName>> = BTreeMap::new();
    for v in &vendors {
        let s = v.as_str();
        let key: String = s.chars().rev().take(4).collect();
        by_suffix4.entry(key).or_default().push(v);
    }
    for group in by_suffix4.values() {
        if group.len() > 200 {
            continue;
        }
        for (i, a) in group.iter().enumerate() {
            for b in group.iter().skip(i + 1) {
                if levenshtein(a.as_str(), b.as_str()) <= 2 {
                    order_and_insert(a, b, &mut proposed);
                }
            }
        }
    }

    // Annotate every proposed pair with the Table 2 signals.
    proposed
        .into_iter()
        .map(|(a, b)| {
            let pa = products_by_vendor.get(a).unwrap_or(&empty);
            let pb = products_by_vendor.get(b).unwrap_or(&empty);
            let matching_products = pa.intersection(pb).count();
            let product_as_vendor = pa.iter().any(|p| p.as_str() == b.as_str())
                || pb.iter().any(|p| p.as_str() == a.as_str());
            let abbrev = abbreviation(a.as_str()).as_deref() == Some(b.as_str())
                || abbreviation(b.as_str()).as_deref() == Some(a.as_str());
            VendorCandidate {
                a: a.clone(),
                b: b.clone(),
                tokens_identical: strip_specials(a.as_str()) == strip_specials(b.as_str()),
                matching_products,
                prefix: is_strict_prefix_pair(a.as_str(), b.as_str()),
                product_as_vendor,
                abbreviation: abbrev,
                lcs_len: longest_common_substring_len(a.as_str(), b.as_str()),
            }
        })
        .collect()
}

fn pair_group<'a>(
    group: &[&'a VendorName],
    proposed: &mut BTreeSet<(&'a VendorName, &'a VendorName)>,
) {
    for (i, a) in group.iter().enumerate() {
        for b in group.iter().skip(i + 1) {
            order_and_insert(a, b, proposed);
        }
    }
}

fn order_and_insert<'a>(
    a: &'a VendorName,
    b: &'a VendorName,
    proposed: &mut BTreeSet<(&'a VendorName, &'a VendorName)>,
) {
    if a == b {
        return;
    }
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    proposed.insert((x, y));
}

/// The paper's Table 2 row structure: candidate/confirmed counts per
/// pattern, split by the LCS ≥ 3 signal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternBreakdown {
    /// `(possible, confirmed)` for token-identical pairs.
    pub tokens: (usize, usize),
    /// Per `#MP` bucket (0, 1, >1) with LCS ≥ 3.
    pub mp_lcs3: [(usize, usize); 3],
    /// Prefix pairs with LCS ≥ 3.
    pub pref_lcs3: (usize, usize),
    /// Product-as-vendor pairs with LCS ≥ 3.
    pub pav_lcs3: (usize, usize),
    /// Per `#MP` bucket (0, 1, >1) with LCS < 3.
    pub mp_lcs_short: [(usize, usize); 3],
    /// Prefix pairs with LCS < 3.
    pub pref_lcs_short: (usize, usize),
    /// Product-as-vendor pairs with LCS < 3.
    pub pav_lcs_short: (usize, usize),
}

impl PatternBreakdown {
    /// Tabulates candidates the way Table 2 does. `confirmed` flags one
    /// entry per candidate (same order).
    pub fn tabulate(candidates: &[VendorCandidate], confirmed: &[bool]) -> Self {
        assert_eq!(candidates.len(), confirmed.len(), "length mismatch");
        let mut out = Self::default();
        let add = |slot: &mut (usize, usize), ok: bool| {
            slot.0 += 1;
            if ok {
                slot.1 += 1;
            }
        };
        for (c, &ok) in candidates.iter().zip(confirmed) {
            if c.tokens_identical {
                add(&mut out.tokens, ok);
                continue;
            }
            let mp_bucket = match c.matching_products {
                0 => 0,
                1 => 1,
                _ => 2,
            };
            if c.lcs_at_least_3() {
                add(&mut out.mp_lcs3[mp_bucket], ok);
                if c.prefix {
                    add(&mut out.pref_lcs3, ok);
                }
                if c.product_as_vendor {
                    add(&mut out.pav_lcs3, ok);
                }
            } else {
                add(&mut out.mp_lcs_short[mp_bucket], ok);
                if c.prefix {
                    add(&mut out.pref_lcs_short, ok);
                }
                if c.product_as_vendor {
                    add(&mut out.pav_lcs_short, ok);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::prelude::*;

    fn db_with(cpes: &[(&str, &str)]) -> Database {
        let mut db = Database::new();
        for (i, (v, p)) in cpes.iter().enumerate() {
            let id: CveId = format!("CVE-2015-{:04}", i + 1).parse().unwrap();
            let mut e = CveEntry::new(id, "2015-01-01".parse().unwrap());
            e.affected.push(CpeName::application(*v, *p));
            db.push(e);
        }
        db
    }

    fn has_pair(cands: &[VendorCandidate], a: &str, b: &str) -> bool {
        cands.iter().any(|c| {
            (c.a.as_str() == a && c.b.as_str() == b) || (c.a.as_str() == b && c.b.as_str() == a)
        })
    }

    #[test]
    fn finds_special_character_variant() {
        let db = db_with(&[("avast", "antivirus"), ("avast!", "antivirus")]);
        let cands = find_vendor_candidates(&db);
        assert!(has_pair(&cands, "avast", "avast!"));
        let c = cands.iter().find(|c| c.a.as_str() == "avast").unwrap();
        assert!(c.tokens_identical);
        assert!(c.matching_products >= 1);
    }

    #[test]
    fn finds_misspelling() {
        let db = db_with(&[("microsoft", "windows"), ("microsft", "office")]);
        let cands = find_vendor_candidates(&db);
        assert!(has_pair(&cands, "microsft", "microsoft"));
    }

    #[test]
    fn finds_prefix_extension() {
        let db = db_with(&[("lynx", "lynx"), ("lynx_project", "browser")]);
        let cands = find_vendor_candidates(&db);
        let c = cands
            .iter()
            .find(|c| has_pair(std::slice::from_ref(c), "lynx", "lynx_project"))
            .expect("prefix pair found");
        assert!(c.prefix);
    }

    #[test]
    fn finds_abbreviation() {
        let db = db_with(&[
            ("lan_management_system", "lms_client"),
            ("lms", "lms_client"),
        ]);
        let cands = find_vendor_candidates(&db);
        let c = cands
            .iter()
            .find(|c| has_pair(std::slice::from_ref(c), "lms", "lan_management_system"))
            .expect("abbreviation pair found");
        assert!(c.abbreviation);
        // lms/lan_management_system share the product too.
        assert_eq!(c.matching_products, 1);
    }

    #[test]
    fn finds_product_as_vendor() {
        let db = db_with(&[("microsoft", "windows"), ("windows", "media_player")]);
        let cands = find_vendor_candidates(&db);
        let c = cands
            .iter()
            .find(|c| has_pair(std::slice::from_ref(c), "microsoft", "windows"))
            .expect("PaV pair found");
        assert!(c.product_as_vendor);
    }

    #[test]
    fn finds_shared_product_pair_with_unrelated_names() {
        let db = db_with(&[("nginx", "nginx"), ("igor_sysoev", "nginx")]);
        let cands = find_vendor_candidates(&db);
        let c = cands
            .iter()
            .find(|c| has_pair(std::slice::from_ref(c), "igor_sysoev", "nginx"))
            .expect("shared-product pair found");
        assert!(c.matching_products >= 1);
    }

    #[test]
    fn unrelated_vendors_not_flagged() {
        let db = db_with(&[("oracle", "database"), ("mozilla", "firefox")]);
        let cands = find_vendor_candidates(&db);
        assert!(!has_pair(&cands, "oracle", "mozilla"));
    }

    #[test]
    fn tabulation_buckets_match_counts() {
        let db = db_with(&[
            ("avast", "antivirus"),
            ("avast!", "antivirus"),
            ("lynx", "lynx"),
            ("lynx_project", "browser"),
        ]);
        let cands = find_vendor_candidates(&db);
        let confirmed: Vec<bool> = cands.iter().map(|_| true).collect();
        let t = PatternBreakdown::tabulate(&cands, &confirmed);
        let total = t.tokens.0
            + t.mp_lcs3.iter().map(|x| x.0).sum::<usize>()
            + t.mp_lcs_short.iter().map(|x| x.0).sum::<usize>();
        assert_eq!(total, cands.len());
    }
}
