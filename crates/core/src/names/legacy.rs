//! Frozen pre-blocking replicas of the §4.2 candidate sweeps.
//!
//! These are behavioural copies of the `BTreeSet`/per-vendor-`BTreeMap`
//! sweeps this crate shipped before the blocked engine, kept verbatim so
//! that (a) the proptest oracles can pin pair-set equality on arbitrary
//! databases, and (b) the CI-gated benches have a faithful serial baseline
//! the blocked sweep must beat at `NVD_JOBS=1`. Hidden from docs; not part
//! of the supported API.

use std::collections::{BTreeMap, BTreeSet};

use nvd_model::prelude::{Database, ProductName, VendorName};
use textkit::distance::{is_strict_prefix_pair, levenshtein, longest_common_substring_len};
use textkit::tokenize::{abbreviation, name_components, strip_specials};

use super::mapping::NameMapping;
use super::product::{ProductCandidate, ProductHeuristic};
use super::vendor::VendorCandidate;

/// The pre-blocking vendor sweep: proposals accumulate in a
/// `BTreeSet<(&VendorName, &VendorName)>` and annotation recomputes every
/// derived key per pair.
pub fn find_vendor_candidates_legacy(db: &Database) -> Vec<VendorCandidate> {
    let vendors: Vec<&VendorName> = db.vendor_set().into_iter().collect();
    let products_by_vendor = db.products_by_vendor();
    let empty = BTreeSet::new();

    let mut proposed: BTreeSet<(&VendorName, &VendorName)> = BTreeSet::new();

    // Block 1: identical strip-specials form.
    let mut by_norm: BTreeMap<String, Vec<&VendorName>> = BTreeMap::new();
    for v in &vendors {
        by_norm
            .entry(strip_specials(v.as_str()))
            .or_default()
            .push(v);
    }
    for group in by_norm.values() {
        pair_group(group, &mut proposed);
    }

    // Block 2: abbreviation collisions (lms ↔ lan_management_system).
    let mut by_abbrev: BTreeMap<String, Vec<&VendorName>> = BTreeMap::new();
    for v in &vendors {
        if let Some(a) = abbreviation(v.as_str()) {
            if a.len() >= 2 {
                by_abbrev.entry(a).or_default().push(v);
            }
        }
    }
    let vendor_lookup: BTreeSet<&str> = vendors.iter().map(|v| v.as_str()).collect();
    for (abbrev, group) in &by_abbrev {
        if vendor_lookup.contains(abbrev.as_str()) {
            let short = vendors
                .iter()
                .find(|v| v.as_str() == abbrev.as_str())
                .expect("present in lookup");
            for long in group {
                order_and_insert(short, long, &mut proposed);
            }
        }
    }

    // Block 3: shared product names.
    let mut vendors_by_product: BTreeMap<&str, Vec<&VendorName>> = BTreeMap::new();
    for (vendor, products) in &products_by_vendor {
        for p in products {
            vendors_by_product
                .entry(p.as_str())
                .or_default()
                .push(vendor);
        }
    }
    for group in vendors_by_product.values() {
        if group.len() <= 50 {
            pair_group(group, &mut proposed);
        }
    }

    // Block 4: vendor name equals a product name of another vendor.
    for v in &vendors {
        if let Some(owners) = vendors_by_product.get(v.as_str()) {
            for owner in owners {
                if owner.as_str() != v.as_str() {
                    order_and_insert(v, owner, &mut proposed);
                }
            }
        }
    }

    // Block 5: prefix neighbourhoods in sorted order.
    for (i, v) in vendors.iter().enumerate() {
        for w in vendors.iter().skip(i + 1) {
            if !w.as_str().starts_with(v.as_str()) {
                break;
            }
            order_and_insert(v, w, &mut proposed);
        }
    }

    // Block 6: near-duplicate spellings via shared 4-prefix blocks.
    let mut by_prefix4: BTreeMap<String, Vec<&VendorName>> = BTreeMap::new();
    for v in &vendors {
        let key: String = v.as_str().chars().take(4).collect();
        by_prefix4.entry(key).or_default().push(v);
    }
    for group in by_prefix4.values() {
        if group.len() > 200 {
            continue;
        }
        for (i, a) in group.iter().enumerate() {
            for b in group.iter().skip(i + 1) {
                if levenshtein(a.as_str(), b.as_str()) <= 2 {
                    order_and_insert(a, b, &mut proposed);
                }
            }
        }
    }
    // Misspellings dropping an early character: block on last-4 too.
    let mut by_suffix4: BTreeMap<String, Vec<&VendorName>> = BTreeMap::new();
    for v in &vendors {
        let s = v.as_str();
        let key: String = s.chars().rev().take(4).collect();
        by_suffix4.entry(key).or_default().push(v);
    }
    for group in by_suffix4.values() {
        if group.len() > 200 {
            continue;
        }
        for (i, a) in group.iter().enumerate() {
            for b in group.iter().skip(i + 1) {
                if levenshtein(a.as_str(), b.as_str()) <= 2 {
                    order_and_insert(a, b, &mut proposed);
                }
            }
        }
    }

    // Annotate every proposed pair with the Table 2 signals.
    proposed
        .into_iter()
        .map(|(a, b)| {
            let pa = products_by_vendor.get(a).unwrap_or(&empty);
            let pb = products_by_vendor.get(b).unwrap_or(&empty);
            let matching_products = pa.intersection(pb).count();
            let product_as_vendor = pa.iter().any(|p| p.as_str() == b.as_str())
                || pb.iter().any(|p| p.as_str() == a.as_str());
            let abbrev = abbreviation(a.as_str()).as_deref() == Some(b.as_str())
                || abbreviation(b.as_str()).as_deref() == Some(a.as_str());
            VendorCandidate {
                a: a.clone(),
                b: b.clone(),
                tokens_identical: strip_specials(a.as_str()) == strip_specials(b.as_str()),
                matching_products,
                prefix: is_strict_prefix_pair(a.as_str(), b.as_str()),
                product_as_vendor,
                abbreviation: abbrev,
                lcs_len: longest_common_substring_len(a.as_str(), b.as_str()),
            }
        })
        .collect()
}

fn pair_group<'a>(
    group: &[&'a VendorName],
    proposed: &mut BTreeSet<(&'a VendorName, &'a VendorName)>,
) {
    for (i, a) in group.iter().enumerate() {
        for b in group.iter().skip(i + 1) {
            order_and_insert(a, b, proposed);
        }
    }
}

fn order_and_insert<'a>(
    a: &'a VendorName,
    b: &'a VendorName,
    proposed: &mut BTreeSet<(&'a VendorName, &'a VendorName)>,
) {
    if a == b {
        return;
    }
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    proposed.insert((x, y));
}

/// The pre-blocking product sweep: clone-per-proposal accumulation into one
/// flat `Vec`, then a global sort + dedup over full `ProductCandidate`s.
pub fn find_product_candidates_legacy(
    db: &Database,
    mapping: &NameMapping,
) -> Vec<ProductCandidate> {
    // Products per consolidated vendor.
    let mut products: BTreeMap<VendorName, BTreeSet<ProductName>> = BTreeMap::new();
    for entry in db.iter() {
        for cpe in &entry.affected {
            let vendor = mapping.resolve_vendor(&cpe.vendor).clone();
            products
                .entry(vendor)
                .or_default()
                .insert(cpe.product.clone());
        }
    }

    let mut out = Vec::new();
    for (vendor, names) in &products {
        let names: Vec<&ProductName> = names.iter().collect();

        // Heuristic 1: identical token sequences.
        let mut by_tokens: BTreeMap<Vec<String>, Vec<&ProductName>> = BTreeMap::new();
        for p in &names {
            by_tokens
                .entry(name_components(p.as_str()))
                .or_default()
                .push(p);
        }
        for group in by_tokens.values() {
            for (i, a) in group.iter().enumerate() {
                for b in group.iter().skip(i + 1) {
                    push_ordered(&mut out, vendor, a, b, ProductHeuristic::TokenEquivalent);
                }
            }
        }

        // Heuristic 2: abbreviation of token initials.
        let name_set: BTreeSet<&str> = names.iter().map(|p| p.as_str()).collect();
        for p in &names {
            if let Some(abbrev) = abbreviation(p.as_str()) {
                if abbrev.len() >= 2 && abbrev != p.as_str() && name_set.contains(abbrev.as_str()) {
                    let other = names
                        .iter()
                        .find(|q| q.as_str() == abbrev.as_str())
                        .expect("present in set");
                    push_ordered(&mut out, vendor, p, other, ProductHeuristic::Abbreviation);
                }
            }
        }

        // Heuristic 3: edit distance 1 (typos), guarded against digit-only
        // differences.
        if names.len() <= 600 {
            for (i, a) in names.iter().enumerate() {
                for b in names.iter().skip(i + 1) {
                    if a.as_str().len().abs_diff(b.as_str().len()) > 1 {
                        continue;
                    }
                    if differs_only_in_digit(a.as_str(), b.as_str()) {
                        continue;
                    }
                    if levenshtein(a.as_str(), b.as_str()) == 1 {
                        push_ordered(&mut out, vendor, a, b, ProductHeuristic::EditDistance);
                    }
                }
            }
        }
    }
    out.sort_by(|x, y| {
        (&x.vendor, &x.a, &x.b, x.heuristic).cmp(&(&y.vendor, &y.a, &y.b, y.heuristic))
    });
    out.dedup_by(|x, y| x.vendor == y.vendor && x.a == y.a && x.b == y.b);
    out
}

fn differs_only_in_digit(a: &str, b: &str) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.bytes()
        .zip(b.bytes())
        .any(|(x, y)| x != y && x.is_ascii_digit() && y.is_ascii_digit())
}

fn push_ordered(
    out: &mut Vec<ProductCandidate>,
    vendor: &VendorName,
    a: &ProductName,
    b: &ProductName,
    heuristic: ProductHeuristic,
) {
    if a == b {
        return;
    }
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    out.push(ProductCandidate {
        vendor: vendor.clone(),
        a: x.clone(),
        b: y.clone(),
        heuristic,
    });
}
