//! Verification of candidate pairs — the paper's "manual investigation",
//! made pluggable.
//!
//! The paper manually researched each flagged pair ("researching their
//! products, developers, and associated organizations"). A reproduction
//! needs a stand-in: [`OracleVerifier`] consults the corpus generator's
//! ground truth (perfect analysts), while [`AcceptanceRateVerifier`]
//! replays the paper's *measured confirmation rates* per pattern (Table 2)
//! when no ground truth exists.

use std::collections::BTreeMap;

use nvd_model::prelude::VendorName;

use super::vendor::VendorCandidate;

/// Decides whether a flagged pair truly names the same vendor.
pub trait Verifier {
    /// Returns `true` if the two names refer to the same entity.
    fn confirm(&self, candidate: &VendorCandidate) -> bool;
}

/// Ground-truth-backed verification: two names match iff they resolve to
/// the same canonical vendor under the generator's alias map.
#[derive(Debug, Clone, Default)]
pub struct OracleVerifier {
    alias_to_canonical: BTreeMap<VendorName, VendorName>,
}

impl OracleVerifier {
    /// Builds the oracle from an alias → canonical map.
    pub fn new(alias_to_canonical: BTreeMap<VendorName, VendorName>) -> Self {
        Self { alias_to_canonical }
    }

    /// Resolves a name to its canonical form (identity for canonicals).
    pub fn resolve<'a>(&'a self, name: &'a VendorName) -> &'a VendorName {
        self.alias_to_canonical.get(name).unwrap_or(name)
    }
}

impl Verifier for OracleVerifier {
    fn confirm(&self, candidate: &VendorCandidate) -> bool {
        self.resolve(&candidate.a) == self.resolve(&candidate.b)
    }
}

/// Statistical stand-in for manual review: confirms a deterministic subset
/// of candidates at the per-pattern rates the paper measured (Table 2 —
/// e.g. 100% of token-identical pairs, >90% of prefix and shared-product
/// pairs with LCS ≥ 3, a minority of short-LCS pairs).
#[derive(Debug, Clone)]
pub struct AcceptanceRateVerifier {
    salt: u64,
}

impl AcceptanceRateVerifier {
    /// Creates a verifier; `salt` varies which individual pairs pass.
    pub fn new(salt: u64) -> Self {
        Self { salt }
    }

    fn rate(candidate: &VendorCandidate) -> f64 {
        if candidate.tokens_identical {
            return 1.0; // Table 2: 260/260
        }
        if candidate.lcs_at_least_3() {
            if candidate.prefix {
                0.92
            } else if candidate.product_as_vendor {
                0.91
            } else if candidate.matching_products > 1 {
                0.92
            } else if candidate.matching_products == 1 {
                0.67
            } else {
                1.0 // LCS ≥ 3 and #MP = 0: 260/260 in Table 2
            }
        } else if candidate.matching_products > 1 {
            0.30
        } else if candidate.matching_products == 1 {
            0.24
        } else {
            0.10
        }
    }
}

impl Verifier for AcceptanceRateVerifier {
    fn confirm(&self, candidate: &VendorCandidate) -> bool {
        let mut h = self.salt ^ 0x9e37_79b9_7f4a_7c15;
        for b in candidate
            .a
            .as_str()
            .bytes()
            .chain(candidate.b.as_str().bytes())
        {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        let x = (h >> 11) as f64 / (1u64 << 53) as f64;
        x < Self::rate(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(a: &str, b: &str) -> VendorCandidate {
        VendorCandidate {
            a: VendorName::new(a),
            b: VendorName::new(b),
            tokens_identical: false,
            matching_products: 0,
            prefix: false,
            product_as_vendor: false,
            abbreviation: false,
            lcs_len: 0,
        }
    }

    #[test]
    fn oracle_confirms_alias_pairs_only() {
        let mut map = BTreeMap::new();
        map.insert(VendorName::new("microsft"), VendorName::new("microsoft"));
        let oracle = OracleVerifier::new(map);
        assert!(oracle.confirm(&candidate("microsft", "microsoft")));
        assert!(!oracle.confirm(&candidate("oracle", "microsoft")));
    }

    #[test]
    fn oracle_links_two_aliases_of_same_vendor() {
        let mut map = BTreeMap::new();
        map.insert(VendorName::new("microsft"), VendorName::new("microsoft"));
        map.insert(VendorName::new("windows"), VendorName::new("microsoft"));
        let oracle = OracleVerifier::new(map);
        assert!(oracle.confirm(&candidate("microsft", "windows")));
    }

    #[test]
    fn acceptance_verifier_always_confirms_token_pairs() {
        let v = AcceptanceRateVerifier::new(1);
        let mut c = candidate("avast", "avast!");
        c.tokens_identical = true;
        assert!(v.confirm(&c));
    }

    #[test]
    fn acceptance_verifier_is_deterministic() {
        let v = AcceptanceRateVerifier::new(7);
        let c = candidate("aaa", "bbb");
        assert_eq!(v.confirm(&c), v.confirm(&c));
    }

    #[test]
    fn acceptance_rates_are_ordered_by_signal_strength() {
        let mut strong = candidate("x", "y");
        strong.lcs_len = 5;
        strong.matching_products = 3;
        let mut weak = candidate("x", "y");
        weak.lcs_len = 1;
        weak.matching_products = 1;
        assert!(AcceptanceRateVerifier::rate(&strong) > AcceptanceRateVerifier::rate(&weak));
    }
}
