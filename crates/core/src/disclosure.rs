//! Disclosure-date estimation from reference URLs (§4.1).
//!
//! NVD publication dates record when an entry was *added to the database*,
//! not when the vulnerability became public. The paper approximates the
//! public disclosure date as "the minimum of the dates extracted from the
//! reference URLs or the NVD publication date", using per-domain crawlers
//! for the top reference domains.

use std::collections::BTreeMap;

use nvd_model::prelude::{CveEntry, CveId, Database, Date};
use webarchive::{CrawlerSet, FetchError, WebArchive};

/// How extracted reference dates are folded into one estimate.
///
/// The paper uses [`Minimum`](AggregationRule::Minimum); the others exist
/// for the ablation called out in DESIGN.md (§"Design choices").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregationRule {
    /// Earliest extracted date (the paper's rule).
    #[default]
    Minimum,
    /// Median extracted date — robust to one bogus early date.
    Median,
    /// Mean extracted date (rounded towards the epoch).
    Mean,
}

/// The estimate for one CVE, with crawl bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisclosureEstimate {
    /// Estimated public disclosure date (never later than the NVD
    /// publication date under the Minimum rule).
    pub estimated: Date,
    /// Reference URLs attached to the entry.
    pub references: usize,
    /// Pages successfully fetched.
    pub fetched: usize,
    /// Fetches that failed (dead hosts, missing pages).
    pub failed: usize,
    /// Dates successfully extracted from fetched pages.
    pub extracted: usize,
}

impl DisclosureEstimate {
    /// Days between the estimate and the given publication date (the
    /// paper's *lag time*); non-negative under the Minimum rule.
    pub fn lag_days(&self, published: Date) -> i32 {
        published.days_since(self.estimated)
    }
}

/// The §4.1 estimator: crawls an entry's references and aggregates dates.
#[derive(Debug, Clone)]
pub struct DisclosureEstimator<'a> {
    archive: &'a WebArchive,
    crawlers: CrawlerSet,
    rule: AggregationRule,
}

impl<'a> DisclosureEstimator<'a> {
    /// An estimator over the given archive with the paper's setup (builtin
    /// crawler set, minimum rule).
    pub fn new(archive: &'a WebArchive) -> Self {
        Self {
            archive,
            crawlers: CrawlerSet::builtin(),
            rule: AggregationRule::Minimum,
        }
    }

    /// Replaces the crawler set (e.g. `CrawlerSet::top_n(10)` for the
    /// coverage ablation).
    pub fn with_crawlers(mut self, crawlers: CrawlerSet) -> Self {
        self.crawlers = crawlers;
        self
    }

    /// Replaces the aggregation rule.
    pub fn with_rule(mut self, rule: AggregationRule) -> Self {
        self.rule = rule;
        self
    }

    /// Estimates the disclosure date of one entry.
    pub fn estimate(&self, entry: &CveEntry) -> DisclosureEstimate {
        let mut dates: Vec<Date> = Vec::with_capacity(entry.references.len());
        let mut fetched = 0usize;
        let mut failed = 0usize;
        for reference in &entry.references {
            match self.archive.fetch(&reference.url) {
                Ok(page) => {
                    fetched += 1;
                    if let Some(date) = self.crawlers.extract(page) {
                        dates.push(date);
                    }
                }
                Err(FetchError::HostUnreachable { .. }) | Err(FetchError::NotFound { .. }) => {
                    failed += 1;
                }
            }
        }
        let extracted = dates.len();
        let aggregated = match self.rule {
            AggregationRule::Minimum => dates.iter().copied().min(),
            AggregationRule::Median => {
                dates.sort_unstable();
                dates.get(dates.len() / 2).copied()
            }
            AggregationRule::Mean => {
                if dates.is_empty() {
                    None
                } else {
                    let sum: i64 = dates.iter().map(|d| i64::from(d.day_number())).sum();
                    Some(Date::from_day_number((sum / dates.len() as i64) as i32))
                }
            }
        };
        // "We approximated its public disclosure date as the minimum of the
        // dates extracted from the reference URLs or the NVD publication
        // date."
        let estimated = match aggregated {
            Some(d) if self.rule != AggregationRule::Minimum => d,
            Some(d) => d.min(entry.published),
            None => entry.published,
        };
        DisclosureEstimate {
            estimated,
            references: entry.references.len(),
            fetched,
            failed,
            extracted,
        }
    }

    /// Estimates every entry of a database.
    ///
    /// Entries are independent, so estimation fans out over the `minipar`
    /// pool (`NVD_JOBS` controls the width); per-entry results are keyed by
    /// CVE id, so the map is identical at any thread count.
    pub fn estimate_all(&self, db: &Database) -> BTreeMap<CveId, DisclosureEstimate> {
        let entries: Vec<&CveEntry> = db.iter().collect();
        minipar::par_map(&entries, |e| (e.id, self.estimate(e)))
            .into_iter()
            .collect()
    }
}

/// Summary statistics over a set of estimates (feeds Fig. 1 and §4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct LagSummary {
    /// All lag values, sorted ascending.
    pub lags: Vec<i32>,
    /// Fraction with zero lag (paper: ≈38%).
    pub zero_fraction: f64,
    /// Fraction with lag ≤ 6 days (paper: ≈70%).
    pub within_week_fraction: f64,
    /// Fraction with lag > 7 days (paper: ≈28%).
    pub over_week_fraction: f64,
}

impl LagSummary {
    /// Builds the summary from per-CVE estimates and their entries.
    pub fn compute(db: &Database, estimates: &BTreeMap<CveId, DisclosureEstimate>) -> Self {
        let mut lags: Vec<i32> = db
            .iter()
            .filter_map(|e| {
                estimates
                    .get(&e.id)
                    .map(|est| est.lag_days(e.published).max(0))
            })
            .collect();
        lags.sort_unstable();
        let n = lags.len().max(1) as f64;
        let zero = lags.iter().filter(|&&l| l == 0).count() as f64 / n;
        let within = lags.iter().filter(|&&l| l <= 6).count() as f64 / n;
        let over = lags.iter().filter(|&&l| l > 7).count() as f64 / n;
        Self {
            lags,
            zero_fraction: zero,
            within_week_fraction: within,
            over_week_fraction: over,
        }
    }

    /// The empirical CDF at the given lag value.
    pub fn cdf(&self, lag: i32) -> f64 {
        if self.lags.is_empty() {
            return 0.0;
        }
        let idx = self.lags.partition_point(|&l| l <= lag);
        idx as f64 / self.lags.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::prelude::Reference;

    fn date(s: &str) -> Date {
        s.parse().unwrap()
    }

    fn entry_with_refs(archive: &mut WebArchive, urls: &[(&str, &str)]) -> CveEntry {
        let mut e = CveEntry::new("CVE-2011-0700".parse().unwrap(), date("2011-03-14"));
        for (host, d) in urls {
            let url = archive.publish(host, "CVE-2011-0700", date(d), 10).unwrap();
            e.references.push(Reference::new(url));
        }
        e
    }

    #[test]
    fn minimum_rule_picks_earliest_reference() {
        // The paper's running example: NVD publication 2011-03-14 but an
        // advisory disclosed it 2011-02-07.
        let mut archive = WebArchive::new();
        let e = entry_with_refs(
            &mut archive,
            &[
                ("www.securityfocus.com", "2011-02-07"),
                ("seclists.org", "2011-03-01"),
            ],
        );
        let est = DisclosureEstimator::new(&archive).estimate(&e);
        assert_eq!(est.estimated, date("2011-02-07"));
        assert_eq!(est.lag_days(e.published), 35);
        assert_eq!(est.extracted, 2);
    }

    #[test]
    fn no_references_falls_back_to_publication() {
        let archive = WebArchive::new();
        let e = CveEntry::new("CVE-2000-0001".parse().unwrap(), date("2000-06-01"));
        let est = DisclosureEstimator::new(&archive).estimate(&e);
        assert_eq!(est.estimated, date("2000-06-01"));
        assert_eq!(est.lag_days(e.published), 0);
    }

    #[test]
    fn dead_hosts_are_counted_and_skipped() {
        let mut archive = WebArchive::new();
        let e = entry_with_refs(
            &mut archive,
            &[("osvdb.org", "2009-01-05"), ("seclists.org", "2009-02-01")],
        );
        let mut e = e;
        e.published = date("2009-03-01");
        let est = DisclosureEstimator::new(&archive).estimate(&e);
        assert_eq!(est.failed, 1, "osvdb is dead");
        assert_eq!(est.estimated, date("2009-02-01"), "live ref only");
    }

    #[test]
    fn estimate_never_exceeds_publication_under_minimum() {
        // Reference later than publication: publication wins.
        let mut archive = WebArchive::new();
        let mut e = entry_with_refs(&mut archive, &[("seclists.org", "2012-09-01")]);
        e.published = date("2012-01-01");
        let est = DisclosureEstimator::new(&archive).estimate(&e);
        assert_eq!(est.estimated, date("2012-01-01"));
    }

    #[test]
    fn reduced_crawler_coverage_weakens_estimates() {
        let mut archive = WebArchive::new();
        let e = entry_with_refs(
            &mut archive,
            &[
                ("kb.juniper.net", "2016-02-01"), // light-weight host
                ("www.securityfocus.com", "2016-03-01"),
            ],
        );
        let mut e = e;
        e.published = date("2016-04-01");
        let full = DisclosureEstimator::new(&archive).estimate(&e);
        let narrow = DisclosureEstimator::new(&archive)
            .with_crawlers(CrawlerSet::top_n(3))
            .estimate(&e);
        assert_eq!(full.estimated, date("2016-02-01"));
        assert_eq!(narrow.estimated, date("2016-03-01"), "juniper not covered");
    }

    #[test]
    fn median_rule_resists_outlier() {
        let mut archive = WebArchive::new();
        let mut e = entry_with_refs(
            &mut archive,
            &[
                ("www.securityfocus.com", "2001-01-01"), // bogus early
                ("seclists.org", "2014-05-05"),
                ("www.debian.org", "2014-05-06"),
            ],
        );
        e.published = date("2014-05-10");
        let med = DisclosureEstimator::new(&archive)
            .with_rule(AggregationRule::Median)
            .estimate(&e);
        assert_eq!(med.estimated, date("2014-05-05"));
    }

    #[test]
    fn lag_summary_cdf_is_monotone() {
        let mut archive = WebArchive::new();
        let mut db = Database::new();
        for (i, d) in ["2015-01-05", "2015-01-05", "2015-02-01"]
            .iter()
            .enumerate()
        {
            let id: CveId = format!("CVE-2015-{:04}", i + 1).parse().unwrap();
            let mut e = CveEntry::new(id, date("2015-03-01"));
            let url = archive
                .publish("seclists.org", &id.to_string(), date(d), 0)
                .unwrap();
            e.references.push(Reference::new(url));
            db.push(e);
        }
        let est = DisclosureEstimator::new(&archive).estimate_all(&db);
        let summary = LagSummary::compute(&db, &est);
        assert!(summary.cdf(0) <= summary.cdf(30));
        assert!(summary.cdf(10_000) >= 0.999);
    }
}
