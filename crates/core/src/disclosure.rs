//! Disclosure-date estimation from reference URLs (§4.1).
//!
//! NVD publication dates record when an entry was *added to the database*,
//! not when the vulnerability became public. The paper approximates the
//! public disclosure date as "the minimum of the dates extracted from the
//! reference URLs or the NVD publication date", using per-domain crawlers
//! for the top reference domains.
//!
//! Crawling runs on the [`webarchive::scheduler`] engine: every reference
//! of the batch becomes an explicit request, with host interning, per-host
//! memoised dispatch, and page fetch + date extraction fanned over the
//! `minipar` pool. The per-CVE fold is order-independent over the result
//! multiset, so the estimator consumes the engine's request-keyed bulk
//! results (`crawl_results`) — the virtual-clock completion order the
//! engine can also emit carries no extra information for this fold — and
//! estimates are bit-identical at any `NVD_JOBS` setting, and to the
//! pre-engine per-entry loops frozen in [`legacy`].

use std::collections::BTreeMap;

use nvd_model::prelude::{CveEntry, CveId, Database, Date};
use webarchive::{CrawlEngine, CrawlResult, CrawlerSet, WebArchive};

/// How extracted reference dates are folded into one estimate.
///
/// The paper uses [`Minimum`](AggregationRule::Minimum); the others exist
/// for the ablation called out in DESIGN.md (§"Design choices").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregationRule {
    /// Earliest extracted date (the paper's rule).
    #[default]
    Minimum,
    /// Median extracted date — robust to one bogus early date. With an
    /// even number of dates the *upper* median (index `n/2` of the sorted
    /// dates) is taken: between the two middle candidates it prefers the
    /// later, i.e. more conservative, disclosure estimate.
    Median,
    /// Mean extracted date (rounded towards the epoch).
    Mean,
}

/// The estimate for one CVE, with crawl bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisclosureEstimate {
    /// Estimated public disclosure date (never later than the NVD
    /// publication date under the Minimum rule).
    pub estimated: Date,
    /// Reference URLs attached to the entry.
    pub references: usize,
    /// Pages successfully fetched.
    pub fetched: usize,
    /// Fetches that failed (dead hosts, missing pages).
    pub failed: usize,
    /// Dates successfully extracted from fetched pages.
    pub extracted: usize,
}

impl DisclosureEstimate {
    /// Days between the estimate and the given publication date (the
    /// paper's *lag time*); non-negative under the Minimum rule.
    pub fn lag_days(&self, published: Date) -> i32 {
        published.days_since(self.estimated)
    }
}

/// The §4.1 estimator: crawls an entry's references and aggregates dates.
#[derive(Debug, Clone)]
pub struct DisclosureEstimator<'a> {
    archive: &'a WebArchive,
    crawlers: CrawlerSet,
    rule: AggregationRule,
}

impl<'a> DisclosureEstimator<'a> {
    /// An estimator over the given archive with the paper's setup (builtin
    /// crawler set, minimum rule).
    pub fn new(archive: &'a WebArchive) -> Self {
        Self {
            archive,
            crawlers: CrawlerSet::builtin(),
            rule: AggregationRule::Minimum,
        }
    }

    /// Replaces the crawler set (e.g. `CrawlerSet::top_n(10)` for the
    /// coverage ablation).
    pub fn with_crawlers(mut self, crawlers: CrawlerSet) -> Self {
        self.crawlers = crawlers;
        self
    }

    /// Replaces the aggregation rule.
    pub fn with_rule(mut self, rule: AggregationRule) -> Self {
        self.rule = rule;
        self
    }

    /// The crawl engine this estimator drives.
    fn engine(&self) -> CrawlEngine<'_> {
        CrawlEngine::new(self.archive, &self.crawlers)
    }

    /// Folds one entry's request-keyed crawl results into its estimate.
    ///
    /// `results[i]` must answer `entry.references[i]`. The fold is
    /// order-independent over the result multiset — every aggregation rule
    /// reduces a set of dates — which is exactly what lets the engine hand
    /// results over in request order rather than completion order. Under
    /// the paper's Minimum rule the date is folded incrementally; only
    /// Median/Mean buffer the multiset.
    fn fold_entry(&self, entry: &CveEntry, results: &[CrawlResult]) -> DisclosureEstimate {
        let mut fetched = 0usize;
        let mut failed = 0usize;
        let mut extracted = 0usize;
        let mut min: Option<Date> = None;
        let mut dates: Vec<Date> = Vec::new();
        for result in results {
            match result {
                CrawlResult::Fetched(date) => {
                    fetched += 1;
                    if let Some(d) = *date {
                        extracted += 1;
                        match self.rule {
                            AggregationRule::Minimum => {
                                min = Some(min.map_or(d, |m| m.min(d)));
                            }
                            AggregationRule::Median | AggregationRule::Mean => dates.push(d),
                        }
                    }
                }
                CrawlResult::HostUnreachable
                | CrawlResult::NotFound
                | CrawlResult::TimedOut
                | CrawlResult::CircuitOpen => failed += 1,
            }
        }
        let aggregated = match self.rule {
            AggregationRule::Minimum => min,
            AggregationRule::Median => {
                dates.sort_unstable();
                dates.get(dates.len() / 2).copied()
            }
            AggregationRule::Mean => {
                if dates.is_empty() {
                    None
                } else {
                    let sum: i64 = dates.iter().map(|d| i64::from(d.day_number())).sum();
                    Some(Date::from_day_number((sum / dates.len() as i64) as i32))
                }
            }
        };
        // "We approximated its public disclosure date as the minimum of the
        // dates extracted from the reference URLs or the NVD publication
        // date."
        let estimated = match aggregated {
            Some(d) if self.rule != AggregationRule::Minimum => d,
            Some(d) => d.min(entry.published),
            None => entry.published,
        };
        DisclosureEstimate {
            estimated,
            references: entry.references.len(),
            fetched,
            failed,
            extracted,
        }
    }

    /// Estimates the disclosure date of one entry (a one-entry batch on the
    /// scheduled engine).
    pub fn estimate(&self, entry: &CveEntry) -> DisclosureEstimate {
        let urls: Vec<&str> = entry.references.iter().map(|r| r.url.as_str()).collect();
        let results = self.engine().crawl_results(&urls);
        self.fold_entry(entry, &results)
    }

    /// Estimates every entry of a database.
    ///
    /// All references of the batch go through the crawl engine as one bulk
    /// request — host interning, per-host memoised liveness/crawler
    /// dispatch, fetch + extraction fanned over the `minipar` pool
    /// (`NVD_JOBS` controls the width). Results come back keyed by request
    /// id, so each entry folds exactly the contiguous result slice its
    /// references occupy; every aggregation rule is order-independent over
    /// the date multiset, so the map is bit-identical at any thread count
    /// and to the pre-engine per-entry loops in [`legacy`].
    pub fn estimate_all(&self, db: &Database) -> BTreeMap<CveId, DisclosureEstimate> {
        let entries: Vec<&CveEntry> = db.iter().collect();
        let total_refs: usize = entries.iter().map(|e| e.references.len()).sum();
        let mut urls: Vec<&str> = Vec::with_capacity(total_refs);
        for e in &entries {
            urls.extend(e.references.iter().map(|r| r.url.as_str()));
        }
        let results = self.engine().crawl_results(&urls);
        let mut items: Vec<(&CveEntry, &[CrawlResult])> = Vec::with_capacity(entries.len());
        let mut offset = 0usize;
        for e in entries {
            let next = offset + e.references.len();
            items.push((e, &results[offset..next]));
            offset = next;
        }
        minipar::par_map(&items, |&(e, slice)| (e.id, self.fold_entry(e, slice)))
            .into_iter()
            .collect()
    }
}

/// Frozen pre-engine replicas of the §4.1 crawl loops.
///
/// Behavioural copies of the per-entry serial fetch loop (and its
/// `par_map`-per-entry `estimate_all`) this crate shipped before the
/// scheduled crawl engine, kept verbatim so that (a) the determinism suite
/// can pin the engine's estimates to the pre-engine path on arbitrary
/// corpora, and (b) the CI-gated crawl bench has a faithful baseline the
/// engine must beat at `NVD_JOBS=1`. Not part of the supported API.
pub mod legacy {
    use super::*;
    use webarchive::FetchError;

    /// The pre-engine per-entry loop, verbatim: fetch each reference
    /// serially through [`WebArchive::fetch`], extract via
    /// [`CrawlerSet::extract`], then aggregate inline. Deliberately shares
    /// no code with [`DisclosureEstimator::estimate`] so the baseline stays
    /// frozen no matter how the engine path evolves.
    pub fn estimate_legacy(
        estimator: &DisclosureEstimator<'_>,
        entry: &CveEntry,
    ) -> DisclosureEstimate {
        let mut dates: Vec<Date> = Vec::with_capacity(entry.references.len());
        let mut fetched = 0usize;
        let mut failed = 0usize;
        for reference in &entry.references {
            match estimator.archive.fetch(&reference.url) {
                Ok(page) => {
                    fetched += 1;
                    if let Some(date) = estimator.crawlers.extract(page) {
                        dates.push(date);
                    }
                }
                Err(FetchError::HostUnreachable { .. }) | Err(FetchError::NotFound { .. }) => {
                    failed += 1;
                }
            }
        }
        let extracted = dates.len();
        let aggregated = match estimator.rule {
            AggregationRule::Minimum => dates.iter().copied().min(),
            AggregationRule::Median => {
                dates.sort_unstable();
                dates.get(dates.len() / 2).copied()
            }
            AggregationRule::Mean => {
                if dates.is_empty() {
                    None
                } else {
                    let sum: i64 = dates.iter().map(|d| i64::from(d.day_number())).sum();
                    Some(Date::from_day_number((sum / dates.len() as i64) as i32))
                }
            }
        };
        let estimated = match aggregated {
            Some(d) if estimator.rule != AggregationRule::Minimum => d,
            Some(d) => d.min(entry.published),
            None => entry.published,
        };
        DisclosureEstimate {
            estimated,
            references: entry.references.len(),
            fetched,
            failed,
            extracted,
        }
    }

    /// The pre-engine `estimate_all`: one serial fetch loop per entry,
    /// entries fanned over `minipar`.
    pub fn estimate_all_legacy(
        estimator: &DisclosureEstimator<'_>,
        db: &Database,
    ) -> BTreeMap<CveId, DisclosureEstimate> {
        let entries: Vec<&CveEntry> = db.iter().collect();
        minipar::par_map(&entries, |e| (e.id, estimate_legacy(estimator, e)))
            .into_iter()
            .collect()
    }
}

/// Summary statistics over a set of estimates (feeds Fig. 1 and §4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct LagSummary {
    /// All lag values, sorted ascending.
    pub lags: Vec<i32>,
    /// Fraction with zero lag (paper: ≈38%).
    pub zero_fraction: f64,
    /// Fraction with lag ≤ 7 days (the paper quotes ≈70% "within a week").
    pub within_week_fraction: f64,
    /// Fraction with lag > 7 days (paper: ≈28%).
    pub over_week_fraction: f64,
}

impl LagSummary {
    /// Builds the summary from per-CVE estimates and their entries.
    ///
    /// The week buckets partition: every lag is counted by exactly one of
    /// `within_week_fraction` (`≤ 7`) and `over_week_fraction` (`> 7`), so
    /// the two always sum to 1 on a non-empty corpus — including at a lag
    /// of exactly seven days.
    pub fn compute(db: &Database, estimates: &BTreeMap<CveId, DisclosureEstimate>) -> Self {
        let mut lags: Vec<i32> = db
            .iter()
            .filter_map(|e| {
                estimates
                    .get(&e.id)
                    .map(|est| est.lag_days(e.published).max(0))
            })
            .collect();
        lags.sort_unstable();
        let n = lags.len().max(1) as f64;
        let zero = lags.iter().filter(|&&l| l == 0).count() as f64 / n;
        let within = lags.iter().filter(|&&l| l <= 7).count() as f64 / n;
        let over = lags.iter().filter(|&&l| l > 7).count() as f64 / n;
        Self {
            lags,
            zero_fraction: zero,
            within_week_fraction: within,
            over_week_fraction: over,
        }
    }

    /// The empirical CDF at the given lag value.
    pub fn cdf(&self, lag: i32) -> f64 {
        if self.lags.is_empty() {
            return 0.0;
        }
        let idx = self.lags.partition_point(|&l| l <= lag);
        idx as f64 / self.lags.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::prelude::Reference;

    fn date(s: &str) -> Date {
        s.parse().unwrap()
    }

    fn entry_with_refs(archive: &mut WebArchive, urls: &[(&str, &str)]) -> CveEntry {
        let mut e = CveEntry::new("CVE-2011-0700".parse().unwrap(), date("2011-03-14"));
        for (host, d) in urls {
            let url = archive.publish(host, "CVE-2011-0700", date(d), 10).unwrap();
            e.references.push(Reference::new(url));
        }
        e
    }

    #[test]
    fn minimum_rule_picks_earliest_reference() {
        // The paper's running example: NVD publication 2011-03-14 but an
        // advisory disclosed it 2011-02-07.
        let mut archive = WebArchive::new();
        let e = entry_with_refs(
            &mut archive,
            &[
                ("www.securityfocus.com", "2011-02-07"),
                ("seclists.org", "2011-03-01"),
            ],
        );
        let est = DisclosureEstimator::new(&archive).estimate(&e);
        assert_eq!(est.estimated, date("2011-02-07"));
        assert_eq!(est.lag_days(e.published), 35);
        assert_eq!(est.extracted, 2);
    }

    #[test]
    fn no_references_falls_back_to_publication() {
        let archive = WebArchive::new();
        let e = CveEntry::new("CVE-2000-0001".parse().unwrap(), date("2000-06-01"));
        let est = DisclosureEstimator::new(&archive).estimate(&e);
        assert_eq!(est.estimated, date("2000-06-01"));
        assert_eq!(est.lag_days(e.published), 0);
    }

    #[test]
    fn dead_hosts_are_counted_and_skipped() {
        let mut archive = WebArchive::new();
        let e = entry_with_refs(
            &mut archive,
            &[("osvdb.org", "2009-01-05"), ("seclists.org", "2009-02-01")],
        );
        let mut e = e;
        e.published = date("2009-03-01");
        let est = DisclosureEstimator::new(&archive).estimate(&e);
        assert_eq!(est.failed, 1, "osvdb is dead");
        assert_eq!(est.estimated, date("2009-02-01"), "live ref only");
    }

    #[test]
    fn estimate_never_exceeds_publication_under_minimum() {
        // Reference later than publication: publication wins.
        let mut archive = WebArchive::new();
        let mut e = entry_with_refs(&mut archive, &[("seclists.org", "2012-09-01")]);
        e.published = date("2012-01-01");
        let est = DisclosureEstimator::new(&archive).estimate(&e);
        assert_eq!(est.estimated, date("2012-01-01"));
    }

    #[test]
    fn reduced_crawler_coverage_weakens_estimates() {
        let mut archive = WebArchive::new();
        let e = entry_with_refs(
            &mut archive,
            &[
                ("kb.juniper.net", "2016-02-01"), // light-weight host
                ("www.securityfocus.com", "2016-03-01"),
            ],
        );
        let mut e = e;
        e.published = date("2016-04-01");
        let full = DisclosureEstimator::new(&archive).estimate(&e);
        let narrow = DisclosureEstimator::new(&archive)
            .with_crawlers(CrawlerSet::top_n(3))
            .estimate(&e);
        assert_eq!(full.estimated, date("2016-02-01"));
        assert_eq!(narrow.estimated, date("2016-03-01"), "juniper not covered");
    }

    #[test]
    fn median_rule_resists_outlier() {
        let mut archive = WebArchive::new();
        let mut e = entry_with_refs(
            &mut archive,
            &[
                ("www.securityfocus.com", "2001-01-01"), // bogus early
                ("seclists.org", "2014-05-05"),
                ("www.debian.org", "2014-05-06"),
            ],
        );
        e.published = date("2014-05-10");
        let med = DisclosureEstimator::new(&archive)
            .with_rule(AggregationRule::Median)
            .estimate(&e);
        assert_eq!(med.estimated, date("2014-05-05"));
    }

    #[test]
    fn even_count_median_takes_the_upper_middle() {
        // Four extracted dates: the documented convention is index n/2 of
        // the sorted dates — the *upper* of the two middle candidates.
        let mut archive = WebArchive::new();
        let mut e = entry_with_refs(
            &mut archive,
            &[
                ("www.securityfocus.com", "2014-05-01"),
                ("seclists.org", "2014-05-03"),
                ("www.debian.org", "2014-05-05"),
                ("marc.info", "2014-05-07"),
            ],
        );
        e.published = date("2014-06-01");
        let med = DisclosureEstimator::new(&archive)
            .with_rule(AggregationRule::Median)
            .estimate(&e);
        assert_eq!(med.extracted, 4);
        assert_eq!(med.estimated, date("2014-05-05"), "upper median");
    }

    #[test]
    fn mark_dead_mid_crawl_fails_subsequent_fetches() {
        // Failure injection between crawl batches: a host that answered the
        // first sweep goes dark before the second.
        let mut archive = WebArchive::new();
        let mut e = entry_with_refs(
            &mut archive,
            &[
                ("seclists.org", "2014-04-01"),
                ("www.debian.org", "2014-04-10"),
            ],
        );
        e.published = date("2014-05-01");
        let before = DisclosureEstimator::new(&archive).estimate(&e);
        assert_eq!((before.fetched, before.failed), (2, 0));
        assert_eq!(before.estimated, date("2014-04-01"));

        archive.mark_dead("seclists.org");
        let after = DisclosureEstimator::new(&archive).estimate(&e);
        assert_eq!((after.fetched, after.failed), (1, 1), "outage counted");
        assert_eq!(after.estimated, date("2014-04-10"), "dead ref dropped");
    }

    #[test]
    fn malformed_page_fetches_but_extracts_nothing() {
        let mut archive = WebArchive::new();
        archive.insert_raw(
            "https://seclists.org/fake/advisory",
            "<html>no parseable date anywhere</html>".into(),
        );
        let mut e = CveEntry::new("CVE-2015-0001".parse().unwrap(), date("2015-06-01"));
        e.references
            .push(Reference::new("https://seclists.org/fake/advisory"));
        let est = DisclosureEstimator::new(&archive).estimate(&e);
        assert_eq!(est.fetched, 1, "malformed page still fetches");
        assert_eq!(est.extracted, 0, "no date extracted");
        assert_eq!(est.failed, 0);
        assert_eq!(est.estimated, e.published, "falls back to publication");
    }

    #[test]
    fn engine_matches_legacy_per_entry() {
        let mut archive = WebArchive::new();
        let mut e = entry_with_refs(
            &mut archive,
            &[
                ("osvdb.org", "2013-01-05"),
                ("seclists.org", "2013-02-01"),
                ("jvn.jp", "2013-02-03"),
            ],
        );
        e.published = date("2013-03-01");
        for rule in [
            AggregationRule::Minimum,
            AggregationRule::Median,
            AggregationRule::Mean,
        ] {
            let estimator = DisclosureEstimator::new(&archive).with_rule(rule);
            assert_eq!(
                estimator.estimate(&e),
                legacy::estimate_legacy(&estimator, &e),
                "engine diverged from the pre-engine loop under {rule:?}"
            );
        }
    }

    #[test]
    fn lag_buckets_partition_at_seven_days() {
        // Lags 0, 7 and 30 — the 7-day lag used to fall in neither week
        // bucket (within counted ≤6, over counted >7).
        let mut archive = WebArchive::new();
        let mut db = Database::new();
        for (i, d) in ["2015-03-01", "2015-02-22", "2015-01-30"]
            .iter()
            .enumerate()
        {
            let id: CveId = format!("CVE-2015-{:04}", i + 1).parse().unwrap();
            let mut e = CveEntry::new(id, date("2015-03-01"));
            let url = archive
                .publish("seclists.org", &id.to_string(), date(d), 0)
                .unwrap();
            e.references.push(Reference::new(url));
            db.push(e);
        }
        let est = DisclosureEstimator::new(&archive).estimate_all(&db);
        let summary = LagSummary::compute(&db, &est);
        assert_eq!(summary.lags, vec![0, 7, 30]);
        assert!(
            (summary.within_week_fraction + summary.over_week_fraction - 1.0).abs() < 1e-12,
            "week buckets must partition: within {} + over {}",
            summary.within_week_fraction,
            summary.over_week_fraction
        );
        assert!((summary.within_week_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lag_summary_cdf_is_monotone() {
        let mut archive = WebArchive::new();
        let mut db = Database::new();
        for (i, d) in ["2015-01-05", "2015-01-05", "2015-02-01"]
            .iter()
            .enumerate()
        {
            let id: CveId = format!("CVE-2015-{:04}", i + 1).parse().unwrap();
            let mut e = CveEntry::new(id, date("2015-03-01"));
            let url = archive
                .publish("seclists.org", &id.to_string(), date(d), 0)
                .unwrap();
            e.references.push(Reference::new(url));
            db.push(e);
        }
        let est = DisclosureEstimator::new(&archive).estimate_all(&db);
        let summary = LagSummary::compute(&db, &est);
        assert!(summary.cdf(0) <= summary.cdf(30));
        assert!(summary.cdf(10_000) >= 0.999);
    }
}
