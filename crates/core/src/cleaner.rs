//! The end-to-end cleaning pipeline.
//!
//! Runs the paper's four rectifications in order — disclosure dates (§4.1),
//! vendor/product names (§4.2), severity backport (§4.3), CWE mining
//! (§4.4) — producing a [`CleanOutcome`]: the rectified [`Database`], a
//! [`CleanReport`] with everything the case studies (§5) need, and the
//! per-CVE [`QualityLedger`] each stage emits its typed findings into.

use std::collections::BTreeMap;

use nvd_model::cwe::CweCatalog;
use nvd_model::prelude::{CveId, Database, Date, Severity};
use webarchive::{CrawlerSet, WebArchive};

use crate::cwe_fix::{rectify_cwe, CweFixOutcome};
use crate::disclosure::{AggregationRule, DisclosureEstimate, DisclosureEstimator};
use crate::incremental::QuarantineLedger;
use crate::names::{
    find_product_candidates, find_vendor_candidates, ApplyStats, NameMapping, PatternBreakdown,
    ProductCandidate, ProductHeuristic, Verifier,
};
use crate::quality::{emit_issues, QualityLedger, QualitySink};
use crate::severity::{backport_v3, BackportOptions, BackportOutcome};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct CleanOptions {
    /// Crawler coverage for disclosure estimation.
    pub crawlers: CrawlerSet,
    /// Date aggregation rule (paper: minimum).
    pub aggregation: AggregationRule,
    /// Severity backport options.
    pub backport: BackportOptions,
    /// Whether to run the (expensive) severity backport.
    pub run_backport: bool,
}

impl Default for CleanOptions {
    fn default() -> Self {
        Self {
            crawlers: CrawlerSet::builtin(),
            aggregation: AggregationRule::Minimum,
            backport: BackportOptions::default(),
            run_backport: true,
        }
    }
}

/// Name-cleaning summary (the §4.2 numbers).
#[derive(Debug, Clone, Default)]
pub struct NameReport {
    /// Distinct vendor names before cleaning.
    pub vendors_before: usize,
    /// Distinct vendor names after cleaning.
    pub vendors_after: usize,
    /// Distinct product names before cleaning.
    pub products_before: usize,
    /// Distinct product names after cleaning.
    pub products_after: usize,
    /// Candidate vendor pairs flagged by the heuristics.
    pub vendor_candidates: usize,
    /// Vendor pairs confirmed by verification.
    pub vendor_confirmed: usize,
    /// Product pairs flagged / confirmed.
    pub product_candidates: usize,
    /// Product pairs confirmed by verification.
    pub product_confirmed: usize,
    /// Table 2 tabulation over the vendor candidates.
    pub pattern_breakdown: PatternBreakdown,
    /// The consolidation mapping (reusable on side databases).
    pub mapping: NameMapping,
    /// Application statistics.
    pub apply_stats: ApplyStats,
}

impl NameReport {
    /// Vendor names impacted by a discrepancy (Table 3 `#imp`): aliases
    /// plus the consistent names they map onto.
    pub fn vendor_names_impacted(&self) -> usize {
        self.mapping.vendor.len() + self.mapping.consistent_vendor_targets()
    }
}

/// Everything the pipeline learned.
#[derive(Debug, Clone)]
pub struct CleanReport {
    /// Per-CVE disclosure estimates (§4.1).
    pub disclosure: BTreeMap<CveId, DisclosureEstimate>,
    /// Name-cleaning summary (§4.2).
    pub names: NameReport,
    /// Severity backport outcome (§4.3); `None` when skipped.
    pub severity: Option<BackportOutcome>,
    /// CWE rectification outcome (§4.4).
    pub cwe: CweFixOutcome,
}

/// Everything one cleaning pass produced: the rectified database, the
/// report over it, and the per-CVE quality ledger the stage-detectors
/// emitted. Returned by both [`Cleaner::clean`] and
/// [`crate::incremental::CleanState::apply_delta`], replacing the loose
/// `(Database, CleanReport)` tuples the two paths used to drift between.
#[derive(Debug, Clone)]
pub struct CleanOutcome {
    /// The rectified database.
    pub database: Database,
    /// The clean report (§4.1–§4.4 numbers).
    pub report: CleanReport,
    /// The typed per-CVE issue ledger — bit-identical at any `NVD_JOBS`
    /// and across the batch and incremental paths.
    pub ledger: QualityLedger,
}

impl CleanReport {
    /// Estimated disclosure date of a CVE, if the pipeline produced one.
    pub fn estimated_disclosure(&self, id: &CveId) -> Option<Date> {
        self.disclosure.get(id).map(|e| e.estimated)
    }

    /// The rectified (predicted-or-labelled) v3 severity of a CVE.
    pub fn effective_v3_severity(&self, db: &Database, id: &CveId) -> Option<Severity> {
        self.severity
            .as_ref()
            .and_then(|s| s.effective_severity(db, id))
    }
}

/// The product-pair acceptance rule shared by the batch pipeline and the
/// incremental [`crate::incremental::CleanState`]: token and abbreviation
/// pairs are reliable; edit-distance pairs need the verifier's scrutiny,
/// which our stand-ins only provide for vendors — so accept
/// token/abbreviation unconditionally and edit-distance pairs only when
/// short names make typos plausible.
pub(crate) fn confirm_product(c: &ProductCandidate) -> bool {
    match c.heuristic {
        ProductHeuristic::TokenEquivalent | ProductHeuristic::Abbreviation => true,
        ProductHeuristic::EditDistance => c.a.as_str().len() >= 5 && c.b.as_str().len() >= 5,
    }
}

/// The pipeline itself.
#[derive(Debug, Clone, Default)]
pub struct Cleaner {
    options: CleanOptions,
}

impl Cleaner {
    /// A cleaner with the paper's default setup.
    pub fn new(options: CleanOptions) -> Self {
        Self { options }
    }

    /// Runs all four rectifications, returning the cleaned database, the
    /// report, and the assembled quality ledger. The input database is not
    /// modified.
    ///
    /// `verifier` stands in for the paper's manual pair vetting; it must be
    /// `Sync` because the per-CVE stages (disclosure estimation, the §4.2
    /// candidate sweeps and their verification, severity feature
    /// extraction) fan out over the `minipar` pool. Output — the ledger
    /// included — is bit-identical at any `NVD_JOBS` setting.
    pub fn clean<V: Verifier + Sync>(
        &self,
        db: &Database,
        archive: &WebArchive,
        verifier: &V,
    ) -> CleanOutcome {
        let mut ledger = QualityLedger::default();
        let (database, report) = self.clean_into(db, archive, verifier, &mut ledger);
        CleanOutcome {
            database,
            report,
            ledger,
        }
    }

    /// [`Cleaner::clean`] with a pluggable issue sink: the pipeline runs
    /// identically, then the stage-detectors emit into `sink` — or skip
    /// all assessment work when the sink is disabled
    /// ([`crate::quality::NullSink`], the silent path the overhead bench
    /// baselines against).
    pub fn clean_into<V: Verifier + Sync, S: QualitySink>(
        &self,
        db: &Database,
        archive: &WebArchive,
        verifier: &V,
        sink: &mut S,
    ) -> (Database, CleanReport) {
        let mut cleaned = db.clone();

        // §4.1 — disclosure dates (on the original references).
        let estimator = DisclosureEstimator::new(archive)
            .with_crawlers(self.options.crawlers.clone())
            .with_rule(self.options.aggregation);
        let disclosure = estimator.estimate_all(&cleaned);

        // §4.2 — vendor names on the blocked matching engine (interned ids,
        // block proposal and signal annotation fan out over minipar). Pair
        // verification is the stand-in for the paper's manual review of
        // every flagged pair: per-pair work with no cross-pair state, so it
        // maps in candidate order.
        let vendor_candidates = find_vendor_candidates(&cleaned);
        let confirmed_flags: Vec<bool> =
            minipar::par_map(&vendor_candidates, |c| verifier.confirm(c));
        let confirmed: Vec<_> = vendor_candidates
            .iter()
            .zip(&confirmed_flags)
            .filter(|(_, &ok)| ok)
            .map(|(c, _)| c.clone())
            .collect();
        let pattern_breakdown = PatternBreakdown::tabulate(&vendor_candidates, &confirmed_flags);
        let mut mapping = NameMapping::build_vendor(&confirmed, &cleaned);

        // §4.2 — product names (under consolidated vendors, one parallel
        // block per vendor), accepted under the shared `confirm_product`
        // rule.
        let product_candidates = find_product_candidates(&cleaned, &mapping);
        let product_confirmed: Vec<_> = product_candidates
            .iter()
            .filter(|c| confirm_product(c))
            .cloned()
            .collect();
        mapping.extend_products(&product_confirmed, &cleaned);

        let vendors_before = cleaned.vendor_set().len();
        let products_before = cleaned.product_set().len();
        let apply_stats = mapping.apply(&mut cleaned);
        let names = NameReport {
            vendors_before,
            vendors_after: cleaned.vendor_set().len(),
            products_before,
            products_after: cleaned.product_set().len(),
            vendor_candidates: vendor_candidates.len(),
            vendor_confirmed: confirmed.len(),
            product_candidates: product_candidates.len(),
            product_confirmed: product_confirmed.len(),
            pattern_breakdown,
            mapping,
            apply_stats,
        };

        // §4.4 — CWE mining (before severity so target encoding can use
        // recovered types).
        let cwe = rectify_cwe(&mut cleaned, &CweCatalog::builtin());

        // §4.3 — severity backport.
        let severity = if self.options.run_backport {
            Some(backport_v3(&cleaned, &self.options.backport))
        } else {
            None
        };

        let report = CleanReport {
            disclosure,
            names,
            severity,
            cwe,
        };
        // Quality assessment: every stage re-read as a detector, emitting
        // typed issues serially (batch cleaning has no quarantine path).
        emit_issues(&cleaned, &report, &QuarantineLedger::default(), sink);
        (cleaned, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::OracleVerifier;
    use nvd_synth::{generate, SynthConfig};

    fn cleaned() -> (nvd_synth::SynthCorpus, Database, CleanReport) {
        let corpus = generate(&SynthConfig::with_scale(0.02, 41));
        let cleaner = Cleaner::default();
        let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
        let out = cleaner.clean(&corpus.database, &corpus.archive, &oracle);
        (corpus, out.database, out.report)
    }

    #[test]
    fn pipeline_reduces_vendor_universe() {
        let (_, _, report) = cleaned();
        assert!(
            report.names.vendors_after < report.names.vendors_before,
            "vendors {} → {}",
            report.names.vendors_before,
            report.names.vendors_after
        );
    }

    #[test]
    fn disclosure_estimates_improve_on_publication() {
        let (corpus, db, report) = cleaned();
        let mut improved = 0usize;
        let mut exact = 0usize;
        let mut considered = 0usize;
        for e in db.iter() {
            let est = report.disclosure[&e.id];
            if est.estimated < e.published {
                improved += 1;
            }
            if est.extracted > 0 {
                considered += 1;
                if est.estimated == corpus.truth.disclosure[&e.id] {
                    exact += 1;
                }
            }
        }
        assert!(improved > db.len() / 4, "improved {improved}/{}", db.len());
        // When the first (earliest) reference survives, the estimate is
        // exact; dead hosts make the rest upper bounds.
        assert!(
            exact as f64 / considered as f64 > 0.5,
            "exact {exact}/{considered}"
        );
    }

    #[test]
    fn oracle_cleaning_recovers_most_injected_vendor_aliases() {
        let (corpus, db, _) = cleaned();
        let alias_map = corpus.truth.vendor_alias_map();
        let remaining: Vec<_> = db
            .vendor_set()
            .into_iter()
            .filter(|v| alias_map.contains_key(*v))
            .collect();
        let recovered = alias_map.len() - remaining.len();
        // Aliases that never got sampled into a CVE cannot be found; among
        // those present, most should be consolidated.
        assert!(
            recovered * 3 >= alias_map.len(),
            "recovered {recovered} of {}",
            alias_map.len()
        );
    }

    #[test]
    fn severity_backport_covers_v2_only_population() {
        let (_, db, report) = cleaned();
        let sev = report.severity.as_ref().unwrap();
        let v2_only = db
            .iter()
            .filter(|e| e.cvss_v2.is_some() && !e.has_v3())
            .count();
        assert_eq!(sev.predictions.len(), v2_only);
    }

    #[test]
    fn cwe_fixes_recover_recoverable_entries() {
        let (_, _, report) = cleaned();
        assert!(
            report.cwe.stats.total_corrected() > 0,
            "some CWE fixes expected"
        );
        assert!(report.cwe.stats.fixed_other >= report.cwe.stats.fixed_missing);
    }

    #[test]
    fn ledger_matches_the_report_and_the_silent_path() {
        use crate::quality::{IssueKind, NullSink, QualityLedger};
        let corpus = generate(&SynthConfig::with_scale(0.01, 41));
        let cleaner = Cleaner::default();
        let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
        let out = cleaner.clean(&corpus.database, &corpus.archive, &oracle);

        // Re-assembling from the report reproduces the ledger exactly, and
        // the NullSink path returns an identical database + report.
        let reassembled = QualityLedger::assemble(
            &out.database,
            &out.report,
            &crate::incremental::QuarantineLedger::default(),
        );
        assert_eq!(out.ledger, reassembled);
        let mut sink = NullSink;
        let (silent_db, silent_report) =
            cleaner.clean_into(&corpus.database, &corpus.archive, &oracle, &mut sink);
        assert_eq!(out.database.as_slice(), silent_db.as_slice());
        assert_eq!(format!("{:?}", out.report), format!("{silent_report:?}"));

        // Every auto-fix the report records shows up as ledger issues.
        let quality = out.ledger.corpus_quality(&out.database);
        let vendor_fixes = out.report.names.apply_stats.cves_with_vendor_fixes.len();
        assert_eq!(
            quality.by_kind.get(&IssueKind::VendorAlias).copied(),
            (vendor_fixes > 0).then_some(vendor_fixes)
        );
        assert!(quality.auto_fixed > 0);
        assert!(quality.needs_review > 0);
        assert!(quality.mean(crate::quality::ScoreAxis::Overall) < 100.0);
    }

    #[test]
    fn original_database_is_untouched() {
        let corpus = generate(&SynthConfig::with_scale(0.005, 2));
        let before: Vec<_> = corpus.database.iter().cloned().collect();
        let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
        let cleaner = Cleaner::new(CleanOptions {
            run_backport: false,
            ..CleanOptions::default()
        });
        let _ = cleaner.clean(&corpus.database, &corpus.archive, &oracle);
        let after: Vec<_> = corpus.database.iter().cloned().collect();
        assert_eq!(before, after);
    }
}
