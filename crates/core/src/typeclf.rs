//! Description-based vulnerability-type classification (§4.4).
//!
//! "Evidently, the CVE description outlines the traces of a vulnerability,
//! which can be used to determine the type of vulnerability." The paper
//! preprocesses descriptions (case folding, stop-word and special-character
//! removal, contraction expansion, tense normalisation), embeds them with
//! the Universal Sentence Encoder into 512-dimensional vectors, and trains
//! k-NN / CNN / DNN classifiers — "k-NN (k = 1) provides the best results,
//! predicting 151 different types with 65.60% accuracy", which the paper
//! deems too unreliable to deploy. This module reproduces that experiment
//! with `textkit`'s encoder substitute.

use std::collections::BTreeMap;

use mlkit::data::stratified_split_indices;
use mlkit::knn::KnnClassifier;
use mlkit::matrix::Matrix;
use nvd_model::cwe::CweId;
use nvd_model::prelude::{CveEntry, Database};
use textkit::encoder::{Idf, PreprocessedCorpus, SentenceEncoder};

/// Options for [`train_type_classifier`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeClassifierOptions {
    /// Neighbours to vote with (paper's best: 1).
    pub k: usize,
    /// Embedding dimensionality (paper: 512; ablate with 128/256).
    pub dim: usize,
    /// Held-out fraction for accuracy measurement.
    pub test_fraction: f64,
    /// RNG seed for the split.
    pub seed: u64,
    /// Cap on training samples (embedding + brute-force k-NN are O(n²)
    /// at evaluation; the cap keeps large corpora tractable).
    pub max_samples: usize,
}

impl Default for TypeClassifierOptions {
    fn default() -> Self {
        Self {
            k: 1,
            dim: 512,
            test_fraction: 0.2,
            seed: 0x7c1f,
            max_samples: 6000,
        }
    }
}

/// A trained description → CWE classifier.
#[derive(Debug, Clone)]
pub struct TypeClassifier {
    encoder: SentenceEncoder,
    knn: KnnClassifier,
    classes: Vec<CweId>,
}

impl TypeClassifier {
    /// Predicts the CWE type of a description (a one-row batch through the
    /// classifier's batched distance sweep).
    pub fn classify(&self, description: &str) -> CweId {
        self.classify_batch(&[description])[0]
    }

    /// Predicts the CWE type of every description at once: the batch is
    /// preprocessed once into a [`PreprocessedCorpus`], embeddings fan out
    /// over the `minipar` pool, and the k-NN sweep runs as one batched
    /// Gram product.
    pub fn classify_batch(&self, descriptions: &[&str]) -> Vec<CweId> {
        if descriptions.is_empty() {
            return Vec::new();
        }
        let corpus = PreprocessedCorpus::build(descriptions.iter().copied(), self.encoder.seed());
        let x = embed_corpus(&self.encoder, &corpus);
        self.knn
            .predict(&x)
            .into_iter()
            .map(|c| self.classes[c])
            .collect()
    }

    /// Number of distinct types the classifier can emit.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

/// Embeds an already-preprocessed corpus into one flat `n × dim` matrix;
/// per-document scatter work shards over the `minipar` pool (pure per-item,
/// so job-count invariant).
///
/// # Panics
///
/// Panics on an empty corpus (callers guard).
fn embed_corpus(encoder: &SentenceEncoder, corpus: &PreprocessedCorpus) -> Matrix {
    assert!(!corpus.is_empty(), "non-empty batch");
    let embedded = encoder.encode_corpus(corpus);
    let dim = encoder.dim();
    let mut rows = Vec::with_capacity(corpus.len() * dim);
    for e in &embedded {
        rows.extend_from_slice(e);
    }
    Matrix::from_vec(corpus.len(), dim, rows)
}

/// Evaluation of the classifier on its held-out split.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeClassifierReport {
    /// Held-out accuracy (paper: 65.60%).
    pub accuracy: f64,
    /// Distinct predicted types (paper: 151).
    pub classes: usize,
    /// Training-set size after the cap.
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
}

/// Trains the §4.4 classifier on every entry with a concrete CWE label and
/// measures held-out accuracy.
///
/// Returns `None` when the database has fewer than 20 typed entries.
pub fn train_type_classifier(
    db: &Database,
    options: &TypeClassifierOptions,
) -> Option<(TypeClassifier, TypeClassifierReport)> {
    let mut typed: Vec<(&CveEntry, CweId)> = db
        .iter()
        .filter_map(|e| e.effective_cwe().specific().map(|id| (e, id)))
        .collect();
    if typed.len() < 20 {
        return None;
    }
    typed.truncate(options.max_samples);

    // Class index.
    let mut class_index: BTreeMap<CweId, usize> = BTreeMap::new();
    let mut classes: Vec<CweId> = Vec::new();
    for (_, id) in &typed {
        class_index.entry(*id).or_insert_with(|| {
            classes.push(*id);
            classes.len() - 1
        });
    }
    let labels: Vec<usize> = typed.iter().map(|(_, id)| class_index[id]).collect();

    let (train_idx, test_idx) =
        stratified_split_indices(&labels, options.test_fraction, options.seed);

    // Preprocess each training description exactly once: the same
    // PreprocessedCorpus feeds the IDF fit (deterministic parallel
    // par_fold) and the design-matrix encoding. Entries without a primary
    // description embed as empty documents but are excluded from the IDF
    // document population, matching the historical fit.
    let text_of = |i: usize| typed[i].0.primary_description().unwrap_or_default();
    let train_corpus =
        PreprocessedCorpus::build(train_idx.iter().map(|&i| text_of(i)), options.seed);
    let idf_docs: Vec<usize> = train_idx
        .iter()
        .enumerate()
        .filter(|&(_, &i)| typed[i].0.primary_description().is_some())
        .map(|(doc, _)| doc)
        .collect();
    let encoder = SentenceEncoder::new(options.dim, options.seed)
        .with_idf(Idf::fit_corpus_docs(&train_corpus, &idf_docs));

    // Embeddings fan out over the pool and land in flat design matrices;
    // the held-out evaluation is one batched k-NN sweep.
    let train_x = embed_corpus(&encoder, &train_corpus);
    let train_y: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
    let knn = KnnClassifier::fit(train_x, train_y, options.k);

    let accuracy = if test_idx.is_empty() {
        0.0
    } else {
        let test_corpus =
            PreprocessedCorpus::build(test_idx.iter().map(|&i| text_of(i)), options.seed);
        let test_x = embed_corpus(&encoder, &test_corpus);
        let pred = knn.predict(&test_x);
        let correct = test_idx
            .iter()
            .zip(&pred)
            .filter(|(&i, &p)| p == labels[i])
            .count();
        correct as f64 / test_idx.len() as f64
    };

    let report = TypeClassifierReport {
        accuracy,
        classes: classes.len(),
        train_size: train_idx.len(),
        test_size: test_idx.len(),
    };
    Some((
        TypeClassifier {
            encoder,
            knn,
            classes,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_synth::{generate, SynthConfig};

    #[test]
    fn accuracy_is_mid_band_not_perfect() {
        let corpus = generate(&SynthConfig::with_scale(0.02, 23));
        let (_, report) = train_type_classifier(
            &corpus.database,
            &TypeClassifierOptions {
                max_samples: 1500,
                ..TypeClassifierOptions::default()
            },
        )
        .expect("enough typed entries");
        // Paper: 65.60% over 151 classes. The synthetic corpus has fewer
        // classes; the defining property is "useful but unreliable".
        assert!(
            (0.35..0.95).contains(&report.accuracy),
            "accuracy {}",
            report.accuracy
        );
        assert!(report.classes > 20, "classes {}", report.classes);
    }

    #[test]
    fn classifier_identifies_obvious_sql_injection() {
        let corpus = generate(&SynthConfig::with_scale(0.02, 23));
        let (clf, _) = train_type_classifier(
            &corpus.database,
            &TypeClassifierOptions {
                max_samples: 1500,
                ..TypeClassifierOptions::default()
            },
        )
        .unwrap();
        let pred = clf.classify(
            "SQL injection vulnerability in index.php allows remote attackers to \
             execute arbitrary SQL commands via the id parameter. The issue is \
             classified as sql injection.",
        );
        assert_eq!(pred, CweId::new(89));
    }

    #[test]
    fn too_few_samples_returns_none() {
        let db = Database::new();
        assert!(train_type_classifier(&db, &TypeClassifierOptions::default()).is_none());
    }

    #[test]
    fn smaller_dim_still_works() {
        let corpus = generate(&SynthConfig::with_scale(0.01, 3));
        let r128 = train_type_classifier(
            &corpus.database,
            &TypeClassifierOptions {
                dim: 128,
                max_samples: 600,
                ..TypeClassifierOptions::default()
            },
        );
        assert!(r128.is_some());
    }
}
