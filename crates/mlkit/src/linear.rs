//! Ridge-regularised linear regression via the normal equations.
//!
//! The paper's baseline model (§4.3, Table 5 "LR") "finds the linear
//! relationship between a target and one or more features". A small ridge
//! term keeps the normal equations positive-definite on the one-hot-heavy
//! feature matrices the severity backport produces.

use crate::linalg::{solve_spd, LinalgError};
use crate::matrix::{dot, Matrix};

/// A fitted linear model `y ≈ w·x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeRegression {
    weights: Vec<f64>,
    intercept: f64,
}

impl RidgeRegression {
    /// Fits the model by solving `(XᵀX + λI) w = Xᵀy` on mean-centred data;
    /// the intercept is recovered from the column means. `lambda >= 0`.
    ///
    /// # Errors
    ///
    /// Returns an error when the regularised Gram matrix is not positive
    /// definite (e.g. `lambda == 0` with perfectly collinear features).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()` or the matrix is empty.
    pub fn fit(x: &Matrix, y: &[f64], lambda: f64) -> Result<Self, LinalgError> {
        assert_eq!(x.rows(), y.len(), "feature/target length mismatch");
        assert!(x.rows() > 0 && x.cols() > 0, "empty design matrix");
        let n = x.rows();
        let d = x.cols();

        let x_means = x.column_means();
        let y_mean: f64 = y.iter().sum::<f64>() / n as f64;

        // Centre the design once, then both normal-equation products are
        // single calls into the blocked parallel kernels: the Gram matrix
        // is XcᵀXc and the moment vector Xcᵀyc (both reduce the sample
        // dimension in ascending order, so the solve sees the same floats
        // at every job count).
        let mut xc = x.clone();
        xc.sub_broadcast(&x_means);
        let yc = Matrix::from_vec(n, 1, y.iter().map(|&v| v - y_mean).collect());
        let mut gram = xc.transpose_matmul(&xc);
        let xty = xc.transpose_matmul(&yc);
        for i in 0..d {
            gram[(i, i)] += lambda;
        }

        let weights = solve_spd(&gram, xty.as_slice())?;
        let intercept = y_mean - dot(&weights, &x_means);
        Ok(Self { weights, intercept })
    }

    /// The fitted coefficient vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Predicts every row of a matrix (`X·w + b`).
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from the fitted data.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(x.cols(), self.weights.len(), "feature count mismatch");
        let mut out = x.matvec(&self.weights);
        for v in &mut out {
            *v += self.intercept;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = [1.0, 3.0, 5.0, 7.0];
        let m = RidgeRegression::fit(&x, &y, 1e-10).unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 1e-6);
        assert!((m.intercept() - 1.0).abs() < 1e-6);
        assert!((m.predict(&Matrix::from_rows(&[&[10.0]]))[0] - 21.0).abs() < 1e-5);
    }

    #[test]
    fn recovers_multivariate_plane() {
        // y = 3a - 2b + 0.5
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 0.5).collect();
        let m = RidgeRegression::fit(&x, &y, 1e-9).unwrap();
        assert!((m.weights()[0] - 3.0).abs() < 1e-6);
        assert!((m.weights()[1] + 2.0).abs() < 1e-6);
        assert!((m.intercept() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ridge_shrinks_collinear_weights() {
        // Two identical columns: ridge splits the weight between them.
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0], &[4.0, 4.0]]);
        let y = [2.0, 4.0, 6.0, 8.0];
        let m = RidgeRegression::fit(&x, &y, 1e-6).unwrap();
        assert!((m.weights()[0] - m.weights()[1]).abs() < 1e-4);
        assert!((m.predict(&Matrix::from_rows(&[&[5.0, 5.0]]))[0] - 10.0).abs() < 1e-3);
    }

    #[test]
    fn constant_target_yields_zero_weights() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = [4.0, 4.0, 4.0];
        let m = RidgeRegression::fit(&x, &y, 1e-6).unwrap();
        assert!(m.weights()[0].abs() < 1e-9);
        assert!((m.intercept() - 4.0).abs() < 1e-9);
    }
}
