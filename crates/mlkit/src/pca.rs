//! Principal component analysis via Jacobi eigendecomposition.
//!
//! The paper's Appendix A.1 (Fig. 5) applies PCA to reduce the
//! "13-dimensional feature vector to a three-dimension space" to visualise
//! how v2 severity classes transform under v3.

use crate::linalg::{symmetric_eigen, LinalgError};
use crate::matrix::Matrix;

/// A fitted PCA transform keeping the top `k` components.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    means: Vec<f64>,
    /// `k × d` row-wise principal axes, ordered by decreasing variance.
    components: Matrix,
    /// Variance captured by each kept component.
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits PCA on the rows of `x`, keeping `k` components.
    ///
    /// # Errors
    ///
    /// Returns an error if the eigendecomposition fails to converge.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the feature count, or `x` is empty.
    pub fn fit(x: &Matrix, k: usize) -> Result<Self, LinalgError> {
        assert!(x.rows() > 0 && x.cols() > 0, "empty data");
        assert!(k >= 1 && k <= x.cols(), "k out of range");
        let n = x.rows();
        let d = x.cols();
        let means = x.column_means();

        // Covariance of centred data: one XcᵀXc on the blocked parallel
        // kernel (each entry reduces samples in ascending order — job-count
        // invariant).
        let xc = centred(x, &means);
        let mut cov = xc.transpose_matmul(&xc);
        let denom = (n.max(2) - 1) as f64;
        for v in cov.as_mut_slice() {
            *v /= denom;
        }

        let (eigenvalues, eigenvectors) = symmetric_eigen(&cov)?;
        // Sort eigenpairs by decreasing eigenvalue.
        let mut idx: Vec<usize> = (0..d).collect();
        idx.sort_by(|&a, &b| eigenvalues[b].partial_cmp(&eigenvalues[a]).unwrap());

        let mut components = Matrix::zeros(k, d);
        let mut explained = Vec::with_capacity(k);
        for (row, &e) in idx.iter().take(k).enumerate() {
            explained.push(eigenvalues[e].max(0.0));
            for c in 0..d {
                // Eigenvectors are columns of the Jacobi rotation product.
                components[(row, c)] = eigenvectors[(c, e)];
            }
            // Deterministic sign: make the largest-magnitude entry positive.
            let (mut best, mut best_abs) = (0, 0.0);
            for c in 0..d {
                let a = components[(row, c)].abs();
                if a > best_abs {
                    best_abs = a;
                    best = c;
                }
            }
            if components[(row, best)] < 0.0 {
                for c in 0..d {
                    components[(row, c)] = -components[(row, c)];
                }
            }
        }
        Ok(Self {
            means,
            components,
            explained_variance: explained,
        })
    }

    /// Number of retained components.
    pub fn k(&self) -> usize {
        self.components.rows()
    }

    /// Variance captured by each retained component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Projects every row of a matrix; output is `n × k`. One centring pass
    /// plus one `Xc · Cᵀ` on the blocked parallel kernels.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from the fitted data.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "feature count mismatch");
        centred(x, &self.means).matmul_transposed(&self.components)
    }
}

/// Subtracts the column means from every row (batched, in one pass).
fn centred(x: &Matrix, means: &[f64]) -> Matrix {
    let mut xc = x.clone();
    xc.sub_broadcast(means);
    xc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data stretched along the (1, 1) diagonal: PC1 must align with it.
    #[test]
    fn first_component_finds_dominant_direction() {
        let mut rows = Vec::new();
        for i in 0..50 {
            let t = (i as f64 - 25.0) / 5.0;
            let noise = ((i * 31) % 7) as f64 / 70.0 - 0.05;
            rows.push(vec![t + noise, t - noise]);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let pca = Pca::fit(&x, 2).unwrap();
        let c0 = pca.components.row(0);
        // Normalised direction close to (1/√2, 1/√2).
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        assert!((c0[0].abs() - inv_sqrt2).abs() < 0.05, "{c0:?}");
        assert!((c0[1].abs() - inv_sqrt2).abs() < 0.05, "{c0:?}");
        assert!(pca.explained_variance()[0] > pca.explained_variance()[1]);
    }

    #[test]
    fn transform_centres_data() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let pca = Pca::fit(&x, 2).unwrap();
        let t = pca.transform(&x);
        let means = t.column_means();
        for m in means {
            assert!(m.abs() < 1e-9);
        }
    }

    #[test]
    fn projection_preserves_pairwise_distance_when_k_equals_d() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 2.0]]);
        let pca = Pca::fit(&x, 2).unwrap();
        let t = pca.transform(&x);
        let d_orig = crate::matrix::squared_distance(x.row(0), x.row(1));
        let d_proj = crate::matrix::squared_distance(t.row(0), t.row(1));
        assert!((d_orig - d_proj).abs() < 1e-9);
        let d_orig = crate::matrix::squared_distance(x.row(1), x.row(2));
        let d_proj = crate::matrix::squared_distance(t.row(1), t.row(2));
        assert!((d_orig - d_proj).abs() < 1e-9);
    }

    #[test]
    fn deterministic_sign_convention() {
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 3.0], &[2.0, 5.0], &[3.0, 7.0]]);
        let a = Pca::fit(&x, 1).unwrap();
        let b = Pca::fit(&x, 1).unwrap();
        assert_eq!(a, b);
        // Largest-magnitude loading is positive.
        let c0 = a.components.row(0);
        let max = c0.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 0.0);
    }

    #[test]
    fn constant_data_projects_to_zero() {
        let x = Matrix::from_rows(&[&[2.0, 2.0], &[2.0, 2.0], &[2.0, 2.0]]);
        let pca = Pca::fit(&x, 1).unwrap();
        let t = pca.transform(&x);
        for r in 0..t.rows() {
            assert!(t.row(r)[0].abs() < 1e-12);
        }
    }
}
