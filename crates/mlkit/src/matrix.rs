//! Dense row-major matrices and the small set of operations the model zoo
//! needs. No BLAS, no unsafe — sizes here are thousands × dozens, where a
//! straightforward triple loop is plenty.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// ```
/// use mlkit::matrix::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4}", self[(r, c)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { " …" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Stacks row vectors (e.g. feature vectors) into a matrix.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or lengths differ.
    pub fn from_vectors(vectors: &[Vec<f64>]) -> Self {
        let refs: Vec<&[f64]> = vectors.iter().map(Vec::as_slice).collect();
        Self::from_rows(&refs)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(r);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Column means, e.g. for centering before PCA.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (m, &x) in means.iter_mut().zip(self.row(r)) {
                *m += x;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Whether all elements are finite (no NaN/inf) — a guard the training
    /// loops use to fail fast on divergence.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "sub shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    /// Element-wise (Hadamard) product; use [`Matrix::matmul`] for the
    /// matrix product.
    fn mul(self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot over mismatched lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance over mismatched lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v), vec![17.0, 39.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(&a * &b, Matrix::from_rows(&[&[3.0, 10.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn column_means_and_norm() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 20.0]]);
        assert_eq!(a.column_means(), vec![2.0, 15.0]);
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn finite_guard() {
        let mut a = Matrix::zeros(1, 2);
        assert!(a.is_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.is_finite());
    }

    #[test]
    fn dot_and_distance() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
