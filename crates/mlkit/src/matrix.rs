//! Dense row-major matrices and the matrix kernels the model zoo trains on.
//!
//! The three product kernels ([`Matrix::matmul`], [`Matrix::matmul_transposed`],
//! [`Matrix::transpose_matmul`]) and the broadcast helpers are the batched
//! substrate every training loop in this crate runs on. They are blocked for
//! cache reuse and sharded over the `minipar` pool, with a determinism
//! contract the whole pipeline relies on:
//!
//! * **Row-band sharding.** Output rows are split into contiguous bands and
//!   each band is computed by exactly one task. No output element is ever
//!   touched by two tasks, so there is nothing to merge and no merge order
//!   to get wrong.
//! * **Fixed accumulation order.** Every output element accumulates its
//!   reduction dimension in ascending index order, regardless of banding or
//!   thread count. Results are therefore bit-identical at every `NVD_JOBS`
//!   setting, including the inline `jobs = 1` path.
//! * **Register blocking.** Within a band, [`Matrix::matmul`] processes
//!   [`ROW_BLOCK`] output rows per pass over the right-hand operand, so each
//!   B row loaded into L1 is reused `ROW_BLOCK` times. The j dimension
//!   streams whole rows — every matrix in this workload fits L2, so tiling
//!   j would only add loop overhead.
//!
//! No BLAS, no unsafe.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Output rows computed per pass over the right-hand operand in
/// [`Matrix::matmul`] — the register-blocking factor.
pub const ROW_BLOCK: usize = 4;

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// ```
/// use mlkit::matrix::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4}", self[(r, c)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { " …" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Stacks row vectors (e.g. feature vectors) into a matrix.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or lengths differ.
    pub fn from_vectors(vectors: &[Vec<f64>]) -> Self {
        let refs: Vec<&[f64]> = vectors.iter().map(Vec::as_slice).collect();
        Self::from_rows(&refs)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major data (e.g. for optimizer
    /// updates over a weight matrix).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Runs `f(row_index, row)` over every row, sharding contiguous row
    /// bands across the `minipar` pool.
    ///
    /// Each row is visited by exactly one task, so as long as `f` is a pure
    /// per-row function the result is bit-identical at every job count.
    /// Band boundaries only affect scheduling, never values. Assumes
    /// roughly `cols` work per row; kernels with heavier rows use
    /// [`Matrix::par_rows_mut_cost`].
    pub fn par_rows_mut(&mut self, f: impl Fn(usize, &mut [f64]) + Sync) {
        let cols = self.cols;
        self.par_rows_mut_cost(cols, f);
    }

    /// [`Matrix::par_rows_mut`] with an explicit per-row work estimate (in
    /// flop-ish units). Small workloads run inline: below
    /// [`MIN_TASK_WORK`] per would-be band, forking costs more than it
    /// saves — the threshold only changes scheduling, never values.
    pub fn par_rows_mut_cost(&mut self, work_per_row: usize, f: impl Fn(usize, &mut [f64]) + Sync) {
        let cols = self.cols;
        let rows = self.rows;
        let bands = band_count(rows, work_per_row);
        if bands <= 1 {
            for (r, row) in self.data.chunks_mut(cols).enumerate() {
                f(r, row);
            }
            return;
        }
        let band_rows = rows.div_ceil(bands);
        minipar::scope(|s| {
            for (bi, band) in self.data.chunks_mut(band_rows * cols).enumerate() {
                let f = &f;
                s.spawn(move || {
                    for (i, row) in band.chunks_mut(cols).enumerate() {
                        f(bi * band_rows + i, row);
                    }
                });
            }
        });
    }

    /// Matrix product `self · other`.
    ///
    /// Blocked and parallel: row bands shard over `minipar`, and within a
    /// band [`ROW_BLOCK`] output rows share each pass over `other`'s rows.
    /// Every output element accumulates `k` in ascending order, so the
    /// result is bit-identical at any job count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a caller-owned output (overwritten), so hot
    /// loops can reuse a preallocated workspace.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()` or `out` is not
    /// `self.rows() × other.cols()`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        let n = other.cols;
        let k_dim = self.cols;
        // One pool task per large band; register blocking inside the band.
        let bands = band_count(self.rows, k_dim.saturating_mul(n));
        let band_rows = self.rows.div_ceil(bands).div_ceil(ROW_BLOCK) * ROW_BLOCK;
        out.par_rows_band_mut(band_rows, |r0, band| {
            for (qi, quad) in band.chunks_mut(ROW_BLOCK * n).enumerate() {
                let q0 = r0 + qi * ROW_BLOCK;
                let mut out_rows: Vec<&mut [f64]> = quad.chunks_mut(n).collect();
                for row in out_rows.iter_mut() {
                    row.fill(0.0);
                }
                for k in 0..k_dim {
                    let b_row = other.row(k);
                    for (i, out_row) in out_rows.iter_mut().enumerate() {
                        let a = self.data[(q0 + i) * k_dim + k];
                        for (o, &b) in out_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
            }
        });
    }

    /// Product with a transposed right-hand side: `self · otherᵀ`, where
    /// `other` is `n × k` row-major and `self` is `m × k`.
    ///
    /// This is the natural layout for dense-layer forward passes
    /// (`X · Wᵀ` with `W` stored `units × fan_in`) and for Gram/distance
    /// sweeps: both operands stream row-major, so every dot product is a
    /// pair of contiguous loads. Row bands shard over `minipar`; each
    /// element reduces `k` ascending — bit-identical at any job count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transposed_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_transposed`] into a caller-owned output
    /// (overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()` or `out` is not
    /// `self.rows() × other.rows()`.
    pub fn matmul_transposed_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed shape mismatch {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.rows),
            "matmul_transposed output shape mismatch"
        );
        out.par_rows_mut_cost(self.cols.saturating_mul(other.rows), |r, out_row| {
            let a_row = self.row(r);
            for (c, o) in out_row.iter_mut().enumerate() {
                *o = dot(a_row, other.row(c));
            }
        });
    }

    /// Product with a transposed left-hand side: `selfᵀ · other`, where
    /// `self` is `s × m` and `other` is `s × n` (both row-major), giving
    /// `m × n`.
    ///
    /// This is the gradient-accumulation kernel (`∂L/∂W = Dᵀ · X` with both
    /// `D` and `X` batch-major). Each output row is owned by one task and
    /// reduces the batch dimension `s` in ascending order — bit-identical
    /// at any job count, and identical to a per-sample accumulation loop.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.transpose_matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::transpose_matmul`] into a caller-owned output
    /// (overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()` or `out` is not
    /// `self.cols() × other.cols()`.
    pub fn transpose_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul shape mismatch ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, other.cols),
            "transpose_matmul output shape mismatch"
        );
        let s_dim = self.rows;
        let m = self.cols;
        out.par_rows_mut_cost(s_dim.saturating_mul(other.cols), |i, out_row| {
            out_row.fill(0.0);
            for s in 0..s_dim {
                let a = self.data[s * m + i];
                for (o, &b) in out_row.iter_mut().zip(other.row(s)) {
                    *o += a * b;
                }
            }
        });
    }

    /// Adds `row` to every row of the matrix in place (bias broadcast),
    /// sharded over `minipar`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn add_broadcast(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.cols,
            "add_broadcast shape mismatch: {} columns vs row of {}",
            self.cols,
            row.len()
        );
        self.par_rows_mut(|_, out_row| {
            for (o, &b) in out_row.iter_mut().zip(row) {
                *o += b;
            }
        });
    }

    /// Subtracts `row` from every row of the matrix in place (e.g. mean
    /// centring), sharded over `minipar`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn sub_broadcast(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.cols,
            "sub_broadcast shape mismatch: {} columns vs row of {}",
            self.cols,
            row.len()
        );
        self.par_rows_mut(|_, out_row| {
            for (o, &b) in out_row.iter_mut().zip(row) {
                *o -= b;
            }
        });
    }

    /// Column sums, e.g. bias gradients over a batch. Each column reduces
    /// the rows in ascending order.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &x) in sums.iter_mut().zip(self.row(r)) {
                *s += x;
            }
        }
        sums
    }

    /// Like [`Matrix::par_rows_mut_cost`] but hands each task a whole band
    /// (`f(first_row_index, band_slice)`) of `band_rows` rows, where
    /// `band_rows` was sized by the caller from [`band_count`].
    fn par_rows_band_mut(&mut self, band_rows: usize, f: impl Fn(usize, &mut [f64]) + Sync) {
        let cols = self.cols;
        let rows = self.rows;
        if minipar::jobs() <= 1 || rows <= band_rows {
            f(0, &mut self.data);
            return;
        }
        minipar::scope(|s| {
            for (bi, band) in self.data.chunks_mut(band_rows * cols).enumerate() {
                let f = &f;
                s.spawn(move || f(bi * band_rows, band));
            }
        });
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Applies `f` to every element in place, sharding row bands over
    /// `minipar` (element-wise, so trivially job-count invariant).
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64 + Sync) {
        self.par_rows_mut(|_, row| {
            for v in row.iter_mut() {
                *v = f(*v);
            }
        });
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Column means, e.g. for centering before PCA.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (m, &x) in means.iter_mut().zip(self.row(r)) {
                *m += x;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Whether all elements are finite (no NaN/inf) — a guard the training
    /// loops use to fail fast on divergence.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "sub shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    /// Element-wise (Hadamard) product; use [`Matrix::matmul`] for the
    /// matrix product.
    fn mul(self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }
}

/// Minimum estimated work (flop-ish units) a parallel band must carry
/// before forking it onto the pool beats running it inline. Tiny kernels —
/// a 32-row minibatch through a 16-unit layer — stay inline at any job
/// count; the backport-scale sweeps fork. Purely a scheduling decision:
/// values never depend on it.
pub const MIN_TASK_WORK: usize = 1 << 16;

/// How many parallel bands to cut `rows` into for a kernel doing
/// `work_per_row` work per row: at most ~4 bands per worker for load
/// balancing, each band carrying at least [`MIN_TASK_WORK`], and 1 (run
/// inline) when the whole job is small or only one job is allowed.
fn band_count(rows: usize, work_per_row: usize) -> usize {
    let jobs = minipar::jobs();
    if jobs <= 1 {
        return 1;
    }
    let total = rows.saturating_mul(work_per_row.max(1));
    (total / MIN_TASK_WORK).min(jobs * 4).min(rows).max(1)
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot over mismatched lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance over mismatched lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v), vec![17.0, 39.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(&a * &b, Matrix::from_rows(&[&[3.0, 10.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn column_means_and_norm() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 20.0]]);
        assert_eq!(a.column_means(), vec![2.0, 15.0]);
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn finite_guard() {
        let mut a = Matrix::zeros(1, 2);
        assert!(a.is_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.is_finite());
    }

    #[test]
    fn dot_and_distance() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    /// Deterministic pseudo-random matrix (no RNG dependency needed).
    fn probe(rows: usize, cols: usize, salt: u64) -> Matrix {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| {
                let mut z = (i as u64)
                    .wrapping_add(salt)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 29;
                ((z % 2000) as f64 - 1000.0) / 500.0
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Reference triple loop, no blocking, no parallelism.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for c in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(r, k)] * b[(k, c)];
                }
                out[(r, c)] = acc;
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_matches_naive_oracle_non_square() {
        // Deliberately awkward shapes: not multiples of ROW_BLOCK, not
        // square, odd reduction length.
        let a = probe(37, 23, 1);
        let b = probe(23, 41, 2);
        let blocked = a.matmul(&b);
        let oracle = naive_matmul(&a, &b);
        assert_eq!(blocked.rows(), 37);
        assert_eq!(blocked.cols(), 41);
        for r in 0..37 {
            for c in 0..41 {
                assert!(
                    (blocked[(r, c)] - oracle[(r, c)]).abs() < 1e-9,
                    "({r},{c}): {} vs {}",
                    blocked[(r, c)],
                    oracle[(r, c)]
                );
            }
        }
    }

    #[test]
    fn transposed_kernels_match_explicit_transpose() {
        let a = probe(17, 9, 3);
        let b = probe(29, 9, 4);
        assert_eq!(a.matmul_transposed(&b), a.matmul(&b.transpose()));
        let c = probe(17, 11, 5);
        let tm = a.transpose_matmul(&c);
        let explicit = a.transpose().matmul(&c);
        for r in 0..tm.rows() {
            for j in 0..tm.cols() {
                assert!((tm[(r, j)] - explicit[(r, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn degenerate_shapes_one_by_n_and_n_by_one() {
        // 1×N · N×1 → 1×1 dot product.
        let row = probe(1, 23, 6);
        let col = probe(23, 1, 7);
        let d = row.matmul(&col);
        assert_eq!((d.rows(), d.cols()), (1, 1));
        let expect: f64 = (0..23).map(|k| row[(0, k)] * col[(k, 0)]).sum();
        assert!((d[(0, 0)] - expect).abs() < 1e-12);
        // N×1 · 1×N → rank-1 outer product.
        let outer = col.matmul(&row);
        assert_eq!((outer.rows(), outer.cols()), (23, 23));
        assert!((outer[(4, 9)] - col[(4, 0)] * row[(0, 9)]).abs() < 1e-12);
        // Transposed kernels on single-row operands.
        assert_eq!(
            row.matmul_transposed(&row)[(0, 0)],
            dot(row.row(0), row.row(0))
        );
    }

    #[test]
    fn parallel_and_serial_products_are_bit_identical() {
        let a = probe(53, 31, 8);
        let b = probe(31, 37, 9);
        let bt = b.transpose();
        let serial = minipar::with_jobs(1, || {
            (
                a.matmul(&b),
                a.matmul_transposed(&bt),
                a.transpose_matmul(&a),
            )
        });
        let wide = minipar::with_jobs(4, || {
            (
                a.matmul(&b),
                a.matmul_transposed(&bt),
                a.transpose_matmul(&a),
            )
        });
        // PartialEq on Matrix compares every f64 exactly: bit-identity.
        assert_eq!(serial.0, wide.0, "matmul diverged across job counts");
        assert_eq!(serial.1, wide.1, "matmul_transposed diverged");
        assert_eq!(serial.2, wide.2, "transpose_matmul diverged");
    }

    #[test]
    fn broadcast_and_column_sums() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.add_broadcast(&[10.0, 20.0]);
        assert_eq!(m, Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
        assert_eq!(m.column_sums(), vec![24.0, 46.0]);
        let serial = minipar::with_jobs(1, || {
            let mut x = probe(19, 7, 10);
            x.add_broadcast(&[0.5; 7]);
            x
        });
        let wide = minipar::with_jobs(4, || {
            let mut x = probe(19, 7, 10);
            x.add_broadcast(&[0.5; 7]);
            x
        });
        assert_eq!(serial, wide);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch 2x3 · 2x2")]
    fn matmul_dimension_mismatch_names_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_transposed shape mismatch 2x3 · (4x2)ᵀ")]
    fn matmul_transposed_dimension_mismatch_names_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul_transposed(&b);
    }

    #[test]
    #[should_panic(expected = "transpose_matmul shape mismatch (2x3)ᵀ · 4x2")]
    fn transpose_matmul_dimension_mismatch_names_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.transpose_matmul(&b);
    }

    #[test]
    #[should_panic(expected = "add_broadcast shape mismatch")]
    fn add_broadcast_dimension_mismatch_panics() {
        let mut a = Matrix::zeros(2, 3);
        a.add_broadcast(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "matmul output shape mismatch")]
    fn matmul_into_rejects_wrong_output_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 3);
        a.matmul_into(&b, &mut out);
    }
}
