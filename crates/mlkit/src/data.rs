//! Datasets, stratified splits and feature scaling.
//!
//! The paper splits its ground truth "into 80% training and 20% testing
//! datasets evenly distributed among classes" (§4.3) — i.e. a *stratified*
//! split, implemented here by [`stratified_split_indices`].

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::matrix::Matrix;

/// A supervised dataset: one feature row per sample plus a scalar target.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature matrix, one row per sample.
    pub x: Matrix,
    /// Regression targets, `y.len() == x.rows()`.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Bundles features and targets.
    ///
    /// # Panics
    ///
    /// Panics if the number of rows and targets disagree.
    pub fn new(x: Matrix, y: Vec<f64>) -> Self {
        assert_eq!(x.rows(), y.len(), "feature/target length mismatch");
        Self { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Extracts the sub-dataset at the given row indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut data = Vec::with_capacity(indices.len() * self.x.cols());
        let mut y = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.x.row(i));
            y.push(self.y[i]);
        }
        Dataset::new(Matrix::from_vec(indices.len(), self.x.cols(), data), y)
    }
}

/// The result of a train/test split, along with the chosen indices so callers
/// can slice auxiliary arrays (labels, IDs) consistently.
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Training partition.
    pub train: Dataset,
    /// Held-out test partition.
    pub test: Dataset,
    /// Source indices of the training rows.
    pub train_indices: Vec<usize>,
    /// Source indices of the test rows.
    pub test_indices: Vec<usize>,
}

/// Computes a stratified train/test split: within every stratum the requested
/// test fraction is held out (rounded down, but at least one sample is kept
/// in training whenever a stratum is non-empty).
///
/// Returns `(train_indices, test_indices)`, each sorted ascending.
///
/// # Panics
///
/// Panics if `test_fraction` is outside `[0, 1)`.
pub fn stratified_split_indices(
    strata: &[usize],
    test_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test_fraction must be in [0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let max_stratum = strata.iter().copied().max().unwrap_or(0);
    let mut by_stratum: Vec<Vec<usize>> = vec![Vec::new(); max_stratum + 1];
    for (i, &s) in strata.iter().enumerate() {
        by_stratum[s].push(i);
    }

    let mut train = Vec::new();
    let mut test = Vec::new();
    for members in &mut by_stratum {
        members.shuffle(&mut rng);
        let n_test = ((members.len() as f64) * test_fraction).floor() as usize;
        let n_test = n_test.min(members.len().saturating_sub(1));
        test.extend_from_slice(&members[..n_test]);
        train.extend_from_slice(&members[n_test..]);
    }
    train.sort_unstable();
    test.sort_unstable();
    (train, test)
}

/// Splits a [`Dataset`] stratified by the given class labels.
pub fn stratified_split(
    dataset: &Dataset,
    strata: &[usize],
    test_fraction: f64,
    seed: u64,
) -> TrainTestSplit {
    assert_eq!(dataset.len(), strata.len(), "strata length mismatch");
    let (train_indices, test_indices) = stratified_split_indices(strata, test_fraction, seed);
    TrainTestSplit {
        train: dataset.select(&train_indices),
        test: dataset.select(&test_indices),
        train_indices,
        test_indices,
    }
}

/// Per-column standardisation to zero mean and unit variance.
///
/// Columns with (near-)zero variance are passed through unchanged so constant
/// features do not blow up to NaN.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Learns column means and standard deviations from the data.
    pub fn fit(x: &Matrix) -> Self {
        let means = x.column_means();
        let mut stds = vec![0.0; x.cols()];
        if x.rows() > 0 {
            for r in 0..x.rows() {
                let row = x.row(r);
                for (c, &v) in row.iter().enumerate() {
                    let d = v - means[c];
                    stds[c] += d * d;
                }
            }
            for s in &mut stds {
                *s = (*s / x.rows() as f64).sqrt();
            }
        }
        Self { means, stds }
    }

    /// Applies the learned transform to a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "column count mismatch");
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = self.scale_value(c, *v);
            }
        }
        out
    }

    fn scale_value(&self, col: usize, v: f64) -> f64 {
        let s = self.stds[col];
        if s > 1e-12 {
            (v - self.means[col]) / s
        } else {
            v - self.means[col]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0], &[4.0, 40.0]]);
        Dataset::new(x, vec![1.0, 2.0, 3.0, 4.0])
    }

    #[test]
    fn select_preserves_rows() {
        let d = toy();
        let s = d.select(&[0, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.x.row(0), &[1.0, 10.0]);
        assert_eq!(s.x.row(1), &[4.0, 40.0]);
        assert_eq!(s.y, vec![1.0, 4.0]);
    }

    #[test]
    fn stratified_split_respects_fraction_per_stratum() {
        // 40 samples of class 0, 10 of class 1.
        let strata: Vec<usize> = (0..50).map(|i| usize::from(i >= 40)).collect();
        let (train, test) = stratified_split_indices(&strata, 0.2, 7);
        assert_eq!(train.len() + test.len(), 50);
        let test_c1 = test.iter().filter(|&&i| strata[i] == 1).count();
        let test_c0 = test.len() - test_c1;
        assert_eq!(test_c0, 8, "20% of 40");
        assert_eq!(test_c1, 2, "20% of 10");
    }

    #[test]
    fn stratified_split_no_overlap_and_deterministic() {
        let strata: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let (tr1, te1) = stratified_split_indices(&strata, 0.25, 99);
        let (tr2, te2) = stratified_split_indices(&strata, 0.25, 99);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        for i in &te1 {
            assert!(!tr1.contains(i));
        }
    }

    #[test]
    fn singleton_stratum_stays_in_training() {
        let strata = vec![0, 0, 0, 1];
        let (train, test) = stratified_split_indices(&strata, 0.5, 1);
        assert!(train.contains(&3), "lone class-1 sample must train");
        assert_eq!(train.len() + test.len(), 4);
    }

    #[test]
    fn scaler_zero_mean_unit_variance() {
        let d = toy();
        let scaler = StandardScaler::fit(&d.x);
        let t = scaler.transform(&d.x);
        let means = t.column_means();
        for m in means {
            assert!(m.abs() < 1e-12);
        }
        // variance 1 in each column
        for c in 0..t.cols() {
            let var: f64 = (0..t.rows()).map(|r| t.row(r)[c].powi(2)).sum::<f64>() / 4.0;
            assert!((var - 1.0).abs() < 1e-9, "col {c} var {var}");
        }
    }

    #[test]
    fn scaler_constant_column_is_centred_not_nan() {
        let x = Matrix::from_rows(&[&[5.0], &[5.0], &[5.0]]);
        let scaler = StandardScaler::fit(&x);
        let t = scaler.transform(&x);
        assert!(t.is_finite());
        assert_eq!(t.row(0)[0], 0.0);
    }

    #[test]
    fn scaler_single_row_matrix_matches_full_transform() {
        let d = toy();
        let scaler = StandardScaler::fit(&d.x);
        let t = scaler.transform(&d.x);
        for r in 0..d.x.rows() {
            let one = scaler.transform(&Matrix::from_rows(&[d.x.row(r)]));
            assert_eq!(one.row(0), t.row(r));
        }
    }
}
