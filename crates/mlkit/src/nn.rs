//! Sequential neural networks: Dense / Conv1D layers, Adam, MSE.
//!
//! §4.3 of the paper trains two deep models to backport CVSS v3 scores:
//!
//! * a **CNN** of "four consecutive convolutional layers. The first two
//!   layers consist of 64 filters and the remaining layers consist of 128
//!   filters with a filter size of 3×3", followed by flattening, a
//!   512-neuron fully connected layer, and a single sigmoid output;
//! * a **DNN** of "four fully connected layers with size of 128, 128, 256,
//!   and 256", followed by a single sigmoid output.
//!
//! Both are "trained … over 100 epochs using mean squared error loss … and
//! Adam optimizer with a learning rate of 0.001". The feature vector is
//! one-dimensional, so the 3×3 convolution degenerates to a kernel-3 Conv1D.
//! This module implements exactly those ingredients with per-sample
//! backpropagation, deterministic under a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Logistic sigmoid, `1 / (1 + e^-x)` — the paper's output activation.
    Sigmoid,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the *output* value.
    fn derivative_from_output(self, out: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if out > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => out * (1.0 - out),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LayerKind {
    Dense { units: usize },
    Conv1d { filters: usize, kernel: usize },
}

/// One layer: parameters plus fixed input/output shapes `(channels, len)`.
#[derive(Debug, Clone, PartialEq)]
struct Layer {
    kind: LayerKind,
    activation: Activation,
    in_shape: (usize, usize),
    out_shape: (usize, usize),
    weights: Vec<f64>,
    biases: Vec<f64>,
}

impl Layer {
    fn dense(in_shape: (usize, usize), units: usize, activation: Activation) -> Self {
        let fan_in = in_shape.0 * in_shape.1;
        Self {
            kind: LayerKind::Dense { units },
            activation,
            in_shape,
            out_shape: (1, units),
            weights: vec![0.0; units * fan_in],
            biases: vec![0.0; units],
        }
    }

    fn conv1d(
        in_shape: (usize, usize),
        filters: usize,
        kernel: usize,
        activation: Activation,
    ) -> Self {
        let (c, l) = in_shape;
        assert!(
            l >= kernel,
            "conv1d kernel {kernel} longer than input length {l}"
        );
        Self {
            kind: LayerKind::Conv1d { filters, kernel },
            activation,
            in_shape,
            out_shape: (filters, l - kernel + 1),
            weights: vec![0.0; filters * c * kernel],
            biases: vec![0.0; filters],
        }
    }

    fn init(&mut self, rng: &mut StdRng) {
        let (fan_in, fan_out) = match self.kind {
            LayerKind::Dense { units } => (self.in_shape.0 * self.in_shape.1, units),
            LayerKind::Conv1d { filters, kernel } => (self.in_shape.0 * kernel, filters * kernel),
        };
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        for w in &mut self.weights {
            *w = rng.gen_range(-limit..limit);
        }
        // Biases start at zero.
    }

    fn out_size(&self) -> usize {
        self.out_shape.0 * self.out_shape.1
    }

    fn forward(&self, input: &[f64], output: &mut Vec<f64>) {
        output.clear();
        match self.kind {
            LayerKind::Dense { units } => {
                let fan_in = self.in_shape.0 * self.in_shape.1;
                debug_assert_eq!(input.len(), fan_in);
                for u in 0..units {
                    let w = &self.weights[u * fan_in..(u + 1) * fan_in];
                    let mut acc = self.biases[u];
                    for (wi, xi) in w.iter().zip(input) {
                        acc += wi * xi;
                    }
                    output.push(self.activation.apply(acc));
                }
            }
            LayerKind::Conv1d { filters, kernel } => {
                let (c_in, l_in) = self.in_shape;
                let l_out = self.out_shape.1;
                debug_assert_eq!(input.len(), c_in * l_in);
                for f in 0..filters {
                    for p in 0..l_out {
                        let mut acc = self.biases[f];
                        for c in 0..c_in {
                            let w = &self.weights[(f * c_in + c) * kernel..][..kernel];
                            let x = &input[c * l_in + p..][..kernel];
                            for (wi, xi) in w.iter().zip(x) {
                                acc += wi * xi;
                            }
                        }
                        output.push(self.activation.apply(acc));
                    }
                }
            }
        }
    }

    /// Backpropagates `grad_out` (∂L/∂activated-output) through the layer.
    ///
    /// Accumulates parameter gradients into `grad_w`/`grad_b` and writes
    /// ∂L/∂input into `grad_in`.
    #[allow(clippy::too_many_arguments)]
    fn backward(
        &self,
        input: &[f64],
        output: &[f64],
        grad_out: &[f64],
        grad_w: &mut [f64],
        grad_b: &mut [f64],
        grad_in: &mut Vec<f64>,
    ) {
        grad_in.clear();
        grad_in.resize(input.len(), 0.0);
        match self.kind {
            LayerKind::Dense { units } => {
                let fan_in = input.len();
                for u in 0..units {
                    let d = grad_out[u] * self.activation.derivative_from_output(output[u]);
                    if d == 0.0 {
                        continue;
                    }
                    grad_b[u] += d;
                    let w = &self.weights[u * fan_in..(u + 1) * fan_in];
                    let gw = &mut grad_w[u * fan_in..(u + 1) * fan_in];
                    for i in 0..fan_in {
                        gw[i] += d * input[i];
                        grad_in[i] += d * w[i];
                    }
                }
            }
            LayerKind::Conv1d { filters, kernel } => {
                let (c_in, l_in) = self.in_shape;
                let l_out = self.out_shape.1;
                for f in 0..filters {
                    for p in 0..l_out {
                        let o_idx = f * l_out + p;
                        let d =
                            grad_out[o_idx] * self.activation.derivative_from_output(output[o_idx]);
                        if d == 0.0 {
                            continue;
                        }
                        grad_b[f] += d;
                        for c in 0..c_in {
                            let base_w = (f * c_in + c) * kernel;
                            let base_x = c * l_in + p;
                            for j in 0..kernel {
                                grad_w[base_w + j] += d * input[base_x + j];
                                grad_in[base_x + j] += d * self.weights[base_w + j];
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Builder for [`Network`]; shapes are checked as layers are appended.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    input: (usize, usize),
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Starts a network over a 1-D input of the given length (one channel).
    pub fn input_1d(len: usize) -> Self {
        assert!(len > 0, "input length must be positive");
        Self {
            input: (1, len),
            layers: Vec::new(),
        }
    }

    fn current_shape(&self) -> (usize, usize) {
        self.layers
            .last()
            .map(|l| l.out_shape)
            .unwrap_or(self.input)
    }

    /// Appends a 1-D convolution (`filters` output channels, width `kernel`).
    ///
    /// # Panics
    ///
    /// Panics if the kernel is longer than the current feature length.
    pub fn conv1d(mut self, filters: usize, kernel: usize, activation: Activation) -> Self {
        let shape = self.current_shape();
        self.layers
            .push(Layer::conv1d(shape, filters, kernel, activation));
        self
    }

    /// Appends a fully connected layer (flattens its input implicitly).
    pub fn dense(mut self, units: usize, activation: Activation) -> Self {
        let shape = self.current_shape();
        self.layers.push(Layer::dense(shape, units, activation));
        self
    }

    /// Initialises all weights (Glorot uniform) and returns the network.
    ///
    /// # Panics
    ///
    /// Panics if no layers were added.
    pub fn build(self, seed: u64) -> Network {
        assert!(!self.layers.is_empty(), "network has no layers");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = self.layers;
        for l in &mut layers {
            l.init(&mut rng);
        }
        Network {
            input: self.input,
            layers,
        }
    }
}

/// Training hyper-parameters (paper: Adam, lr 0.001, MSE, 100 epochs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam step size.
    pub learning_rate: f64,
    /// Adam first-moment decay.
    pub beta1: f64,
    /// Adam second-moment decay.
    pub beta2: f64,
    /// Adam numerical-stability constant.
    pub epsilon: f64,
    /// Seed for shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 32,
            learning_rate: 0.001,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            seed: 0xadab,
        }
    }
}

/// Adam state for one parameter vector.
#[derive(Debug, Clone, Default)]
struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamState {
    fn sized(n: usize) -> Self {
        Self {
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    fn update(&mut self, params: &mut [f64], grads: &[f64], cfg: &TrainConfig, t: f64) {
        let bc1 = 1.0 - cfg.beta1.powf(t);
        let bc2 = 1.0 - cfg.beta2.powf(t);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = cfg.beta1 * self.m[i] + (1.0 - cfg.beta1) * g;
            self.v[i] = cfg.beta2 * self.v[i] + (1.0 - cfg.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= cfg.learning_rate * m_hat / (v_hat.sqrt() + cfg.epsilon);
        }
    }
}

/// A feed-forward network of [`NetworkBuilder`]-assembled layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    input: (usize, usize),
    layers: Vec<Layer>,
}

impl Network {
    /// Expected input feature count.
    pub fn input_len(&self) -> usize {
        self.input.0 * self.input.1
    }

    /// Output dimension of the final layer.
    pub fn output_len(&self) -> usize {
        self.layers.last().map(Layer::out_size).unwrap_or(0)
    }

    /// Total trainable parameter count.
    pub fn num_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.len() + l.biases.len())
            .sum()
    }

    /// Runs a forward pass, returning the output activations.
    ///
    /// # Panics
    ///
    /// Panics if the input length is wrong.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.input_len(), "input length mismatch");
        let mut cur = input.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers {
            layer.forward(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Predicts the scalar output for one sample (first output unit).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.forward(row)[0]
    }

    /// Predicts the scalar output for every row of a matrix.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }

    /// Trains with minibatch Adam on the MSE loss; returns per-epoch mean
    /// training loss.
    ///
    /// Targets are rows of `y` (use a 1-column matrix for scalar
    /// regression).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the network or the dataset is empty.
    pub fn fit(&mut self, x: &Matrix, y: &Matrix, cfg: &TrainConfig) -> Vec<f64> {
        assert_eq!(x.rows(), y.rows(), "sample count mismatch");
        assert!(x.rows() > 0, "empty dataset");
        assert_eq!(x.cols(), self.input_len(), "input width mismatch");
        assert_eq!(y.cols(), self.output_len(), "output width mismatch");

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = x.rows();
        let n_layers = self.layers.len();

        let mut adam_w: Vec<AdamState> = self
            .layers
            .iter()
            .map(|l| AdamState::sized(l.weights.len()))
            .collect();
        let mut adam_b: Vec<AdamState> = self
            .layers
            .iter()
            .map(|l| AdamState::sized(l.biases.len()))
            .collect();

        let mut grad_w: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.weights.len()])
            .collect();
        let mut grad_b: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.biases.len()])
            .collect();

        // Per-layer activation caches for one sample.
        let mut acts: Vec<Vec<f64>> = vec![Vec::new(); n_layers + 1];
        let mut grad_cur = Vec::new();
        let mut grad_next = Vec::new();

        let mut order: Vec<usize> = (0..n).collect();
        let mut step = 0.0f64;
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);

        for _ in 0..cfg.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            for batch in order.chunks(cfg.batch_size.max(1)) {
                for g in &mut grad_w {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                for g in &mut grad_b {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                let scale = 1.0 / batch.len() as f64;
                for &s in batch {
                    // Forward with caches.
                    acts[0].clear();
                    acts[0].extend_from_slice(x.row(s));
                    for (li, layer) in self.layers.iter().enumerate() {
                        let (head, tail) = acts.split_at_mut(li + 1);
                        layer.forward(&head[li], &mut tail[0]);
                    }
                    // MSE gradient at the output.
                    let out = &acts[n_layers];
                    let target = y.row(s);
                    grad_cur.clear();
                    for (o, t) in out.iter().zip(target) {
                        let e = o - t;
                        epoch_loss += e * e * scale;
                        grad_cur.push(2.0 * e * scale);
                    }
                    // Backward.
                    for li in (0..n_layers).rev() {
                        self.layers[li].backward(
                            &acts[li],
                            &acts[li + 1],
                            &grad_cur,
                            &mut grad_w[li],
                            &mut grad_b[li],
                            &mut grad_next,
                        );
                        std::mem::swap(&mut grad_cur, &mut grad_next);
                    }
                }
                step += 1.0;
                for (li, layer) in self.layers.iter_mut().enumerate() {
                    adam_w[li].update(&mut layer.weights, &grad_w[li], cfg, step);
                    adam_b[li].update(&mut layer.biases, &grad_b[li], cfg, step);
                }
            }
            epoch_losses.push(epoch_loss / (n as f64 / cfg.batch_size.max(1) as f64).max(1.0));
        }
        epoch_losses
    }

    /// Convenience wrapper for scalar targets.
    pub fn fit_scalar(&mut self, x: &Matrix, y: &[f64], cfg: &TrainConfig) -> Vec<f64> {
        let y_mat = Matrix::from_vec(y.len(), 1, y.to_vec());
        self.fit(x, &y_mat, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_propagate_through_builder() {
        let net = NetworkBuilder::input_1d(13)
            .conv1d(4, 3, Activation::Relu)
            .conv1d(8, 3, Activation::Relu)
            .dense(16, Activation::Relu)
            .dense(1, Activation::Sigmoid)
            .build(1);
        assert_eq!(net.input_len(), 13);
        assert_eq!(net.output_len(), 1);
        // conv1: 4*(1*3)+4; conv2: 8*(4*3)+8; dense: 16*(8*9)+16; out: 1*16+1
        assert_eq!(net.num_parameters(), 16 + 104 + 1168 + 17);
    }

    #[test]
    fn forward_is_deterministic() {
        let net = NetworkBuilder::input_1d(5)
            .dense(8, Activation::Relu)
            .dense(1, Activation::Sigmoid)
            .build(42);
        let a = net.forward(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        let b = net.forward(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        assert_eq!(a, b);
        assert!(a[0] > 0.0 && a[0] < 1.0, "sigmoid output in (0,1)");
    }

    #[test]
    fn learns_xor_with_dense_net() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = [0.0, 1.0, 1.0, 0.0];
        let mut net = NetworkBuilder::input_1d(2)
            .dense(8, Activation::Relu)
            .dense(1, Activation::Sigmoid)
            .build(3);
        net.fit_scalar(
            &x,
            &y,
            &TrainConfig {
                epochs: 800,
                batch_size: 4,
                learning_rate: 0.01,
                ..TrainConfig::default()
            },
        );
        for (i, &target) in y.iter().enumerate() {
            let p = net.predict_row(x.row(i));
            assert!(
                (p - target).abs() < 0.25,
                "sample {i}: predicted {p}, want {target}"
            );
        }
    }

    #[test]
    fn conv_net_learns_simple_function() {
        // Target: mean of the 6 inputs (a linear function a conv can express).
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..64 {
            let row: Vec<f64> = (0..6)
                .map(|j| ((i * 7 + j * 13) % 10) as f64 / 10.0)
                .collect();
            y.push(row.iter().sum::<f64>() / 6.0);
            rows.push(row);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut net = NetworkBuilder::input_1d(6)
            .conv1d(4, 3, Activation::Relu)
            .dense(8, Activation::Relu)
            .dense(1, Activation::Linear)
            .build(9);
        net.fit_scalar(
            &x,
            &y,
            &TrainConfig {
                epochs: 300,
                batch_size: 16,
                learning_rate: 0.01,
                ..TrainConfig::default()
            },
        );
        let pred = net.predict(&x);
        let ae = crate::metrics::average_error(&y, &pred);
        assert!(ae < 0.05, "average error {ae}");
    }

    #[test]
    fn training_loss_decreases() {
        let x = Matrix::from_rows(&[&[0.0], &[0.25], &[0.5], &[0.75], &[1.0]]);
        let y = [0.0, 0.5, 1.0, 1.5, 2.0];
        let mut net = NetworkBuilder::input_1d(1)
            .dense(4, Activation::Relu)
            .dense(1, Activation::Linear)
            .build(5);
        let losses = net.fit_scalar(
            &x,
            &y,
            &TrainConfig {
                epochs: 200,
                batch_size: 5,
                learning_rate: 0.01,
                ..TrainConfig::default()
            },
        );
        assert!(losses.last().unwrap() < &(losses[0] * 0.5));
    }

    /// Numerical gradient check on a tiny conv+dense network.
    #[test]
    fn analytic_gradients_match_numerical() {
        let x = Matrix::from_rows(&[&[0.3, -0.2, 0.8, 0.1]]);
        let y = Matrix::from_vec(1, 1, vec![0.7]);
        let build = || {
            NetworkBuilder::input_1d(4)
                .conv1d(2, 3, Activation::Sigmoid)
                .dense(3, Activation::Sigmoid)
                .dense(1, Activation::Linear)
                .build(17)
        };

        // Analytic gradients: replicate one backward pass by hand via fit
        // machinery — instead run a single Adam-free finite-difference probe.
        let loss_of = |net: &Network| {
            let o = net.forward(x.row(0));
            (o[0] - y.row(0)[0]).powi(2)
        };

        let net = build();
        // Collect analytic grads with a manual forward/backward.
        let mut acts: Vec<Vec<f64>> = vec![Vec::new(); net.layers.len() + 1];
        acts[0] = x.row(0).to_vec();
        for (li, layer) in net.layers.iter().enumerate() {
            let (head, tail) = acts.split_at_mut(li + 1);
            layer.forward(&head[li], &mut tail[0]);
        }
        let mut grad_w: Vec<Vec<f64>> = net
            .layers
            .iter()
            .map(|l| vec![0.0; l.weights.len()])
            .collect();
        let mut grad_b: Vec<Vec<f64>> = net
            .layers
            .iter()
            .map(|l| vec![0.0; l.biases.len()])
            .collect();
        let mut grad_cur = vec![2.0 * (acts[net.layers.len()][0] - y.row(0)[0])];
        let mut grad_next = Vec::new();
        for li in (0..net.layers.len()).rev() {
            net.layers[li].backward(
                &acts[li],
                &acts[li + 1],
                &grad_cur,
                &mut grad_w[li],
                &mut grad_b[li],
                &mut grad_next,
            );
            std::mem::swap(&mut grad_cur, &mut grad_next);
        }

        // Compare against central differences for a sample of weights.
        let eps = 1e-6;
        for li in 0..net.layers.len() {
            for wi in (0..net.layers[li].weights.len()).step_by(3) {
                let mut plus = net.clone();
                plus.layers[li].weights[wi] += eps;
                let mut minus = net.clone();
                minus.layers[li].weights[wi] -= eps;
                let num = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
                let ana = grad_w[li][wi];
                assert!(
                    (num - ana).abs() < 1e-5 * (1.0 + num.abs().max(ana.abs())),
                    "layer {li} w{wi}: numerical {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn wrong_input_length_panics() {
        let net = NetworkBuilder::input_1d(3)
            .dense(1, Activation::Linear)
            .build(0);
        net.forward(&[1.0]);
    }
}
