//! Sequential neural networks: Dense / Conv1D layers, Adam, MSE — in
//! **batched matrix form**.
//!
//! §4.3 of the paper trains two deep models to backport CVSS v3 scores:
//!
//! * a **CNN** of "four consecutive convolutional layers. The first two
//!   layers consist of 64 filters and the remaining layers consist of 128
//!   filters with a filter size of 3×3", followed by flattening, a
//!   512-neuron fully connected layer, and a single sigmoid output;
//! * a **DNN** of "four fully connected layers with size of 128, 128, 256,
//!   and 256", followed by a single sigmoid output.
//!
//! Both are "trained … over 100 epochs using mean squared error loss … and
//! Adam optimizer with a learning rate of 0.001". The feature vector is
//! one-dimensional, so the 3×3 convolution degenerates to a kernel-3 Conv1D.
//!
//! Training works on whole minibatches at once: a dense layer's forward pass
//! is one `X · Wᵀ` [`Matrix::matmul_transposed`] plus a bias broadcast, its
//! backward pass one `Dᵀ · X` [`Matrix::transpose_matmul`] for the weight
//! gradient and one `D · W` [`Matrix::matmul`] for the input gradient — all
//! running on the blocked, `minipar`-sharded kernels of [`crate::matrix`].
//! Activations and deltas live in preallocated [`Matrix`] workspaces that
//! are reused across every batch of an epoch. Weight-gradient reductions
//! accumulate the batch dimension in ascending sample order, so training is
//! deterministic under a seed and bit-identical at any `NVD_JOBS` setting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Logistic sigmoid, `1 / (1 + e^-x)` — the paper's output activation.
    Sigmoid,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the *output* value.
    fn derivative_from_output(self, out: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if out > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => out * (1.0 - out),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LayerKind {
    Dense { units: usize },
    Conv1d { filters: usize, kernel: usize },
}

/// One layer: parameters plus fixed input/output shapes `(channels, len)`.
///
/// Weights are a [`Matrix`]: `units × fan_in` for dense layers (so the
/// batched forward pass is a single `matmul_transposed`), and
/// `filters × (c_in · kernel)` for convolutions (row `f` holds filter `f`'s
/// taps for every input channel).
#[derive(Debug, Clone, PartialEq)]
struct Layer {
    kind: LayerKind,
    activation: Activation,
    in_shape: (usize, usize),
    out_shape: (usize, usize),
    weights: Matrix,
    biases: Vec<f64>,
}

impl Layer {
    fn dense(in_shape: (usize, usize), units: usize, activation: Activation) -> Self {
        let fan_in = in_shape.0 * in_shape.1;
        Self {
            kind: LayerKind::Dense { units },
            activation,
            in_shape,
            out_shape: (1, units),
            weights: Matrix::zeros(units, fan_in),
            biases: vec![0.0; units],
        }
    }

    fn conv1d(
        in_shape: (usize, usize),
        filters: usize,
        kernel: usize,
        activation: Activation,
    ) -> Self {
        let (c, l) = in_shape;
        assert!(
            l >= kernel,
            "conv1d kernel {kernel} longer than input length {l}"
        );
        Self {
            kind: LayerKind::Conv1d { filters, kernel },
            activation,
            in_shape,
            out_shape: (filters, l - kernel + 1),
            weights: Matrix::zeros(filters, c * kernel),
            biases: vec![0.0; filters],
        }
    }

    fn init(&mut self, rng: &mut StdRng) {
        let (fan_in, fan_out) = match self.kind {
            LayerKind::Dense { units } => (self.in_shape.0 * self.in_shape.1, units),
            LayerKind::Conv1d { filters, kernel } => (self.in_shape.0 * kernel, filters * kernel),
        };
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        for w in self.weights.as_mut_slice() {
            *w = rng.gen_range(-limit..limit);
        }
        // Biases start at zero.
    }

    fn out_size(&self) -> usize {
        self.out_shape.0 * self.out_shape.1
    }

    /// Forward pass over a whole minibatch: `input` is `batch × in_size`,
    /// `output` (overwritten) is `batch × out_size`.
    fn forward_batch(&self, input: &Matrix, output: &mut Matrix) {
        match self.kind {
            LayerKind::Dense { .. } => {
                input.matmul_transposed_into(&self.weights, output);
                output.add_broadcast(&self.biases);
                let act = self.activation;
                output.map_in_place(|x| act.apply(x));
            }
            LayerKind::Conv1d { .. } => {
                // Rows are independent samples; the row-band sharding makes
                // this the conv analogue of the dense matmul path.
                output.par_rows_mut(|s, out_row| {
                    self.conv_forward_row(input.row(s), out_row);
                });
            }
        }
    }

    /// One sample's convolution forward pass on raw slices.
    fn conv_forward_row(&self, input: &[f64], output: &mut [f64]) {
        let LayerKind::Conv1d { filters, kernel } = self.kind else {
            unreachable!("conv kernel on a dense layer");
        };
        let (c_in, l_in) = self.in_shape;
        let l_out = self.out_shape.1;
        debug_assert_eq!(input.len(), c_in * l_in);
        for f in 0..filters {
            let w_row = self.weights.row(f);
            for p in 0..l_out {
                let mut acc = self.biases[f];
                for c in 0..c_in {
                    let w = &w_row[c * kernel..(c + 1) * kernel];
                    let x = &input[c * l_in + p..][..kernel];
                    for (wi, xi) in w.iter().zip(x) {
                        acc += wi * xi;
                    }
                }
                output[f * l_out + p] = self.activation.apply(acc);
            }
        }
    }

    /// Backpropagates a whole minibatch.
    ///
    /// On entry `delta` holds ∂L/∂(activated output); this routine folds the
    /// activation derivative in place, then overwrites `grad_w`/`grad_b`
    /// with the batch-summed parameter gradients and `grad_in` with
    /// ∂L/∂input. The weight-gradient reduction runs over samples in
    /// ascending order (one `transpose_matmul` for dense layers), keeping
    /// the float stream independent of the job count.
    fn backward_batch(
        &self,
        input: &Matrix,
        output: &Matrix,
        delta: &mut Matrix,
        grad_in: &mut Matrix,
        grad_w: &mut Matrix,
        grad_b: &mut [f64],
    ) {
        // δ ← δ ⊙ act'(out), elementwise per row.
        let act = self.activation;
        delta.par_rows_mut(|s, d_row| {
            for (d, &o) in d_row.iter_mut().zip(output.row(s)) {
                *d *= act.derivative_from_output(o);
            }
        });
        match self.kind {
            LayerKind::Dense { .. } => {
                grad_b.copy_from_slice(&delta.column_sums());
                delta.transpose_matmul_into(input, grad_w);
                delta.matmul_into(&self.weights, grad_in);
            }
            LayerKind::Conv1d { filters, kernel } => {
                let (c_in, l_in) = self.in_shape;
                let l_out = self.out_shape.1;
                grad_w.as_mut_slice().fill(0.0);
                grad_b.fill(0.0);
                // Parameter gradients accumulate serially in ascending
                // sample order (the conv layers are tiny next to the dense
                // ones); input gradients are per-row.
                for s in 0..delta.rows() {
                    let d_row = delta.row(s);
                    let x_row = input.row(s);
                    let gi_row = grad_in.row_mut(s);
                    gi_row.fill(0.0);
                    for f in 0..filters {
                        let w_row = self.weights.row(f);
                        let gw_row = grad_w.row_mut(f);
                        for p in 0..l_out {
                            let d = d_row[f * l_out + p];
                            if d == 0.0 {
                                continue;
                            }
                            grad_b[f] += d;
                            for c in 0..c_in {
                                let base_w = c * kernel;
                                let base_x = c * l_in + p;
                                for j in 0..kernel {
                                    gw_row[base_w + j] += d * x_row[base_x + j];
                                    gi_row[base_x + j] += d * w_row[base_w + j];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Builder for [`Network`]; shapes are checked as layers are appended.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    input: (usize, usize),
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Starts a network over a 1-D input of the given length (one channel).
    pub fn input_1d(len: usize) -> Self {
        assert!(len > 0, "input length must be positive");
        Self {
            input: (1, len),
            layers: Vec::new(),
        }
    }

    fn current_shape(&self) -> (usize, usize) {
        self.layers
            .last()
            .map(|l| l.out_shape)
            .unwrap_or(self.input)
    }

    /// Appends a 1-D convolution (`filters` output channels, width `kernel`).
    ///
    /// # Panics
    ///
    /// Panics if the kernel is longer than the current feature length.
    pub fn conv1d(mut self, filters: usize, kernel: usize, activation: Activation) -> Self {
        let shape = self.current_shape();
        self.layers
            .push(Layer::conv1d(shape, filters, kernel, activation));
        self
    }

    /// Appends a fully connected layer (flattens its input implicitly).
    pub fn dense(mut self, units: usize, activation: Activation) -> Self {
        let shape = self.current_shape();
        self.layers.push(Layer::dense(shape, units, activation));
        self
    }

    /// Initialises all weights (Glorot uniform) and returns the network.
    ///
    /// # Panics
    ///
    /// Panics if no layers were added.
    pub fn build(self, seed: u64) -> Network {
        assert!(!self.layers.is_empty(), "network has no layers");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = self.layers;
        for l in &mut layers {
            l.init(&mut rng);
        }
        Network {
            input: self.input,
            layers,
        }
    }
}

/// Training hyper-parameters (paper: Adam, lr 0.001, MSE, 100 epochs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam step size.
    pub learning_rate: f64,
    /// Adam first-moment decay.
    pub beta1: f64,
    /// Adam second-moment decay.
    pub beta2: f64,
    /// Adam numerical-stability constant.
    pub epsilon: f64,
    /// Seed for shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 32,
            learning_rate: 0.001,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            seed: 0xadab,
        }
    }
}

/// Adam state for one parameter vector.
#[derive(Debug, Clone, Default)]
struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamState {
    fn sized(n: usize) -> Self {
        Self {
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    fn update(&mut self, params: &mut [f64], grads: &[f64], cfg: &TrainConfig, t: f64) {
        let bc1 = 1.0 - cfg.beta1.powf(t);
        let bc2 = 1.0 - cfg.beta2.powf(t);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = cfg.beta1 * self.m[i] + (1.0 - cfg.beta1) * g;
            self.v[i] = cfg.beta2 * self.v[i] + (1.0 - cfg.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= cfg.learning_rate * m_hat / (v_hat.sqrt() + cfg.epsilon);
        }
    }
}

/// Preallocated per-batch matrices: `acts[0]` is the gathered input batch,
/// `acts[i + 1]` the activations of layer `i`; `deltas` mirrors `acts`
/// (`deltas[i + 1]` holds ∂L/∂(activated output of layer `i`), `deltas[0]`
/// receives the unused input gradient). One workspace exists per distinct
/// batch length — at most two per fit (full batches plus the tail).
#[derive(Debug)]
struct Workspace {
    acts: Vec<Matrix>,
    deltas: Vec<Matrix>,
}

impl Workspace {
    fn new(layers: &[Layer], input_len: usize, batch: usize) -> Self {
        let mut sizes = vec![input_len];
        sizes.extend(layers.iter().map(Layer::out_size));
        Self {
            acts: sizes.iter().map(|&s| Matrix::zeros(batch, s)).collect(),
            deltas: sizes.iter().map(|&s| Matrix::zeros(batch, s)).collect(),
        }
    }
}

/// A feed-forward network of [`NetworkBuilder`]-assembled layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    input: (usize, usize),
    layers: Vec<Layer>,
}

/// Rows per inference chunk in [`Network::forward`] — bounds workspace
/// memory when predicting over very large populations (the ≈74K-CVE
/// backport sweep) while keeping each chunk large enough for the matrix
/// kernels to amortise.
const PREDICT_CHUNK: usize = 512;

impl Network {
    /// Expected input feature count.
    pub fn input_len(&self) -> usize {
        self.input.0 * self.input.1
    }

    /// Output dimension of the final layer.
    pub fn output_len(&self) -> usize {
        self.layers.last().map(Layer::out_size).unwrap_or(0)
    }

    /// Total trainable parameter count.
    pub fn num_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.as_slice().len() + l.biases.len())
            .sum()
    }

    /// Runs the batched forward pass over every row of `x`, returning the
    /// `x.rows() × output_len()` activation matrix. Large inputs are
    /// processed in [`PREDICT_CHUNK`]-row chunks so workspace memory stays
    /// bounded; chunking never changes values (rows are independent).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_len()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_len(), "input width mismatch");
        let out_len = self.output_len();
        let mut out = Matrix::zeros(x.rows(), out_len);
        // Activation matrices only (inference needs no deltas), allocated
        // once per distinct chunk length: the full-size set is reused for
        // every chunk but the possibly-shorter tail.
        let acts_for = |len: usize| -> Vec<Matrix> {
            let mut sizes = vec![self.input_len()];
            sizes.extend(self.layers.iter().map(Layer::out_size));
            sizes.into_iter().map(|s| Matrix::zeros(len, s)).collect()
        };
        let mut acts_full: Option<Vec<Matrix>> = None;
        let mut start = 0;
        while start < x.rows() {
            let len = PREDICT_CHUNK.min(x.rows() - start);
            let mut acts_tail;
            let acts = if len == PREDICT_CHUNK.min(x.rows()) {
                acts_full.get_or_insert_with(|| acts_for(len))
            } else {
                acts_tail = acts_for(len);
                &mut acts_tail
            };
            for bi in 0..len {
                acts[0].row_mut(bi).copy_from_slice(x.row(start + bi));
            }
            for (li, layer) in self.layers.iter().enumerate() {
                let (head, tail) = acts.split_at_mut(li + 1);
                layer.forward_batch(&head[li], &mut tail[0]);
            }
            for bi in 0..len {
                out.row_mut(start + bi)
                    .copy_from_slice(acts[self.layers.len()].row(bi));
            }
            start += len;
        }
        out
    }

    /// Predicts the scalar output (first output unit) for every row of a
    /// matrix.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        let out = self.forward(x);
        (0..out.rows()).map(|r| out.row(r)[0]).collect()
    }

    /// Trains with minibatch Adam on the MSE loss; returns per-epoch mean
    /// training loss.
    ///
    /// Targets are rows of `y` (use a 1-column matrix for scalar
    /// regression).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the network or the dataset is empty.
    pub fn fit(&mut self, x: &Matrix, y: &Matrix, cfg: &TrainConfig) -> Vec<f64> {
        assert_eq!(x.rows(), y.rows(), "sample count mismatch");
        assert!(x.rows() > 0, "empty dataset");
        assert_eq!(x.cols(), self.input_len(), "input width mismatch");
        assert_eq!(y.cols(), self.output_len(), "output width mismatch");

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = x.rows();
        let n_layers = self.layers.len();

        let mut adam_w: Vec<AdamState> = self
            .layers
            .iter()
            .map(|l| AdamState::sized(l.weights.as_slice().len()))
            .collect();
        let mut adam_b: Vec<AdamState> = self
            .layers
            .iter()
            .map(|l| AdamState::sized(l.biases.len()))
            .collect();

        let mut grad_w: Vec<Matrix> = self
            .layers
            .iter()
            .map(|l| Matrix::zeros(l.weights.rows(), l.weights.cols()))
            .collect();
        let mut grad_b: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.biases.len()])
            .collect();

        // Preallocated activation/delta workspaces: one for full batches,
        // one (lazily sized) for the shorter tail batch.
        let full = cfg.batch_size.max(1).min(n);
        let mut ws_full = Workspace::new(&self.layers, self.input_len(), full);
        let tail = n % full;
        let mut ws_tail = (tail != 0).then(|| Workspace::new(&self.layers, self.input_len(), tail));

        let mut order: Vec<usize> = (0..n).collect();
        let mut step = 0.0f64;
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);

        for _ in 0..cfg.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            for batch in order.chunks(full) {
                let ws = if batch.len() == full {
                    &mut ws_full
                } else {
                    ws_tail.as_mut().expect("tail workspace sized at entry")
                };
                // Gather the shuffled batch into the input workspace.
                for (bi, &s) in batch.iter().enumerate() {
                    ws.acts[0].row_mut(bi).copy_from_slice(x.row(s));
                }
                // Forward through every layer.
                for (li, layer) in self.layers.iter().enumerate() {
                    let (head, tail) = ws.acts.split_at_mut(li + 1);
                    layer.forward_batch(&head[li], &mut tail[0]);
                }
                // MSE gradient at the output (ascending batch order).
                let scale = 1.0 / batch.len() as f64;
                let out_act = &ws.acts[n_layers];
                let delta_out = &mut ws.deltas[n_layers];
                for (bi, &s) in batch.iter().enumerate() {
                    let d_row = delta_out.row_mut(bi);
                    for ((d, &o), &t) in d_row.iter_mut().zip(out_act.row(bi)).zip(y.row(s)) {
                        let e = o - t;
                        epoch_loss += e * e * scale;
                        *d = 2.0 * e * scale;
                    }
                }
                // Backward through every layer.
                for li in (0..n_layers).rev() {
                    let (d_head, d_tail) = ws.deltas.split_at_mut(li + 1);
                    self.layers[li].backward_batch(
                        &ws.acts[li],
                        &ws.acts[li + 1],
                        &mut d_tail[0],
                        &mut d_head[li],
                        &mut grad_w[li],
                        &mut grad_b[li],
                    );
                }
                step += 1.0;
                for (li, layer) in self.layers.iter_mut().enumerate() {
                    adam_w[li].update(
                        layer.weights.as_mut_slice(),
                        grad_w[li].as_slice(),
                        cfg,
                        step,
                    );
                    adam_b[li].update(&mut layer.biases, &grad_b[li], cfg, step);
                }
            }
            epoch_losses.push(epoch_loss / (n as f64 / full as f64).max(1.0));
        }
        epoch_losses
    }

    /// Convenience wrapper for scalar targets.
    pub fn fit_scalar(&mut self, x: &Matrix, y: &[f64], cfg: &TrainConfig) -> Vec<f64> {
        let y_mat = Matrix::from_vec(y.len(), 1, y.to_vec());
        self.fit(x, &y_mat, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_propagate_through_builder() {
        let net = NetworkBuilder::input_1d(13)
            .conv1d(4, 3, Activation::Relu)
            .conv1d(8, 3, Activation::Relu)
            .dense(16, Activation::Relu)
            .dense(1, Activation::Sigmoid)
            .build(1);
        assert_eq!(net.input_len(), 13);
        assert_eq!(net.output_len(), 1);
        // conv1: 4*(1*3)+4; conv2: 8*(4*3)+8; dense: 16*(8*9)+16; out: 1*16+1
        assert_eq!(net.num_parameters(), 16 + 104 + 1168 + 17);
    }

    #[test]
    fn forward_is_deterministic_and_job_count_invariant() {
        let net = NetworkBuilder::input_1d(5)
            .dense(8, Activation::Relu)
            .dense(1, Activation::Sigmoid)
            .build(42);
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3, 0.4, 0.5]]);
        let a = net.forward(&x);
        let b = net.forward(&x);
        assert_eq!(a, b);
        let serial = minipar::with_jobs(1, || net.forward(&x));
        let wide = minipar::with_jobs(4, || net.forward(&x));
        assert_eq!(serial, wide, "forward diverged across job counts");
        assert!(
            a[(0, 0)] > 0.0 && a[(0, 0)] < 1.0,
            "sigmoid output in (0,1)"
        );
    }

    #[test]
    fn training_is_bit_identical_across_job_counts() {
        let (x, y) = batch_dataset();
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 16,
            ..TrainConfig::default()
        };
        let run = || {
            let mut net = NetworkBuilder::input_1d(6)
                .conv1d(4, 3, Activation::Relu)
                .dense(8, Activation::Relu)
                .dense(1, Activation::Linear)
                .build(9);
            let losses = net.fit_scalar(&x, &y, &cfg);
            (losses, net.predict(&x))
        };
        let serial = minipar::with_jobs(1, run);
        let wide = minipar::with_jobs(4, run);
        assert_eq!(serial.0, wide.0, "losses diverged across job counts");
        assert_eq!(serial.1, wide.1, "predictions diverged across job counts");
    }

    #[test]
    fn learns_xor_with_dense_net() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = [0.0, 1.0, 1.0, 0.0];
        let mut net = NetworkBuilder::input_1d(2)
            .dense(8, Activation::Relu)
            .dense(1, Activation::Sigmoid)
            .build(3);
        net.fit_scalar(
            &x,
            &y,
            &TrainConfig {
                epochs: 800,
                batch_size: 4,
                learning_rate: 0.01,
                ..TrainConfig::default()
            },
        );
        let pred = net.predict(&x);
        for (i, &target) in y.iter().enumerate() {
            assert!(
                (pred[i] - target).abs() < 0.25,
                "sample {i}: predicted {}, want {target}",
                pred[i]
            );
        }
    }

    fn batch_dataset() -> (Matrix, Vec<f64>) {
        // Target: mean of the 6 inputs (a linear function a conv can express).
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..64 {
            let row: Vec<f64> = (0..6)
                .map(|j| ((i * 7 + j * 13) % 10) as f64 / 10.0)
                .collect();
            y.push(row.iter().sum::<f64>() / 6.0);
            rows.push(row);
        }
        (Matrix::from_vectors(&rows), y)
    }

    #[test]
    fn conv_net_learns_simple_function() {
        let (x, y) = batch_dataset();
        let mut net = NetworkBuilder::input_1d(6)
            .conv1d(4, 3, Activation::Relu)
            .dense(8, Activation::Relu)
            .dense(1, Activation::Linear)
            .build(9);
        net.fit_scalar(
            &x,
            &y,
            &TrainConfig {
                epochs: 300,
                batch_size: 16,
                learning_rate: 0.01,
                ..TrainConfig::default()
            },
        );
        let pred = net.predict(&x);
        let ae = crate::metrics::average_error(&y, &pred);
        assert!(ae < 0.05, "average error {ae}");
    }

    #[test]
    fn training_loss_decreases() {
        let x = Matrix::from_rows(&[&[0.0], &[0.25], &[0.5], &[0.75], &[1.0]]);
        let y = [0.0, 0.5, 1.0, 1.5, 2.0];
        let mut net = NetworkBuilder::input_1d(1)
            .dense(4, Activation::Relu)
            .dense(1, Activation::Linear)
            .build(5);
        let losses = net.fit_scalar(
            &x,
            &y,
            &TrainConfig {
                epochs: 200,
                batch_size: 5,
                learning_rate: 0.01,
                ..TrainConfig::default()
            },
        );
        assert!(losses.last().unwrap() < &(losses[0] * 0.5));
    }

    /// Numerical gradient check on a tiny conv+dense network, through the
    /// batched backward path (a 2-sample batch exercises the batch-summed
    /// reductions).
    #[test]
    fn analytic_gradients_match_numerical() {
        let x = Matrix::from_rows(&[&[0.3, -0.2, 0.8, 0.1], &[-0.5, 0.4, 0.2, 0.9]]);
        let y = Matrix::from_vec(2, 1, vec![0.7, 0.2]);
        let build = || {
            NetworkBuilder::input_1d(4)
                .conv1d(2, 3, Activation::Sigmoid)
                .dense(3, Activation::Sigmoid)
                .dense(1, Activation::Linear)
                .build(17)
        };

        // Batch-mean squared error, the loss `fit` differentiates.
        let loss_of = |net: &Network| {
            let o = net.forward(&x);
            (0..x.rows())
                .map(|s| (o[(s, 0)] - y[(s, 0)]).powi(2) / x.rows() as f64)
                .sum::<f64>()
        };

        let net = build();
        let n_layers = net.layers.len();
        let mut ws = Workspace::new(&net.layers, net.input_len(), x.rows());
        for s in 0..x.rows() {
            ws.acts[0].row_mut(s).copy_from_slice(x.row(s));
        }
        for (li, layer) in net.layers.iter().enumerate() {
            let (head, tail) = ws.acts.split_at_mut(li + 1);
            layer.forward_batch(&head[li], &mut tail[0]);
        }
        let scale = 1.0 / x.rows() as f64;
        for s in 0..x.rows() {
            ws.deltas[n_layers].row_mut(s)[0] =
                2.0 * (ws.acts[n_layers].row(s)[0] - y[(s, 0)]) * scale;
        }
        let mut grad_w: Vec<Matrix> = net
            .layers
            .iter()
            .map(|l| Matrix::zeros(l.weights.rows(), l.weights.cols()))
            .collect();
        let mut grad_b: Vec<Vec<f64>> = net
            .layers
            .iter()
            .map(|l| vec![0.0; l.biases.len()])
            .collect();
        for li in (0..n_layers).rev() {
            let (d_head, d_tail) = ws.deltas.split_at_mut(li + 1);
            net.layers[li].backward_batch(
                &ws.acts[li],
                &ws.acts[li + 1],
                &mut d_tail[0],
                &mut d_head[li],
                &mut grad_w[li],
                &mut grad_b[li],
            );
        }

        // Compare against central differences for a sample of weights.
        let eps = 1e-6;
        for li in 0..n_layers {
            for wi in (0..net.layers[li].weights.as_slice().len()).step_by(3) {
                let mut plus = net.clone();
                plus.layers[li].weights.as_mut_slice()[wi] += eps;
                let mut minus = net.clone();
                minus.layers[li].weights.as_mut_slice()[wi] -= eps;
                let num = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
                let ana = grad_w[li].as_slice()[wi];
                assert!(
                    (num - ana).abs() < 1e-5 * (1.0 + num.abs().max(ana.abs())),
                    "layer {li} w{wi}: numerical {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let net = NetworkBuilder::input_1d(3)
            .dense(1, Activation::Linear)
            .build(0);
        net.forward(&Matrix::from_rows(&[&[1.0]]));
    }
}
