//! # mlkit
//!
//! The machine-learning substrate for the `nvd-clean` workspace — the Rust
//! reproduction of *"Cleaning the NVD"* (Anwar et al., DSN 2021).
//!
//! The paper's §4.3 backports CVSS v3 severity with a zoo of models (linear
//! regression, RBF support-vector regression, a CNN and a DNN trained with
//! Adam on an MSE loss), evaluates them with average error / average error
//! rate / per-class accuracy, and visualises the feature space with PCA
//! (Fig. 5). §4.4 classifies description embeddings with k-NN. None of that
//! tooling exists offline, so this crate provides it from scratch:
//!
//! * [`matrix`] — dense row-major matrices plus the blocked,
//!   `minipar`-sharded batched kernels (`matmul`, `matmul_transposed`,
//!   `transpose_matmul`, broadcasts) every model trains on — bit-identical
//!   output at any `NVD_JOBS` setting;
//! * [`linalg`] — Cholesky solves and Jacobi symmetric eigendecomposition;
//! * [`data`] — datasets, stratified train/test splits, standard scaling;
//! * [`metrics`] — AE, AER, accuracy, confusion matrices (paper Tables 5, 7);
//! * [`linear`] — ridge linear regression via normal equations;
//! * [`svr`] — ε-insensitive SVR with an RBF kernel approximated by random
//!   Fourier features;
//! * [`knn`] — brute-force k-nearest-neighbour classification;
//! * [`nn`] — sequential neural networks (Dense / Conv1D, ReLU / Sigmoid,
//!   Adam, MSE) matching the paper's two architectures;
//! * [`pca`] — principal component analysis (paper Fig. 5).
//!
//! Everything is deterministic under a caller-supplied seed, and every
//! model exposes **batched** entry points only — training and prediction
//! take whole matrices, never one sample at a time.
//!
//! ## Example
//!
//! ```
//! use mlkit::linear::RidgeRegression;
//! use mlkit::matrix::Matrix;
//!
//! // y = 2x + 1, recovered from four noiseless points.
//! let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
//! let y = [1.0, 3.0, 5.0, 7.0];
//! let model = RidgeRegression::fit(&x, &y, 1e-9)?;
//! let probes = Matrix::from_rows(&[&[4.0], &[10.0]]);
//! let pred = model.predict(&probes);
//! assert!((pred[0] - 9.0).abs() < 1e-6);
//! assert!((pred[1] - 21.0).abs() < 1e-6);
//! # Ok::<(), mlkit::linalg::LinalgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod data;
pub mod knn;
pub mod linalg;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod nn;
pub mod pca;
pub mod svr;

pub use data::{Dataset, StandardScaler, TrainTestSplit};
pub use knn::KnnClassifier;
pub use linear::RidgeRegression;
pub use matrix::Matrix;
pub use metrics::{accuracy, average_error, average_error_rate, ConfusionMatrix};
pub use nn::{Activation, Network, NetworkBuilder, TrainConfig};
pub use pca::Pca;
pub use svr::{Svr, SvrConfig};
