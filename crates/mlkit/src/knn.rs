//! Brute-force k-nearest-neighbour classification on batched matrix
//! kernels.
//!
//! §4.4 of the paper classifies 512-d description embeddings into CWE types
//! and finds "k-NN (k = 1) provides the best results, predicting 151
//! different types with 65.60% accuracy".
//!
//! The distance sweep is one Gram product per query chunk:
//! `‖q − t‖² = ‖q‖² − 2·q·t + ‖t‖²`, with `q·t` computed by the blocked
//! parallel [`Matrix::matmul_transposed`] kernel and the norms precomputed
//! once. All three terms reduce their feature dimension in ascending order
//! with the same [`dot`] kernel, so a query identical to a stored sample
//! yields a distance of exactly `0.0` and results are bit-identical at any
//! `NVD_JOBS` setting.

use crate::matrix::{dot, Matrix};

/// Query rows per Gram-product chunk: bounds the `chunk × train` distance
/// buffer while keeping the matmul large enough to amortise. Chunking never
/// changes values — every query row is independent.
const QUERY_CHUNK: usize = 256;

/// A k-NN classifier over dense feature rows with `usize` class labels.
///
/// Prediction is majority vote among the k nearest training samples by
/// Euclidean distance; ties break towards the nearer neighbour (and then the
/// smaller label, for full determinism).
#[derive(Debug, Clone, PartialEq)]
pub struct KnnClassifier {
    k: usize,
    x: Matrix,
    /// Precomputed `‖t‖²` per training row.
    norms: Vec<f64>,
    labels: Vec<usize>,
}

impl KnnClassifier {
    /// Stores the training set and precomputes its row norms.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, the dataset is empty, or lengths mismatch.
    pub fn fit(x: Matrix, labels: Vec<usize>, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(x.rows() > 0, "empty training set");
        assert_eq!(x.rows(), labels.len(), "feature/label length mismatch");
        let norms = (0..x.rows()).map(|i| dot(x.row(i), x.row(i))).collect();
        Self {
            k,
            x,
            norms,
            labels,
        }
    }

    /// The `k` this classifier votes with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of stored training samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the training set is empty (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// For every query row: indices and squared distances of the k nearest
    /// training samples, ordered by increasing distance (then index).
    ///
    /// # Panics
    ///
    /// Panics if `queries.cols()` differs from the training width.
    pub fn kneighbors(&self, queries: &Matrix) -> Vec<Vec<(usize, f64)>> {
        assert_eq!(
            queries.cols(),
            self.x.cols(),
            "query width mismatch: {} vs trained {}",
            queries.cols(),
            self.x.cols()
        );
        let k = self.k.min(self.x.rows());
        let mut out = Vec::with_capacity(queries.rows());
        let mut start = 0;
        while start < queries.rows() {
            let len = QUERY_CHUNK.min(queries.rows() - start);
            // One flat chunk × train Gram product on the blocked kernels.
            let chunk = Matrix::from_vec(
                len,
                queries.cols(),
                queries.as_slice()[start * queries.cols()..(start + len) * queries.cols()].to_vec(),
            );
            let mut gram = chunk.matmul_transposed(&self.x);
            // In place: gram[r][i] ← ‖q_r‖² − 2·q_r·t_i + ‖t_i‖², clamped
            // at zero against negative rounding residue.
            let norms = &self.norms;
            gram.par_rows_mut(|r, row| {
                let qn = dot(chunk.row(r), chunk.row(r));
                for (d, &tn) in row.iter_mut().zip(norms) {
                    *d = (qn - 2.0 * *d + tn).max(0.0);
                }
            });
            for r in 0..len {
                let mut dists: Vec<(usize, f64)> = gram
                    .row(r)
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| (i, d))
                    .collect();
                dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
                dists.truncate(k);
                out.push(dists);
            }
            start += len;
        }
        out
    }

    /// Predicts the class of every query row by majority vote.
    pub fn predict(&self, queries: &Matrix) -> Vec<usize> {
        self.kneighbors(queries)
            .into_iter()
            .map(|neigh| {
                // Majority vote; first (nearest) occurrence wins ties.
                let mut votes: Vec<(usize, usize, usize)> = Vec::new(); // (label, count, first_rank)
                for (rank, (idx, _)) in neigh.iter().enumerate() {
                    let label = self.labels[*idx];
                    match votes.iter_mut().find(|(l, _, _)| *l == label) {
                        Some((_, c, _)) => *c += 1,
                        None => votes.push((label, 1, rank)),
                    }
                }
                votes
                    .into_iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)).then(b.0.cmp(&a.0)))
                    .map(|(l, _, _)| l)
                    .expect("non-empty neighbours")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> (Matrix, Vec<usize>) {
        // Two clusters around (0,0) and (10,10).
        let x = Matrix::from_rows(&[
            &[0.0, 0.1],
            &[0.2, -0.1],
            &[-0.1, 0.0],
            &[10.0, 10.1],
            &[9.9, 9.8],
            &[10.2, 10.0],
        ]);
        (x, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn one_nn_returns_nearest_label() {
        let (x, labels) = clusters();
        let knn = KnnClassifier::fit(x, labels, 1);
        let q = Matrix::from_rows(&[&[0.05, 0.05], &[9.0, 9.0]]);
        assert_eq!(knn.predict(&q), vec![0, 1]);
    }

    #[test]
    fn majority_vote_with_k3() {
        let (x, labels) = clusters();
        let knn = KnnClassifier::fit(x, labels, 3);
        let q = Matrix::from_rows(&[&[1.0, 1.0], &[8.0, 8.0]]);
        assert_eq!(knn.predict(&q), vec![0, 1]);
    }

    #[test]
    fn tie_breaks_towards_nearest() {
        // k=2 with one vote each: nearest neighbour should win.
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let knn = KnnClassifier::fit(x, vec![7, 3], 2);
        let q = Matrix::from_rows(&[&[0.1], &[0.9]]);
        assert_eq!(knn.predict(&q), vec![7, 3]);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let knn = KnnClassifier::fit(x, vec![0, 1], 10);
        assert_eq!(knn.kneighbors(&Matrix::from_rows(&[&[0.4]]))[0].len(), 2);
    }

    #[test]
    fn kneighbors_sorted_by_distance() {
        let (x, labels) = clusters();
        let knn = KnnClassifier::fit(x, labels, 6);
        let n = &knn.kneighbors(&Matrix::from_rows(&[&[0.0, 0.0]]))[0];
        for w in n.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn exact_training_point_is_own_neighbour() {
        // The ‖q‖² − 2·q·t + ‖t‖² identity must still yield an *exact* zero
        // for q == t: all three reductions share the same kernel and order,
        // so the cancellation is exact in floating point.
        let (x, labels) = clusters();
        let probe = Matrix::from_rows(&[x.row(3)]);
        let knn = KnnClassifier::fit(x, labels, 1);
        let n = &knn.kneighbors(&probe)[0];
        assert_eq!(n[0].0, 3);
        assert_eq!(n[0].1, 0.0);
    }

    #[test]
    fn sweep_is_job_count_invariant() {
        let (x, labels) = clusters();
        let knn = KnnClassifier::fit(x, labels, 3);
        let q = Matrix::from_rows(&[&[0.3, 0.2], &[5.0, 5.0], &[9.7, 10.3]]);
        let serial = minipar::with_jobs(1, || knn.kneighbors(&q));
        let wide = minipar::with_jobs(4, || knn.kneighbors(&q));
        assert_eq!(serial, wide, "distance sweep diverged across job counts");
    }
}
