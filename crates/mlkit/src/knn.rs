//! Brute-force k-nearest-neighbour classification.
//!
//! §4.4 of the paper classifies 512-d description embeddings into CWE types
//! and finds "k-NN (k = 1) provides the best results, predicting 151
//! different types with 65.60% accuracy".

use crate::matrix::{squared_distance, Matrix};

/// A k-NN classifier over dense feature rows with `usize` class labels.
///
/// Prediction is majority vote among the k nearest training samples by
/// Euclidean distance; ties break towards the nearer neighbour (and then the
/// smaller label, for full determinism).
#[derive(Debug, Clone, PartialEq)]
pub struct KnnClassifier {
    k: usize,
    x: Matrix,
    labels: Vec<usize>,
}

impl KnnClassifier {
    /// Stores the training set.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, the dataset is empty, or lengths mismatch.
    pub fn fit(x: Matrix, labels: Vec<usize>, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(x.rows() > 0, "empty training set");
        assert_eq!(x.rows(), labels.len(), "feature/label length mismatch");
        Self { k, x, labels }
    }

    /// The `k` this classifier votes with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of stored training samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the training set is empty (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Indices and squared distances of the k nearest training samples,
    /// ordered by increasing distance (then index).
    pub fn kneighbors(&self, row: &[f64]) -> Vec<(usize, f64)> {
        let mut dists: Vec<(usize, f64)> = (0..self.x.rows())
            .map(|i| (i, squared_distance(self.x.row(i), row)))
            .collect();
        let k = self.k.min(dists.len());
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        dists.truncate(k);
        dists
    }

    /// Predicts the class of a single sample.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        let neigh = self.kneighbors(row);
        // Majority vote; first (nearest) occurrence wins ties.
        let mut votes: Vec<(usize, usize, usize)> = Vec::new(); // (label, count, first_rank)
        for (rank, (idx, _)) in neigh.iter().enumerate() {
            let label = self.labels[*idx];
            match votes.iter_mut().find(|(l, _, _)| *l == label) {
                Some((_, c, _)) => *c += 1,
                None => votes.push((label, 1, rank)),
            }
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)).then(b.0.cmp(&a.0)))
            .map(|(l, _, _)| l)
            .expect("non-empty neighbours")
    }

    /// Predicts every row of a matrix.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> (Matrix, Vec<usize>) {
        // Two clusters around (0,0) and (10,10).
        let x = Matrix::from_rows(&[
            &[0.0, 0.1],
            &[0.2, -0.1],
            &[-0.1, 0.0],
            &[10.0, 10.1],
            &[9.9, 9.8],
            &[10.2, 10.0],
        ]);
        (x, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn one_nn_returns_nearest_label() {
        let (x, labels) = clusters();
        let knn = KnnClassifier::fit(x, labels, 1);
        assert_eq!(knn.predict_row(&[0.05, 0.05]), 0);
        assert_eq!(knn.predict_row(&[9.0, 9.0]), 1);
    }

    #[test]
    fn majority_vote_with_k3() {
        let (x, labels) = clusters();
        let knn = KnnClassifier::fit(x, labels, 3);
        assert_eq!(knn.predict_row(&[1.0, 1.0]), 0);
        assert_eq!(knn.predict_row(&[8.0, 8.0]), 1);
    }

    #[test]
    fn tie_breaks_towards_nearest() {
        // k=2 with one vote each: nearest neighbour should win.
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let knn = KnnClassifier::fit(x, vec![7, 3], 2);
        assert_eq!(knn.predict_row(&[0.1]), 7);
        assert_eq!(knn.predict_row(&[0.9]), 3);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let knn = KnnClassifier::fit(x, vec![0, 1], 10);
        assert_eq!(knn.kneighbors(&[0.4]).len(), 2);
    }

    #[test]
    fn kneighbors_sorted_by_distance() {
        let (x, labels) = clusters();
        let knn = KnnClassifier::fit(x, labels, 6);
        let n = knn.kneighbors(&[0.0, 0.0]);
        for w in n.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn exact_training_point_is_own_neighbour() {
        let (x, labels) = clusters();
        let probe = x.row(3).to_vec();
        let knn = KnnClassifier::fit(x, labels, 1);
        let n = knn.kneighbors(&probe);
        assert_eq!(n[0].0, 3);
        assert_eq!(n[0].1, 0.0);
    }
}
