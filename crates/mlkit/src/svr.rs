//! ε-insensitive support-vector regression with an RBF kernel.
//!
//! The paper's second model (§4.3) is an SVR with "kernel type = rbf, kernel
//! coefficient = 0.1, and penalty parameter = 2". Exact kernel SVR is O(n²)
//! in memory; this implementation uses the standard **random Fourier
//! feature** approximation of the RBF kernel (Rahimi & Recht), which turns
//! the problem into a linear SVR trained by averaged stochastic subgradient
//! descent on the primal objective
//!
//! ```text
//! ½‖w‖² + C Σ max(0, |yᵢ − w·z(xᵢ) − b| − ε)
//! ```
//!
//! where `z(x) = √(2/D)·cos(Wx + u)` with `W ~ N(0, 2γ·I)` and
//! `u ~ U[0, 2π)`. This keeps training linear in the sample count while
//! preserving the kernel's locality, which is what the paper's model relies
//! on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::{dot, Matrix};

/// Hyper-parameters for [`Svr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvrConfig {
    /// RBF kernel coefficient γ in `exp(-γ‖x−y‖²)`. Paper value: 0.1.
    pub gamma: f64,
    /// Penalty parameter C. Paper value: 2.0.
    pub c: f64,
    /// Width of the ε-insensitive tube.
    pub epsilon: f64,
    /// Number of random Fourier features approximating the kernel.
    pub features: usize,
    /// Subgradient-descent epochs.
    pub epochs: usize,
    /// Initial learning rate (decays as 1/√t).
    pub learning_rate: f64,
    /// RNG seed for feature sampling and shuffling.
    pub seed: u64,
}

impl Default for SvrConfig {
    fn default() -> Self {
        Self {
            gamma: 0.1,
            c: 2.0,
            epsilon: 0.1,
            features: 256,
            epochs: 40,
            learning_rate: 0.05,
            seed: 0x5f72,
        }
    }
}

/// The random Fourier feature map shared by training and prediction.
#[derive(Debug, Clone, PartialEq)]
struct FourierMap {
    /// `features × dim` frequency matrix.
    w: Matrix,
    /// Per-feature phase offsets in `[0, 2π)`.
    phase: Vec<f64>,
    scale: f64,
}

impl FourierMap {
    fn sample(dim: usize, features: usize, gamma: f64, rng: &mut StdRng) -> Self {
        // RBF exp(-γ‖x−y‖²) has spectral density N(0, 2γ I).
        let sigma = (2.0 * gamma).sqrt();
        let mut w = Matrix::zeros(features, dim);
        for r in 0..features {
            for c in 0..dim {
                w[(r, c)] = sigma * gaussian(rng);
            }
        }
        let phase = (0..features)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect();
        Self {
            w,
            phase,
            scale: (2.0 / features as f64).sqrt(),
        }
    }

    /// Lifts every row of `x` at once: `Z = cos(X · Wᵀ + u) · √(2/D)`,
    /// emitted straight into one flat `n × features` [`Matrix`] buffer on
    /// the blocked parallel kernels (no per-row `Vec` allocations).
    fn transform_batch(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul_transposed(&self.w);
        let phase = &self.phase;
        let scale = self.scale;
        z.par_rows_mut(|_, row| {
            for (zi, &p) in row.iter_mut().zip(phase) {
                *zi = scale * (*zi + p).cos();
            }
        });
        z
    }
}

/// Box–Muller standard normal sample.
fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > 1e-12 {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// A fitted support-vector regressor.
#[derive(Debug, Clone, PartialEq)]
pub struct Svr {
    map: FourierMap,
    weights: Vec<f64>,
    bias: f64,
    config: SvrConfig,
}

impl Svr {
    /// Trains on the given data.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()` or the dataset is empty.
    pub fn fit(x: &Matrix, y: &[f64], config: SvrConfig) -> Self {
        assert_eq!(x.rows(), y.len(), "feature/target length mismatch");
        assert!(x.rows() > 0, "empty dataset");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let map = FourierMap::sample(x.cols(), config.features, config.gamma, &mut rng);

        // Pre-transform once; the lifted design is one flat n × features
        // matrix, built by the batched kernel.
        let z = map.transform_batch(x);

        let n = z.rows();
        let d = config.features;
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut w_avg = vec![0.0; d];
        let mut b_avg = 0.0;
        let mut averaged = 0usize;
        let mut order: Vec<usize> = (0..n).collect();
        let mut t = 0usize;

        for _ in 0..config.epochs {
            // Fisher–Yates shuffle with the same RNG stream.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                t += 1;
                let lr = config.learning_rate / (1.0 + (t as f64).sqrt() * 0.01);
                let zi = z.row(i);
                let pred = dot(&w, zi) + b;
                let resid = y[i] - pred;
                // L2 shrinkage (from ½‖w‖², scaled by 1/(nC) per sample).
                let shrink = 1.0 - lr / (config.c * n as f64);
                for wj in w.iter_mut() {
                    *wj *= shrink.max(0.0);
                }
                if resid.abs() > config.epsilon {
                    let sign = resid.signum();
                    for (wj, &zj) in w.iter_mut().zip(zi) {
                        *wj += lr * sign * zj;
                    }
                    b += lr * sign;
                }
                // Tail averaging over the last half of training.
                if t > config.epochs * n / 2 {
                    for (aj, &wj) in w_avg.iter_mut().zip(&w) {
                        *aj += wj;
                    }
                    b_avg += b;
                    averaged += 1;
                }
            }
        }
        if averaged > 0 {
            for aj in &mut w_avg {
                *aj /= averaged as f64;
            }
            b_avg /= averaged as f64;
        } else {
            w_avg = w;
            b_avg = b;
        }

        Self {
            map,
            weights: w_avg,
            bias: b_avg,
            config,
        }
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &SvrConfig {
        &self.config
    }

    /// Predicts every row of a matrix through the batched feature map.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        let z = self.map.transform_batch(x);
        (0..z.rows())
            .map(|r| dot(&self.weights, z.row(r)) + self.bias)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::average_error;

    fn grid_dataset(f: impl Fn(f64, f64) -> f64) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let a = i as f64 / 11.0;
                let b = j as f64 / 11.0;
                rows.push(vec![a, b]);
                y.push(f(a, b));
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y)
    }

    #[test]
    fn fits_smooth_nonlinear_surface() {
        let (x, y) = grid_dataset(|a, b| (3.0 * a).sin() + b * b);
        let svr = Svr::fit(
            &x,
            &y,
            SvrConfig {
                gamma: 2.0,
                epsilon: 0.01,
                features: 256,
                epochs: 60,
                ..SvrConfig::default()
            },
        );
        let pred = svr.predict(&x);
        let ae = average_error(&y, &pred);
        assert!(ae < 0.12, "average error {ae} too high");
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = grid_dataset(|a, b| a + b);
        let cfg = SvrConfig::default();
        let p1 = Svr::fit(&x, &y, cfg).predict(&x);
        let p2 = Svr::fit(&x, &y, cfg).predict(&x);
        assert_eq!(p1, p2);
    }

    #[test]
    fn constant_target_predicts_constant() {
        let (x, y) = grid_dataset(|_, _| 5.0);
        let svr = Svr::fit(
            &x,
            &y,
            SvrConfig {
                epochs: 30,
                ..SvrConfig::default()
            },
        );
        for &p in &svr.predict(&x) {
            assert!((p - 5.0).abs() < 0.5, "predicted {p}");
        }
    }

    #[test]
    fn fourier_map_approximates_rbf_kernel() {
        let mut rng = StdRng::seed_from_u64(11);
        let gamma = 0.5;
        let map = FourierMap::sample(3, 2048, gamma, &mut rng);
        let a = [0.2, -0.4, 0.9];
        let b = [-0.1, 0.3, 0.5];
        let z = map.transform_batch(&Matrix::from_rows(&[&a, &b]));
        let approx = dot(z.row(0), z.row(1));
        let d2: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).powi(2)).sum();
        let exact = (-gamma * d2).exp();
        assert!(
            (approx - exact).abs() < 0.08,
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn batched_transform_is_job_count_invariant() {
        let (x, y) = grid_dataset(|a, b| a * b);
        let cfg = SvrConfig::default();
        let serial = minipar::with_jobs(1, || Svr::fit(&x, &y, cfg).predict(&x));
        let wide = minipar::with_jobs(4, || Svr::fit(&x, &y, cfg).predict(&x));
        assert_eq!(serial, wide, "SVR diverged across job counts");
    }
}
