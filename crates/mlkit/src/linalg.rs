//! Numerical linear algebra: Cholesky solves (ridge regression) and the
//! cyclic Jacobi eigendecomposition of symmetric matrices (PCA).

use crate::matrix::Matrix;

/// Error returned when a decomposition's preconditions fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinalgError {
    msg: String,
}

impl LinalgError {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "linear algebra error: {}", self.msg)
    }
}

impl std::error::Error for LinalgError {}

/// Cholesky factorisation `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor `L`.
///
/// # Errors
///
/// Returns [`LinalgError`] if `a` is not square or not positive definite.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::new("cholesky needs a square matrix"));
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::new(format!(
                        "matrix not positive definite at pivot {i} (sum {sum})"
                    )));
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `A·x = b` for symmetric positive-definite `A` via Cholesky.
///
/// # Errors
///
/// Returns [`LinalgError`] if the factorisation fails or `b` has the wrong
/// length.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::new("rhs length mismatch"));
    }
    let l = cholesky(a)?;
    let n = a.rows();
    // Forward substitution: L·y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // Back substitution: Lᵀ·x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    Ok(x)
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// eigenvectors are the *columns* of the returned matrix (orthonormal).
///
/// # Errors
///
/// Returns [`LinalgError`] if `a` is not square or not (numerically)
/// symmetric.
pub fn symmetric_eigen(a: &Matrix) -> Result<(Vec<f64>, Matrix), LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::new("eigen needs a square matrix"));
    }
    let n = a.rows();
    for i in 0..n {
        for j in 0..i {
            if (a[(i, j)] - a[(j, i)]).abs() > 1e-8 * (1.0 + a[(i, j)].abs()) {
                return Err(LinalgError::new(format!(
                    "matrix not symmetric at ({i},{j})"
                )));
            }
        }
    }
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    const MAX_SWEEPS: usize = 100;
    for _ in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius mass; stop when numerically diagonal.
        let mut off = 0.0;
        for i in 0..n {
            for j in 0..i {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p,q,θ) on both sides: M ← GᵀMG.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Extract and sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let eigenvalues: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| eigenvalues[j].partial_cmp(&eigenvalues[i]).expect("finite"));
    let sorted_values: Vec<f64> = order.iter().map(|&i| eigenvalues[i]).collect();
    let mut sorted_vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            sorted_vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Ok((sorted_values, sorted_vectors))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_known_factor() {
        // Classic example: [[4,12,-16],[12,37,-43],[-16,-43,98]].
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ]);
        let l = cholesky(&a).unwrap();
        let want = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[6.0, 1.0, 0.0], &[-8.0, 5.0, 3.0]]);
        assert!((&l - &want).frobenius_norm() < 1e-10);
        // Reconstruction.
        assert!((&l.matmul(&l.transpose()) - &a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_err());
        let ns = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        assert!(cholesky(&ns).is_err());
    }

    #[test]
    fn solve_spd_recovers_solution() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let x_true = [1.0, 2.0];
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!(solve_spd(&a, &[1.0]).is_err());
    }

    #[test]
    fn eigen_diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 7.0]]);
        let (vals, _) = symmetric_eigen(&a).unwrap();
        assert!((vals[0] - 7.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = symmetric_eigen(&a).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        // Eigenvector for λ=3 is ±(1,1)/√2.
        let v0 = [vecs[(0, 0)], vecs[(1, 0)]];
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            &[5.0, 1.0, 2.0, 0.5],
            &[1.0, 4.0, 0.0, 1.5],
            &[2.0, 0.0, 6.0, 1.0],
            &[0.5, 1.5, 1.0, 3.0],
        ]);
        let (vals, q) = symmetric_eigen(&a).unwrap();
        // A = Q·Λ·Qᵀ.
        let mut lambda = Matrix::zeros(4, 4);
        for (i, &v) in vals.iter().enumerate() {
            lambda[(i, i)] = v;
        }
        let recon = q.matmul(&lambda).matmul(&q.transpose());
        assert!((&recon - &a).frobenius_norm() < 1e-8);
        // Q is orthonormal.
        let qtq = q.transpose().matmul(&q);
        assert!((&qtq - &Matrix::identity(4)).frobenius_norm() < 1e-8);
        // Trace is preserved.
        let trace: f64 = vals.iter().sum();
        assert!((trace - 18.0).abs() < 1e-8);
    }

    #[test]
    fn eigen_rejects_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(symmetric_eigen(&a).is_err());
    }
}
