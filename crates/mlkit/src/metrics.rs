//! Evaluation metrics: AE, AER, accuracy and confusion matrices.
//!
//! §4.3 of the paper defines the **average error**
//! `AE = Σ |y(xᵢ) − f(xᵢ)| / N` and the **average error rate**
//! `AER = Σ |y(xᵢ) − f(xᵢ)| / y(xᵢ) / N` (Table 5), and reports overall and
//! per-input-class banded accuracy (Table 7) plus v2→v3 transition matrices
//! (Tables 4, 6, 13–15), all of which are computed here.

use std::collections::BTreeMap;
use std::fmt;

/// Mean absolute error between targets and predictions (paper's AE).
///
/// Returns 0.0 for empty input.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn average_error(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let sum: f64 = y_true.iter().zip(y_pred).map(|(t, p)| (t - p).abs()).sum();
    sum / y_true.len() as f64
}

/// Mean relative absolute error (paper's AER), as a fraction (multiply by
/// 100 for the percentage the paper prints).
///
/// Samples whose true value is zero are skipped, mirroring the paper's
/// formula which divides by `y(xᵢ)`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn average_error_rate(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, p) in y_true.iter().zip(y_pred) {
        if t.abs() > 1e-12 {
            sum += (t - p).abs() / t.abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Fraction of positions where the two label sequences agree.
///
/// Returns 0.0 for empty input.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy<T: PartialEq>(truth: &[T], predicted: &[T]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let hits = truth.iter().zip(predicted).filter(|(t, p)| t == p).count();
    hits as f64 / truth.len() as f64
}

/// Accuracy within caller-defined groups: for each group key, the fraction of
/// its members flagged correct.
///
/// The paper's Table 7 reports "accuracy by input (v2) class" — group test
/// samples by their v2 severity band and measure banded-v3 accuracy inside
/// each group.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn grouped_accuracy<K: Ord + Copy>(groups: &[K], correct: &[bool]) -> BTreeMap<K, f64> {
    assert_eq!(groups.len(), correct.len(), "length mismatch");
    let mut hit: BTreeMap<K, (usize, usize)> = BTreeMap::new();
    for (&g, &c) in groups.iter().zip(correct) {
        let e = hit.entry(g).or_insert((0, 0));
        e.1 += 1;
        if c {
            e.0 += 1;
        }
    }
    hit.into_iter()
        .map(|(k, (h, n))| (k, h as f64 / n as f64))
        .collect()
}

/// A dense confusion / transition matrix over `n` classes.
///
/// Rows are the *from* (true or v2) class, columns the *to* (predicted or v3)
/// class — exactly the layout of the paper's Tables 4, 6 and 13–15.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty `n × n` matrix.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Builds a matrix from parallel from/to label sequences.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any label is `>= n`.
    pub fn from_labels(n: usize, from: &[usize], to: &[usize]) -> Self {
        assert_eq!(from.len(), to.len(), "length mismatch");
        let mut m = Self::new(n);
        for (&f, &t) in from.iter().zip(to) {
            m.record(f, t);
        }
        m
    }

    /// Number of classes per side.
    pub fn classes(&self) -> usize {
        self.n
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, from: usize, to: usize) {
        assert!(from < self.n && to < self.n, "label out of range");
        self.counts[from * self.n + to] += 1;
    }

    /// The raw count in cell `(from, to)`.
    pub fn count(&self, from: usize, to: usize) -> u64 {
        self.counts[from * self.n + to]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Row total: observations whose *from* label is `from`.
    pub fn row_total(&self, from: usize) -> u64 {
        (0..self.n).map(|t| self.count(from, t)).sum()
    }

    /// Cell share of its row, as a percentage (the `%` columns of Tables 4
    /// and 6). Zero for empty rows.
    pub fn row_percent(&self, from: usize, to: usize) -> f64 {
        let total = self.row_total(from);
        if total == 0 {
            0.0
        } else {
            100.0 * self.count(from, to) as f64 / total as f64
        }
    }

    /// Fraction of observations on the diagonal.
    pub fn diagonal_accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.n).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Merges another matrix of the same shape into this one.
    ///
    /// # Panics
    ///
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n, other.n, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for from in 0..self.n {
            for to in 0..self.n {
                if to > 0 {
                    write!(f, "\t")?;
                }
                write!(
                    f,
                    "{} ({:.2}%)",
                    self.count(from, to),
                    self.row_percent(from, to)
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ae_and_aer_match_hand_computation() {
        let t = [2.0, 4.0, 5.0];
        let p = [1.0, 4.0, 7.0];
        assert!((average_error(&t, &p) - 1.0).abs() < 1e-12);
        // (0.5 + 0 + 0.4) / 3
        assert!((average_error_rate(&t, &p) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn aer_skips_zero_targets() {
        let t = [0.0, 2.0];
        let p = [5.0, 1.0];
        assert!((average_error_rate(&t, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        assert_eq!(average_error(&[], &[]), 0.0);
        assert_eq!(average_error_rate(&[], &[]), 0.0);
        assert_eq!(accuracy::<u8>(&[], &[]), 0.0);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert!((accuracy(&[1, 2, 3, 4], &[1, 2, 0, 4]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn grouped_accuracy_partitions() {
        let groups = [0, 0, 1, 1, 1];
        let correct = [true, false, true, true, false];
        let acc = grouped_accuracy(&groups, &correct);
        assert!((acc[&0] - 0.5).abs() < 1e-12);
        assert!((acc[&1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_percentages_and_diagonal() {
        let m = ConfusionMatrix::from_labels(3, &[0, 0, 1, 2, 2, 2], &[0, 1, 1, 2, 2, 0]);
        assert_eq!(m.total(), 6);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.row_total(2), 3);
        assert!((m.row_percent(2, 2) - 66.666_666).abs() < 1e-3);
        assert!((m.diagonal_accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_merge_adds_counts() {
        let mut a = ConfusionMatrix::from_labels(2, &[0, 1], &[0, 1]);
        let b = ConfusionMatrix::from_labels(2, &[0], &[1]);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(0, 1), 1);
    }

    #[test]
    fn empty_row_percent_is_zero() {
        let m = ConfusionMatrix::new(2);
        assert_eq!(m.row_percent(0, 1), 0.0);
        assert_eq!(m.diagonal_accuracy(), 0.0);
    }
}
