//! Simulated per-domain fetch latency.
//!
//! The real §4.1 crawl is dominated by network skew: a handful of slow or
//! congested hosts (and the politeness delays a well-behaved crawler owes
//! every host) stretch a serial crawl far past the sum of its work. The
//! [`crate::scheduler`] hides that skew behind a bounded in-flight window;
//! this module supplies the skew itself, as deterministic virtual-time
//! latency profiles the corpus generator calibrates per domain.
//!
//! Latency is *virtual*: one tick ≈ 1 µs of simulated wall clock. The
//! scheduler's clock jumps between events rather than sleeping, so profiles
//! shape the completion **order** (and the simulated makespan the benches
//! report) without costing real time.

use std::collections::BTreeMap;

/// How one host answers: service time plus the gap a polite crawler leaves
/// between consecutive requests to it. All times are virtual ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyProfile {
    /// Minimum per-request service time.
    pub base_ticks: u64,
    /// Maximum extra service time; the actual extra is derived per URL (see
    /// [`LatencyProfile::sample`]), so repeated schedules are identical.
    pub jitter_ticks: u64,
    /// Minimum delay between two request *starts* on this host.
    pub politeness_ticks: u64,
}

impl LatencyProfile {
    /// A profile from its three components.
    pub const fn new(base_ticks: u64, jitter_ticks: u64, politeness_ticks: u64) -> Self {
        Self {
            base_ticks,
            jitter_ticks,
            politeness_ticks,
        }
    }

    /// The service time of one fetch: base plus a jitter component hashed
    /// from the URL, so equal inputs always schedule identically.
    pub fn sample(&self, url: &str) -> u64 {
        if self.jitter_ticks == 0 {
            return self.base_ticks;
        }
        self.base_ticks + jitter_hash(url.as_bytes()) % (self.jitter_ticks + 1)
    }
}

impl Default for LatencyProfile {
    /// A middling host: 20 ms service time ± 5 ms, 10 ms politeness gap.
    fn default() -> Self {
        Self::new(20_000, 5_000, 10_000)
    }
}

/// Per-host latency profiles with a fallback for unknown hosts.
///
/// The corpus generator samples one model per seed (slow mail archives,
/// congested outliers, snappy CDN-backed advisories) and attaches it to the
/// [`crate::WebArchive`]; the scheduler reads it per dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyModel {
    profiles: BTreeMap<String, LatencyProfile>,
    fallback: LatencyProfile,
}

impl LatencyModel {
    /// A model that answers every host with the same profile.
    pub fn uniform(fallback: LatencyProfile) -> Self {
        Self {
            profiles: BTreeMap::new(),
            fallback,
        }
    }

    /// Sets the profile of one host.
    pub fn set(&mut self, host: &str, profile: LatencyProfile) {
        self.profiles.insert(host.to_owned(), profile);
    }

    /// The profile of a host (the fallback if none was set).
    pub fn profile(&self, host: &str) -> &LatencyProfile {
        self.profiles.get(host).unwrap_or(&self.fallback)
    }

    /// Number of hosts with an explicit profile.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no host has an explicit profile.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::uniform(LatencyProfile::default())
    }
}

/// Word-at-a-time multiply–xor over a byte string (the jitter hash). The
/// scheduler samples every URL of a batch, so this runs eight bytes per
/// multiply instead of byte-at-a-time FNV; any fixed mix works, as long as
/// it is a pure function of the URL. The fault layer reuses it as the base
/// of its per-attempt draws.
pub(crate) fn jitter_hash(bytes: &[u8]) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut h = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let word = u64::from_le_bytes(c.try_into().expect("exact chunk"));
        h = (h.rotate_left(5) ^ word).wrapping_mul(K);
    }
    let mut tail = 0u64;
    for &b in chunks.remainder() {
        tail = (tail << 8) | u64::from(b);
    }
    (h.rotate_left(5) ^ tail).wrapping_mul(K)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_deterministic_and_within_bounds() {
        let p = LatencyProfile::new(1_000, 400, 0);
        let a = p.sample("https://seclists.org/x");
        let b = p.sample("https://seclists.org/x");
        assert_eq!(a, b);
        assert!((1_000..=1_400).contains(&a), "sample {a}");
    }

    #[test]
    fn zero_jitter_is_constant() {
        let p = LatencyProfile::new(77, 0, 0);
        assert_eq!(p.sample("a"), 77);
        assert_eq!(p.sample("b"), 77);
    }

    #[test]
    fn different_urls_usually_differ() {
        let p = LatencyProfile::new(0, 1 << 20, 0);
        assert_ne!(p.sample("https://a/1"), p.sample("https://a/2"));
    }

    #[test]
    fn model_falls_back_for_unknown_hosts() {
        let mut m = LatencyModel::uniform(LatencyProfile::new(5, 0, 0));
        m.set("seclists.org", LatencyProfile::new(9, 0, 0));
        assert_eq!(m.profile("seclists.org").base_ticks, 9);
        assert_eq!(m.profile("example.invalid").base_ticks, 5);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }
}
