//! Page templates: how each domain renders a vulnerability report.
//!
//! Every rendered page embeds the true disclosure date in the domain's own
//! format behind the domain's own label, surrounded by realistic noise (a
//! title, the CVE identifier, a later "last modified" date, a copyright
//! year) so the per-domain crawlers have to do real extraction work.

use nvd_model::prelude::Date;

use crate::dates::format_date;
use crate::domains::{DomainCategory, DomainSpec};

/// Renders the reference page `spec`'s site would serve for `cve_id`,
/// disclosed on `disclosed`. `modified_offset_days` (≥ 0) pushes the "last
/// modified" noise date after the disclosure date.
pub fn render_page(
    spec: &DomainSpec,
    cve_id: &str,
    disclosed: Date,
    modified_offset_days: u32,
) -> String {
    let date_str = format_date(disclosed, spec.style);
    let modified = format_date(disclosed.plus_days(modified_offset_days as i32), spec.style);
    let copyright_year = disclosed.year().max(2016) + 1;
    let headline = headline_for(spec.category, cve_id);
    format!(
        "<html><head><title>{cve_id} — {host}</title></head>\n\
         <body>\n\
         <h1>{headline}</h1>\n\
         <p>{label}: {date_str}</p>\n\
         <p>This entry tracks {cve_id}. Exploitation details and remediation\n\
         guidance are provided below. Affected users should update promptly.</p>\n\
         <p>Last modified: {modified}</p>\n\
         <footer>&copy; {copyright_year} {host}</footer>\n\
         </body></html>\n",
        host = spec.host,
        label = spec.date_label,
    )
}

fn headline_for(category: DomainCategory, cve_id: &str) -> String {
    match category {
        DomainCategory::VulnDatabase => format!("Vulnerability report for {cve_id}"),
        DomainCategory::BugTracker => format!("Bug report referencing {cve_id}"),
        DomainCategory::Advisory => format!("Security advisory for {cve_id}"),
    }
}

/// A deterministic URL for the `n`-th page a host serves about a CVE.
pub fn page_url(spec: &DomainSpec, cve_id: &str, n: usize) -> String {
    let path = match spec.category {
        DomainCategory::VulnDatabase => "vuln",
        DomainCategory::BugTracker => "bug",
        DomainCategory::Advisory => "advisory",
    };
    format!("https://{}/{path}/{cve_id}-{n}", spec.host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dates::{find_labelled_date, DateStyle};
    use crate::domains::domain_spec;

    #[test]
    fn rendered_page_contains_labelled_date() {
        let spec = domain_spec("www.securityfocus.com").unwrap();
        let d: Date = "2011-02-07".parse().unwrap();
        let body = render_page(spec, "CVE-2011-0700", d, 30);
        assert!(body.contains("Published: 2011-02-07"));
        assert!(body.contains("CVE-2011-0700"));
        assert_eq!(
            find_labelled_date(&body, spec.date_label, spec.style),
            Some(d)
        );
    }

    #[test]
    fn japanese_page_renders_and_extracts() {
        let spec = domain_spec("jvn.jp").unwrap();
        let d: Date = "2015-06-30".parse().unwrap();
        let body = render_page(spec, "CVE-2015-1234", d, 10);
        assert!(body.contains("公開日: 2015年06月30日"));
        assert_eq!(
            find_labelled_date(&body, spec.date_label, spec.style),
            Some(d)
        );
    }

    #[test]
    fn modified_noise_does_not_shadow_disclosure() {
        // The "last modified" date is later; label-first extraction must
        // still find the disclosure date.
        let spec = domain_spec("securitytracker.com").unwrap();
        let d: Date = "2010-01-15".parse().unwrap();
        let body = render_page(spec, "CVE-2010-0001", d, 400);
        assert_eq!(
            find_labelled_date(&body, spec.date_label, spec.style),
            Some(d)
        );
    }

    #[test]
    fn copyright_year_is_not_parseable_as_iso_date() {
        let spec = domain_spec("www.debian.org").unwrap();
        let d: Date = "2012-03-04".parse().unwrap();
        let body = render_page(spec, "CVE-2012-0001", d, 0);
        // Strip the labelled and modified lines; the rest has no ISO date.
        let noise: String = body.lines().filter(|l| !l.contains("2012-03-04")).collect();
        assert_eq!(crate::dates::scan_for_date(&noise, DateStyle::Iso), None);
    }

    #[test]
    fn urls_are_unique_per_host_and_sequence() {
        let spec = domain_spec("seclists.org").unwrap();
        let a = page_url(spec, "CVE-2016-1111", 0);
        let b = page_url(spec, "CVE-2016-1111", 1);
        assert_ne!(a, b);
        assert!(a.starts_with("https://seclists.org/"));
    }
}
