//! Per-domain date-extraction crawlers.
//!
//! The paper: "Each of the webpages may have a different structure. Thus, we
//! built a separate crawler for each domain to extract the relevant
//! publication date for the vulnerability information (if any)." A
//! [`CrawlerSet`] holds one extractor per supported host and dispatches on
//! the page's domain; hosts outside the set yield no date, mirroring the
//! paper's restriction to the top 50 domains.

use std::collections::BTreeSet;

use nvd_model::prelude::Date;

use crate::archive::Page;
use crate::dates::find_labelled_date;
use crate::domains::{builtin_domains, domain_spec};

/// A set of per-domain crawlers, dispatched by page host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlerSet {
    hosts: BTreeSet<&'static str>,
}

impl CrawlerSet {
    /// Crawlers for every host in the builtin registry (the paper's
    /// "top 50 domains" setup).
    pub fn builtin() -> Self {
        Self {
            hosts: builtin_domains().iter().map(|d| d.host).collect(),
        }
    }

    /// Crawlers for only the `n` most-referenced hosts — the coverage
    /// ablation for the paper's "top 50 of 5,997 domains cover 85% of URLs"
    /// observation.
    ///
    /// Ordering is total: weight descending (`f64::total_cmp`, so no panic
    /// on any float), then host name ascending — equal-weight domains never
    /// depend on registry declaration order.
    pub fn top_n(n: usize) -> Self {
        let mut by_weight: Vec<_> = builtin_domains().iter().collect();
        by_weight.sort_by(|a, b| {
            b.weight
                .total_cmp(&a.weight)
                .then_with(|| a.host.cmp(b.host))
        });
        Self {
            hosts: by_weight.iter().take(n).map(|d| d.host).collect(),
        }
    }

    /// Number of hosts this set can extract dates from.
    pub fn coverage(&self) -> usize {
        self.hosts.len()
    }

    /// Whether a crawler exists for the host.
    pub fn supports(&self, host: &str) -> bool {
        self.hosts.contains(host)
    }

    /// Extracts the page's vulnerability publication date, if this set has a
    /// crawler for the page's host and the page carries a parseable date.
    pub fn extract(&self, page: &Page) -> Option<Date> {
        if !self.supports(page.host.as_str()) {
            return None;
        }
        let spec = domain_spec(&page.host)?;
        find_labelled_date(&page.body, spec.date_label, spec.style)
    }
}

impl Default for CrawlerSet {
    fn default() -> Self {
        Self::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::WebArchive;

    fn date(s: &str) -> Date {
        s.parse().unwrap()
    }

    #[test]
    fn builtin_covers_all_registry_hosts() {
        let set = CrawlerSet::builtin();
        assert_eq!(set.coverage(), builtin_domains().len());
        for d in builtin_domains() {
            assert!(set.supports(d.host));
        }
    }

    #[test]
    fn extracts_across_every_live_style() {
        let mut archive = WebArchive::new();
        let set = CrawlerSet::builtin();
        let d = date("2013-09-17");
        for spec in builtin_domains().iter().filter(|d| d.alive) {
            let url = archive.publish(spec.host, "CVE-2013-4242", d, 14).unwrap();
            let page = archive.fetch(&url).unwrap();
            assert_eq!(set.extract(page), Some(d), "host {}", spec.host);
        }
    }

    #[test]
    fn top_n_restricts_coverage() {
        let top5 = CrawlerSet::top_n(5);
        assert_eq!(top5.coverage(), 5);
        assert!(top5.supports("www.securityfocus.com"), "heaviest host in");
        let all = CrawlerSet::top_n(500);
        assert_eq!(all.coverage(), builtin_domains().len());
    }

    #[test]
    fn top_n_matches_total_order_at_every_cut() {
        // The documented order: weight descending, host ascending. Checking
        // every prefix pins the tie-break — if equal weights entered in
        // declaration order instead, some cut through a tie group would
        // include the wrong host.
        let mut expected: Vec<_> = builtin_domains().iter().collect();
        expected.sort_by(|a, b| {
            b.weight
                .total_cmp(&a.weight)
                .then_with(|| a.host.cmp(b.host))
        });
        for n in 1..=expected.len() {
            let set = CrawlerSet::top_n(n);
            assert_eq!(set.coverage(), n);
            for d in expected.iter().take(n) {
                assert!(set.supports(d.host), "top_{n} missing {}", d.host);
            }
        }
    }

    #[test]
    fn top_n_breaks_weight_ties_by_host_name() {
        // The registry carries a genuine tie at weight 5.0; the
        // lexicographically smaller host must win the cut.
        let tied: Vec<&str> = builtin_domains()
            .iter()
            .filter(|d| d.weight == 5.0)
            .map(|d| d.host)
            .collect();
        assert_eq!(
            tied.len(),
            2,
            "registry fixture: exactly two hosts at weight 5.0"
        );
        let heavier = builtin_domains().iter().filter(|d| d.weight > 5.0).count();
        let set = CrawlerSet::top_n(heavier + 1);
        let (first, second) = (tied.iter().min().unwrap(), tied.iter().max().unwrap());
        assert!(set.supports(first), "{first} (tie-break winner) missing");
        assert!(!set.supports(second), "{second} must lose the tie-break");
    }

    #[test]
    fn unsupported_host_yields_none() {
        let set = CrawlerSet::top_n(1);
        let page = Page {
            url: "https://securitytracker.com/vuln/x".into(),
            host: "securitytracker.com".into(),
            body: "Date: March 1, 2010".into(),
        };
        assert_eq!(set.extract(&page), None);
    }

    #[test]
    fn malformed_page_yields_none() {
        let set = CrawlerSet::builtin();
        let page = Page {
            url: "https://www.securityfocus.com/vuln/x".into(),
            host: "www.securityfocus.com".into(),
            body: "<html>this page has no date at all</html>".into(),
        };
        assert_eq!(set.extract(&page), None);
    }
}
