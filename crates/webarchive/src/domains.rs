//! The registry of reference-URL domains, modelled on the paper's top 50.
//!
//! §4.1: the top 50 domains "fall into three high-level categories: (1)
//! other vulnerability databases (e.g., SecurityFocus), (2) bug reports or
//! email archives threads (e.g., Bugzilla), and (3) security advisories
//! (e.g., cisco.com). Note that some domains are not in English (e.g.,
//! jvn.jp is in Japanese) … 14 domains are no longer responsive (e.g.,
//! osvdb.org shut down in 2016)."

use crate::dates::DateStyle;

/// The high-level category of a reference domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DomainCategory {
    /// Another vulnerability database (SecurityFocus, OSVDB, …).
    VulnDatabase,
    /// A bug tracker or mailing-list archive (Bugzilla, marc.info, …).
    BugTracker,
    /// A vendor or distro security advisory (cisco.com, debian.org, …).
    Advisory,
}

/// Static description of one reference domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainSpec {
    /// Host name as it appears in reference URLs.
    pub host: &'static str,
    /// What kind of site this is.
    pub category: DomainCategory,
    /// How the site renders dates on its pages.
    pub style: DateStyle,
    /// The label preceding the date on the page (`Published`, `Reported`…).
    pub date_label: &'static str,
    /// Whether the host still responds. Paper: 14 of the top 50 are dead.
    pub alive: bool,
    /// Relative share of reference URLs pointing at this host; the builtin
    /// table is Zipf-flavoured so a handful of hosts dominate, as in the
    /// paper (top 50 of 5,997 domains cover 85% of URLs).
    pub weight: f64,
}

/// The builtin domain registry: 50 "top" hosts across the paper's three
/// categories, 14 of them dead, one non-English.
pub fn builtin_domains() -> &'static [DomainSpec] {
    DOMAINS
}

/// Looks up a host in the builtin registry.
pub fn domain_spec(host: &str) -> Option<&'static DomainSpec> {
    DOMAINS.iter().find(|d| d.host == host)
}

macro_rules! dom {
    ($host:literal, $cat:ident, $style:ident, $label:literal, $alive:literal, $weight:literal) => {
        DomainSpec {
            host: $host,
            category: DomainCategory::$cat,
            style: DateStyle::$style,
            date_label: $label,
            alive: $alive,
            weight: $weight,
        }
    };
}

static DOMAINS: &[DomainSpec] = &[
    // -- Vulnerability databases ------------------------------------------
    dom!(
        "www.securityfocus.com",
        VulnDatabase,
        Iso,
        "Published",
        true,
        120.0
    ),
    dom!(
        "securitytracker.com",
        VulnDatabase,
        UsLong,
        "Date",
        true,
        55.0
    ),
    dom!(
        "www.vupen.com",
        VulnDatabase,
        Iso,
        "Release Date",
        false,
        18.0
    ),
    dom!(
        "osvdb.org",
        VulnDatabase,
        UsSlash,
        "Disclosure Date",
        false,
        30.0
    ),
    dom!(
        "xforce.iss.net",
        VulnDatabase,
        UsLong,
        "Reported",
        false,
        22.0
    ),
    dom!(
        "www.securiteam.com",
        VulnDatabase,
        UsSlash,
        "Published",
        false,
        12.0
    ),
    dom!(
        "secunia.com",
        VulnDatabase,
        Iso,
        "Release Date",
        false,
        28.0
    ),
    dom!("jvn.jp", VulnDatabase, JapaneseYmd, "公開日", true, 14.0),
    dom!("vuldb.com", VulnDatabase, Iso, "Published", true, 6.0),
    dom!(
        "www.exploit-db.com",
        VulnDatabase,
        Iso,
        "Published",
        true,
        25.0
    ),
    dom!(
        "packetstormsecurity.com",
        VulnDatabase,
        UsLong,
        "Posted",
        true,
        16.0
    ),
    dom!("cve.mitre.org", VulnDatabase, Iso, "Assigned", true, 40.0),
    // -- Bug trackers & mail archives --------------------------------------
    dom!(
        "bugzilla.redhat.com",
        BugTracker,
        BugzillaTs,
        "Reported",
        true,
        48.0
    ),
    dom!(
        "bugzilla.mozilla.org",
        BugTracker,
        BugzillaTs,
        "Reported",
        true,
        26.0
    ),
    dom!("bugs.debian.org", BugTracker, Rfc2822, "Date", true, 20.0),
    dom!(
        "bugs.launchpad.net",
        BugTracker,
        Iso,
        "Reported",
        true,
        12.0
    ),
    dom!(
        "bugs.chromium.org",
        BugTracker,
        UsSlash,
        "Opened",
        true,
        18.0
    ),
    dom!("seclists.org", BugTracker, Rfc2822, "Date", true, 42.0),
    dom!("marc.info", BugTracker, Rfc2822, "Date", true, 24.0),
    dom!("www.openwall.com", BugTracker, Rfc2822, "Date", true, 22.0),
    dom!(
        "lists.opensuse.org",
        BugTracker,
        Rfc2822,
        "Date",
        true,
        10.0
    ),
    dom!(
        "lists.fedoraproject.org",
        BugTracker,
        Rfc2822,
        "Date",
        true,
        9.0
    ),
    dom!("lists.apple.com", BugTracker, Rfc2822, "Date", true, 11.0),
    dom!(
        "archives.neohapsis.com",
        BugTracker,
        Rfc2822,
        "Date",
        false,
        17.0
    ),
    dom!("github.com", BugTracker, Iso, "Opened", true, 23.0),
    dom!(
        "sourceforge.net",
        BugTracker,
        UsSlash,
        "Updated",
        false,
        8.0
    ),
    dom!(
        "bugzilla.novell.com",
        BugTracker,
        BugzillaTs,
        "Reported",
        false,
        7.0
    ),
    dom!(
        "bugs.mysql.com",
        BugTracker,
        UsSlash,
        "Submitted",
        false,
        6.0
    ),
    // -- Security advisories ------------------------------------------------
    dom!(
        "tools.cisco.com",
        Advisory,
        UsLong,
        "First Published",
        true,
        38.0
    ),
    dom!("www.debian.org", Advisory, Iso, "Date Reported", true, 30.0),
    dom!("usn.ubuntu.com", Advisory, UsLong, "Published", true, 24.0),
    dom!("rhn.redhat.com", Advisory, Iso, "Issued", true, 34.0),
    dom!("access.redhat.com", Advisory, Iso, "Issued", true, 21.0),
    dom!("www.oracle.com", Advisory, UsLong, "Published", true, 26.0),
    dom!(
        "technet.microsoft.com",
        Advisory,
        UsLong,
        "Published",
        true,
        36.0
    ),
    dom!("www.ibm.com", Advisory, UsSlash, "Published", true, 15.0),
    dom!("www-01.ibm.com", Advisory, UsSlash, "Published", false, 9.0),
    dom!(
        "support.apple.com",
        Advisory,
        UsLong,
        "Released",
        true,
        19.0
    ),
    dom!(
        "www.adobe.com",
        Advisory,
        UsLong,
        "Date Published",
        true,
        14.0
    ),
    dom!("www.mandriva.com", Advisory, Iso, "Issued", false, 12.0),
    dom!("www.gentoo.org", Advisory, Iso, "Issued", true, 10.0),
    dom!("lists.suse.com", Advisory, Rfc2822, "Date", true, 8.0),
    dom!("www.vmware.com", Advisory, Iso, "Issued", true, 7.0),
    dom!("www.hp.com", Advisory, UsSlash, "Released", false, 13.0),
    dom!(
        "h20566.www2.hpe.com",
        Advisory,
        UsSlash,
        "Released",
        false,
        5.0
    ),
    dom!(
        "www.kb.cert.org",
        Advisory,
        UsLong,
        "First Published",
        true,
        16.0
    ),
    dom!("kb.juniper.net", Advisory, UsLong, "Published", true, 5.0),
    dom!(
        "www.wordfence.com",
        Advisory,
        UsLong,
        "Published",
        true,
        4.0
    ),
    dom!("drupal.org", Advisory, Iso, "Published", true, 6.0),
    dom!("www.samba.org", Advisory, Iso, "Issued", false, 3.0),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_fifty_domains() {
        assert_eq!(builtin_domains().len(), 50);
    }

    #[test]
    fn registry_has_fourteen_dead_domains() {
        // Matches the paper: "14 domains are no longer responsive".
        let dead = builtin_domains().iter().filter(|d| !d.alive).count();
        assert_eq!(dead, 14);
    }

    #[test]
    fn all_three_categories_present() {
        for cat in [
            DomainCategory::VulnDatabase,
            DomainCategory::BugTracker,
            DomainCategory::Advisory,
        ] {
            assert!(
                builtin_domains().iter().any(|d| d.category == cat),
                "missing {cat:?}"
            );
        }
    }

    #[test]
    fn has_non_english_domain() {
        let jvn = domain_spec("jvn.jp").expect("jvn.jp registered");
        assert_eq!(jvn.style, DateStyle::JapaneseYmd);
        assert!(jvn.alive);
    }

    #[test]
    fn hosts_are_unique() {
        let mut hosts: Vec<&str> = builtin_domains().iter().map(|d| d.host).collect();
        hosts.sort_unstable();
        let n = hosts.len();
        hosts.dedup();
        assert_eq!(hosts.len(), n);
    }

    #[test]
    fn weights_are_positive() {
        assert!(builtin_domains().iter().all(|d| d.weight > 0.0));
    }

    #[test]
    fn lookup_misses_unknown_host() {
        assert!(domain_spec("example.invalid").is_none());
    }
}
