//! Formatting and parsing of the date styles reference domains use.
//!
//! Each domain in [`crate::domains`] renders dates one way; the paper "built
//! a separate crawler for each domain to extract the relevant publication
//! date" — the parsing half of those crawlers lives here.

use nvd_model::prelude::Date;

/// The date rendering convention of a reference domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DateStyle {
    /// `2011-02-07`.
    Iso,
    /// `February 7, 2011`.
    UsLong,
    /// `02/07/2011` (month first).
    UsSlash,
    /// `Mon, 7 Feb 2011 14:22:01 +0000` — mail archives.
    Rfc2822,
    /// `2011-02-07 14:22 UTC` — Bugzilla-style timestamps.
    BugzillaTs,
    /// `2011年02月07日` — Japanese portals such as jvn.jp.
    JapaneseYmd,
}

const MONTHS_LONG: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

const MONTHS_SHORT: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

const WEEKDAYS_SHORT: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

/// Renders a date in the given style. Time-of-day components, where the
/// style has them, are synthesised deterministically from the date.
pub fn format_date(date: Date, style: DateStyle) -> String {
    let (y, m, d) = date.ymd();
    match style {
        DateStyle::Iso => format!("{y:04}-{m:02}-{d:02}"),
        DateStyle::UsLong => format!("{} {}, {}", MONTHS_LONG[(m - 1) as usize], d, y),
        DateStyle::UsSlash => format!("{m:02}/{d:02}/{y:04}"),
        DateStyle::Rfc2822 => {
            let dow = WEEKDAYS_SHORT[date.weekday().index()];
            let (hh, mm, ss) = fake_time(date);
            format!(
                "{dow}, {d} {} {y} {hh:02}:{mm:02}:{ss:02} +0000",
                MONTHS_SHORT[(m - 1) as usize]
            )
        }
        DateStyle::BugzillaTs => {
            let (hh, mm, _) = fake_time(date);
            format!("{y:04}-{m:02}-{d:02} {hh:02}:{mm:02} UTC")
        }
        DateStyle::JapaneseYmd => format!("{y:04}年{m:02}月{d:02}日"),
    }
}

/// Deterministic pseudo-time so timestamped styles look realistic without
/// an entropy source.
fn fake_time(date: Date) -> (u32, u32, u32) {
    let n = date.day_number().unsigned_abs();
    (n % 24, (n / 24) % 60, (n / 1440) % 60)
}

/// Parses a date written in the given style, anywhere at the start of `s`.
///
/// Returns `None` for text that does not begin with a valid date in that
/// style (the caller scans for candidate positions).
pub fn parse_date(s: &str, style: DateStyle) -> Option<Date> {
    match style {
        DateStyle::Iso | DateStyle::BugzillaTs => parse_iso_prefix(s),
        DateStyle::UsLong => parse_us_long(s),
        DateStyle::UsSlash => parse_us_slash(s),
        DateStyle::Rfc2822 => parse_rfc2822(s),
        DateStyle::JapaneseYmd => parse_japanese(s),
    }
}

fn digits(s: &str, n: usize) -> Option<i64> {
    if s.len() < n || !s.as_bytes()[..n].iter().all(u8::is_ascii_digit) {
        return None;
    }
    s[..n].parse().ok()
}

/// `YYYY-MM-DD` at the start of the string.
fn parse_iso_prefix(s: &str) -> Option<Date> {
    let y = digits(s, 4)?;
    let rest = &s[4..];
    if !rest.starts_with('-') {
        return None;
    }
    let m = digits(&rest[1..], 2)?;
    let rest = &rest[3..];
    if !rest.starts_with('-') {
        return None;
    }
    let d = digits(&rest[1..], 2)?;
    Date::from_ymd(y as i32, m as u32, d as u32).ok()
}

/// `February 7, 2011` (long month name, day, comma, year).
fn parse_us_long(s: &str) -> Option<Date> {
    let (idx, name) = MONTHS_LONG
        .iter()
        .enumerate()
        .find(|(_, name)| s.starts_with(**name))?;
    let rest = s[name.len()..].strip_prefix(' ')?;
    let day_len = rest.bytes().take_while(u8::is_ascii_digit).count();
    if day_len == 0 || day_len > 2 {
        return None;
    }
    let d: u32 = rest[..day_len].parse().ok()?;
    let rest = rest[day_len..].strip_prefix(", ")?;
    let y = digits(rest, 4)?;
    Date::from_ymd(y as i32, idx as u32 + 1, d).ok()
}

/// `MM/DD/YYYY`.
fn parse_us_slash(s: &str) -> Option<Date> {
    let m = digits(s, 2)?;
    let rest = s[2..].strip_prefix('/')?;
    let d = digits(rest, 2)?;
    let rest = rest[2..].strip_prefix('/')?;
    let y = digits(rest, 4)?;
    Date::from_ymd(y as i32, m as u32, d as u32).ok()
}

/// `Mon, 7 Feb 2011 …` — weekday prefix optional.
fn parse_rfc2822(s: &str) -> Option<Date> {
    let s = WEEKDAYS_SHORT
        .iter()
        .find_map(|w| s.strip_prefix(w).and_then(|rest| rest.strip_prefix(", ")))
        .unwrap_or(s);
    let day_len = s.bytes().take_while(u8::is_ascii_digit).count();
    if day_len == 0 || day_len > 2 {
        return None;
    }
    let d: u32 = s[..day_len].parse().ok()?;
    let rest = s[day_len..].strip_prefix(' ')?;
    let (idx, name) = MONTHS_SHORT
        .iter()
        .enumerate()
        .find(|(_, name)| rest.starts_with(**name))?;
    let rest = rest[name.len()..].strip_prefix(' ')?;
    let y = digits(rest, 4)?;
    Date::from_ymd(y as i32, idx as u32 + 1, d).ok()
}

/// `2011年02月07日`.
fn parse_japanese(s: &str) -> Option<Date> {
    let y = digits(s, 4)?;
    let rest = s[4..].strip_prefix('年')?;
    let m = digits(rest, 2)?;
    let rest = rest[2..].strip_prefix('月')?;
    let d = digits(rest, 2)?;
    Date::from_ymd(y as i32, m as u32, d as u32).ok()
}

/// Scans `text` for the first date in the given style appearing after the
/// given label (e.g. `Published:`). Falls back to the first date in the
/// style anywhere in the text when the label is absent.
pub fn find_labelled_date(text: &str, label: &str, style: DateStyle) -> Option<Date> {
    if let Some(pos) = find_substring(text, label) {
        let after = &text[pos + label.len()..];
        // Skip separators between the label and the date.
        let after = after.trim_start_matches([':', ' ', '\t']);
        if let Some(d) = parse_date(after, style) {
            return Some(d);
        }
    }
    scan_for_date(text, style)
}

/// Byte offset of the first occurrence of `needle` in `text` — the same
/// answer as `str::find`, but anchored on the needle's first byte so the
/// common miss case is a plain vectorisable byte scan. The crawl replay
/// runs this once per fetched page, which keeps it on the batch hot path.
///
/// A byte-level match of valid UTF-8 inside valid UTF-8 always lands on
/// char boundaries (leading and continuation bytes occupy disjoint ranges),
/// so the offset is safe to slice with.
fn find_substring(text: &str, needle: &str) -> Option<usize> {
    let (t, n) = (text.as_bytes(), needle.as_bytes());
    let Some(&first) = n.first() else {
        return Some(0); // str::find: the empty needle matches at 0
    };
    let mut i = 0;
    while i + n.len() <= t.len() {
        match t[i..].iter().position(|&b| b == first) {
            Some(p) => {
                let at = i + p;
                if at + n.len() <= t.len() && &t[at..at + n.len()] == n {
                    return Some(at);
                }
                i = at + 1;
            }
            None => return None,
        }
    }
    None
}

/// Returns the first parseable date of the given style anywhere in `text`.
pub fn scan_for_date(text: &str, style: DateStyle) -> Option<Date> {
    // Candidate positions: every character boundary that could start a date.
    text.char_indices()
        .find_map(|(i, _)| parse_date(&text[i..], style))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn date(s: &str) -> Date {
        s.parse().unwrap()
    }

    #[test]
    fn round_trip_every_style() {
        let samples = ["2011-02-07", "1999-12-31", "2018-05-21", "2004-02-29"];
        for s in samples {
            let d = date(s);
            for style in [
                DateStyle::Iso,
                DateStyle::UsLong,
                DateStyle::UsSlash,
                DateStyle::Rfc2822,
                DateStyle::BugzillaTs,
                DateStyle::JapaneseYmd,
            ] {
                let rendered = format_date(d, style);
                let parsed = parse_date(&rendered, style);
                assert_eq!(parsed, Some(d), "style {style:?}: {rendered}");
            }
        }
    }

    #[test]
    fn parses_the_papers_example_date() {
        // CVE-2011-0700's advisory was published February 7, 2011.
        assert_eq!(
            parse_date("February 7, 2011", DateStyle::UsLong),
            Some(date("2011-02-07"))
        );
    }

    #[test]
    fn rfc2822_accepts_missing_weekday() {
        assert_eq!(
            parse_date("7 Feb 2011 10:00:00 +0000", DateStyle::Rfc2822),
            Some(date("2011-02-07"))
        );
    }

    #[test]
    fn rejects_invalid_calendar_dates() {
        assert_eq!(parse_date("2011-02-30", DateStyle::Iso), None);
        assert_eq!(parse_date("13/07/2011", DateStyle::UsSlash), None);
        assert_eq!(parse_date("February 30, 2011", DateStyle::UsLong), None);
    }

    #[test]
    fn rejects_garbage() {
        for style in [
            DateStyle::Iso,
            DateStyle::UsLong,
            DateStyle::UsSlash,
            DateStyle::Rfc2822,
            DateStyle::JapaneseYmd,
        ] {
            assert_eq!(parse_date("not a date", style), None, "{style:?}");
            assert_eq!(parse_date("", style), None, "{style:?}");
        }
    }

    #[test]
    fn labelled_date_beats_earlier_noise() {
        let text = "Copyright 2018 ACME.\nPublished: 2011-02-07\nRevised: 2012-01-01";
        assert_eq!(
            find_labelled_date(text, "Published", DateStyle::Iso),
            Some(date("2011-02-07"))
        );
    }

    #[test]
    fn scan_finds_embedded_date() {
        let text = "blah blah 2011年02月07日 blah";
        assert_eq!(
            scan_for_date(text, DateStyle::JapaneseYmd),
            Some(date("2011-02-07"))
        );
    }

    #[test]
    fn scan_handles_multibyte_boundaries() {
        // Scanning must not panic on non-ASCII text without a date.
        assert_eq!(scan_for_date("日本語テキスト", DateStyle::Iso), None);
    }

    #[test]
    fn missing_label_falls_back_to_scan() {
        let text = "intro 02/07/2011 tail";
        assert_eq!(
            find_labelled_date(text, "Published", DateStyle::UsSlash),
            Some(date("2011-02-07"))
        );
    }
}
