//! # webarchive
//!
//! A simulated web for the `nvd-clean` workspace — the Rust reproduction of
//! *"Cleaning the NVD"* (Anwar et al., DSN 2021).
//!
//! §4.1 of the paper estimates vulnerability **disclosure dates** by crawling
//! the reference URLs attached to CVE entries: 591.4K URLs over 5,997
//! domains, with per-domain crawlers for the top 50 domains (covering >85%
//! of URLs). Those domains fall into three categories — other vulnerability
//! databases, bug trackers / mail archives, and vendor security advisories —
//! render dates in wildly different formats (including non-English pages
//! such as `jvn.jp`), and 14 of them are dead.
//!
//! Reproducing that offline requires a web substitute, which this crate
//! provides:
//!
//! * [`domains`] — a registry of reference domains modelled on the paper's
//!   top-50 (category, date style, liveness, popularity weight);
//! * [`dates`] — formatting and parsing for every date style the registry
//!   uses (ISO, long/slash US dates, RFC-2822 mail stamps, Bugzilla
//!   timestamps, Japanese 年月日);
//! * [`page`] — page templates that render a CVE's disclosure date the way
//!   its domain would, buried in realistic noise (copyright years, CVE IDs,
//!   unrelated dates);
//! * [`archive`] — the [`WebArchive`] store with a fetch API that fails for
//!   dead hosts and missing pages;
//! * [`crawler`] — the per-domain date extractors ([`CrawlerSet`]) the
//!   disclosure estimator dispatches on;
//! * [`latency`] — deterministic virtual-time latency profiles per domain
//!   (the corpus generator calibrates one model per seed);
//! * [`faults`] — seeded fault injection: per-host fault modes (hard-down,
//!   outage windows, transient failures) in a [`FaultPlan`], plus the
//!   [`RetryPolicy`] (timeouts, bounded retries with exponential backoff +
//!   URL-hashed jitter, per-host circuit breaker) the scheduler recovers
//!   with — all pure functions of the seed, never of wall-clock time;
//! * [`scheduler`] — the request/response crawl engine: per-domain
//!   politeness queues, a bounded in-flight window, and a virtual-clock
//!   completion order that is bit-identical at any `NVD_JOBS`, with page
//!   fetch + date extraction fanned over the `minipar` pool; under a fault
//!   plan the same guarantees extend to retries, timeouts and
//!   circuit-open resolutions.
//!
//! ## Example
//!
//! ```
//! use nvd_model::prelude::Date;
//! use webarchive::{CrawlerSet, WebArchive};
//!
//! let mut archive = WebArchive::new();
//! let date: Date = "2011-02-07".parse()?;
//! let url = archive.publish("www.securityfocus.com", "CVE-2011-0700", date, 7)?;
//!
//! let crawlers = CrawlerSet::builtin();
//! let page = archive.fetch(&url)?;
//! assert_eq!(crawlers.extract(page), Some(date));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod archive;
pub mod crawler;
pub mod dates;
pub mod domains;
pub mod faults;
pub mod latency;
pub mod page;
pub mod scheduler;

pub use archive::{host_of_url, FetchError, Page, WebArchive};
pub use crawler::CrawlerSet;
pub use dates::DateStyle;
pub use domains::{builtin_domains, domain_spec, DomainCategory, DomainSpec};
pub use faults::{FaultMode, FaultPlan, RetryPolicy};
pub use latency::{LatencyModel, LatencyProfile};
pub use scheduler::{
    schedule, schedule_with_faults, CrawlCompletion, CrawlEngine, CrawlOutcome, CrawlResult,
    CrawlSchedule, FaultSchedule, RequestFate, DEFAULT_WINDOW,
};
