//! The deterministic request/response crawl scheduler.
//!
//! §4.1's crawl is the pipeline's last serial region, and the paper's own
//! run shows why failure- and latency-aware scheduling is part of the spec:
//! 14 of the top 50 reference domains were dead, and the rest answer at
//! wildly different speeds. This module restructures the crawl around
//! explicit request/response futures over the synthetic archive:
//!
//! * every reference URL becomes a request with an explicit lifecycle
//!   (queued → in flight → completed);
//! * requests to the same host flow through a **per-domain politeness
//!   queue** — one in flight per host, consecutive starts separated by the
//!   host's politeness gap;
//! * a **bounded in-flight window** caps concurrent requests across all
//!   hosts, like a connection pool;
//! * a **virtual clock** orders completions by simulated finish time (ties
//!   broken by request id), so the completion order is a pure function of
//!   the URL list and the latency model — bit-identical at any `NVD_JOBS`.
//!
//! [`schedule`] computes the completion order without touching page bodies.
//! When the window cannot bind — at most one request is in flight per host,
//! so `window >= hosts` makes the cap unreachable — every host is an
//! independent politeness chain and the schedule is computed by a linear
//! per-host recurrence plus one sort, skipping the event loop entirely;
//! batches fanning over more hosts than the window run the full
//! event-driven simulation. Both paths produce the identical schedule on
//! their shared domain (unit-tested).
//!
//! [`CrawlEngine::crawl`] then replays the schedule against the archive:
//! fetch + date extraction run over the `minipar` pool in request order
//! (contiguous, cache-friendly), with per-host dispatch memoised — the
//! schedule already carries each request's interned host id, so liveness,
//! crawler support and the domain spec are resolved once per host and the
//! per-URL fast path is pure vector indexing. That, plus allocation-free
//! failure outcomes and never looking up pages on dead hosts, is where the
//! jobs=1 win over the legacy per-entry loop comes from. Outcomes are
//! emitted in virtual completion order. [`CrawlEngine::crawl_results`] is
//! the request-id-keyed bulk variant for order-independent folds: result
//! values are schedule-invariant, so it elides the virtual-clock
//! bookkeeping and runs the dispatch + replay alone.
//!
//! The same schedule-then-complete shape is what a real async runtime or a
//! remote archive backend would slot into: only the completion replay —
//! today a deterministic simulation — would become actual I/O.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use nvd_model::prelude::Date;

use crate::archive::{host_of_url, WebArchive};
use crate::crawler::CrawlerSet;
use crate::dates::find_labelled_date;
use crate::domains::{domain_spec, DomainSpec};
use crate::faults::{FaultMode, FaultPlan, RetryPolicy};
use crate::latency::{LatencyModel, LatencyProfile};

/// Default bound on concurrent in-flight requests across all hosts. Sized
/// to cover the full builtin 50-domain registry (per-host politeness
/// already caps a batch at one in-flight request per host), while still
/// bounding synthetic batches that fan over more hosts.
pub const DEFAULT_WINDOW: usize = 64;

/// Word-at-a-time multiply–xor hasher (fxhash-style) for interning host
/// slices: the scheduler hashes every URL's host once per batch, so the
/// default SipHash would sit on the critical path.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let word = u64::from_le_bytes(c.try_into().expect("exact chunk"));
            self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | u64::from(b);
        }
        self.hash = (self.hash.rotate_left(5) ^ tail).wrapping_mul(FX_SEED);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

type HostInterner<'u> = HashMap<&'u str, u32, BuildHasherDefault<FxHasher>>;

/// One scheduled fetch, in virtual time. `id` indexes the URL list the
/// schedule was built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrawlCompletion {
    /// Index of the request's URL in the scheduled batch.
    pub id: usize,
    /// Virtual tick the request was dispatched at.
    pub started_at: u64,
    /// Virtual tick the response arrived at.
    pub finished_at: u64,
}

/// A complete crawl plan: completions in virtual completion order, plus the
/// host interning the replay phase indexes by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlSchedule<'u> {
    /// All requests, ordered by `(finished_at, id)`.
    pub completions: Vec<CrawlCompletion>,
    /// Virtual tick the last response arrived at.
    pub makespan: u64,
    /// Distinct hosts the batch touches, in first-appearance order.
    pub hosts: Vec<&'u str>,
    /// Interned host id (index into [`Self::hosts`]) per request.
    pub request_host: Vec<u32>,
}

impl CrawlSchedule<'_> {
    /// Sum of the individual service times — what a politeness-free serial
    /// crawl would cost in virtual time. The gap to [`Self::makespan`] is
    /// the skew the in-flight window hid.
    pub fn serial_ticks(&self) -> u64 {
        self.completions
            .iter()
            .map(|c| c.finished_at - c.started_at)
            .sum()
    }
}

/// Computes the deterministic completion order for a batch of URLs.
///
/// Event-driven simulation: at each virtual tick, every eligible request is
/// dispatched (host idle, politeness gap elapsed, window not full; ties go
/// to the host that entered the batch first), then the clock jumps to the
/// next completion or politeness expiry. No real time passes. When
/// `window >= hosts` the cap is unreachable and the identical schedule is
/// computed by per-host chains instead (see the module docs).
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn schedule<'u>(urls: &[&'u str], model: &LatencyModel, window: usize) -> CrawlSchedule<'u> {
    assert!(window >= 1, "schedule: in-flight window must be at least 1");

    let (hosts, request_host) = intern_hosts(urls);
    let profiles: Vec<&LatencyProfile> = hosts.iter().map(|h| model.profile(h)).collect();

    let completions = if hosts.len() <= window {
        chain_schedule(urls, &request_host, hosts.len(), &profiles)
    } else {
        windowed_schedule(urls, &request_host, hosts.len(), &profiles, window)
    };
    let makespan = completions.last().map_or(0, |c| c.finished_at);
    CrawlSchedule {
        completions,
        makespan,
        hosts,
        request_host,
    }
}

/// Interns each URL's host, in first-appearance order: the distinct hosts
/// plus the host id (index into the first vector) of every request.
fn intern_hosts<'u>(urls: &[&'u str]) -> (Vec<&'u str>, Vec<u32>) {
    let mut interner: HostInterner<'u> = HashMap::with_capacity_and_hasher(64, Default::default());
    let mut hosts: Vec<&'u str> = Vec::new();
    let mut request_host: Vec<u32> = Vec::with_capacity(urls.len());
    for url in urls {
        let host = host_of_url(url);
        let hid = *interner.entry(host).or_insert_with(|| {
            hosts.push(host);
            (hosts.len() - 1) as u32
        });
        request_host.push(hid);
    }
    (hosts, request_host)
}

/// The window-free fast path: with at most one request in flight per host
/// and `window >= hosts`, hosts never contend for window slots, so each
/// host is an independent chain with the recurrence
/// `start = max(prev_start + politeness, prev_finish)`; the global
/// completion order is one sort by `(finish, id)`.
fn chain_schedule(
    urls: &[&str],
    request_host: &[u32],
    host_count: usize,
    profiles: &[&LatencyProfile],
) -> Vec<CrawlCompletion> {
    let mut last_start = vec![0u64; host_count];
    let mut last_finish = vec![0u64; host_count];
    let mut dispatched = vec![false; host_count];
    let mut completions = Vec::with_capacity(urls.len());
    for (id, (url, &hid)) in urls.iter().zip(request_host).enumerate() {
        let h = hid as usize;
        let p = profiles[h];
        let started_at = if dispatched[h] {
            (last_start[h] + p.politeness_ticks).max(last_finish[h])
        } else {
            dispatched[h] = true;
            0
        };
        let finished_at = started_at + p.sample(url);
        last_start[h] = started_at;
        last_finish[h] = finished_at;
        completions.push(CrawlCompletion {
            id,
            started_at,
            finished_at,
        });
    }
    completions.sort_unstable_by_key(|c| (c.finished_at, c.id));
    completions
}

/// The general event loop, for batches fanning over more hosts than the
/// window admits.
fn windowed_schedule(
    urls: &[&str],
    request_host: &[u32],
    host_count: usize,
    profiles: &[&LatencyProfile],
    window: usize,
) -> Vec<CrawlCompletion> {
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); host_count];
    for (i, &h) in request_host.iter().enumerate() {
        queues[h as usize].push_back(i);
    }

    // Hosts that are idle and have queued work, keyed by the earliest tick
    // they may dispatch at (then host id, so ties are deterministic).
    let mut ready: BTreeSet<(u64, usize)> = (0..host_count).map(|h| (0u64, h)).collect();
    let mut next_allowed = vec![0u64; host_count];
    let mut in_flight: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut started = vec![0u64; urls.len()];
    let mut completions = Vec::with_capacity(urls.len());
    let mut clock = 0u64;

    loop {
        // Dispatch everything eligible at the current tick.
        while in_flight.len() < window {
            let Some(&(t, h)) = ready.iter().next() else {
                break;
            };
            if t > clock {
                break;
            }
            ready.remove(&(t, h));
            let req = queues[h].pop_front().expect("ready hosts have work");
            let finish = clock + profiles[h].sample(urls[req]);
            started[req] = clock;
            in_flight.push(Reverse((finish, req)));
            next_allowed[h] = clock + profiles[h].politeness_ticks;
            // One in flight per host: `h` re-enters `ready` on completion.
        }

        let Some(&Reverse((next_finish, _))) = in_flight.peek() else {
            match ready.iter().next() {
                // Nothing in flight but a politeness timer is pending.
                Some(&(t, _)) => {
                    clock = t;
                    continue;
                }
                None => break, // drained
            }
        };

        // If a politeness timer expires before the next completion and the
        // window has room, advance to it and dispatch first.
        if in_flight.len() < window {
            if let Some(&(t, _)) = ready.iter().next() {
                if t < next_finish {
                    clock = t;
                    continue;
                }
            }
        }

        // Otherwise the next event is the earliest completion.
        let Reverse((finish, req)) = in_flight.pop().expect("peeked non-empty");
        clock = finish;
        completions.push(CrawlCompletion {
            id: req,
            started_at: started[req],
            finished_at: finish,
        });
        let h = request_host[req] as usize;
        if !queues[h].is_empty() {
            ready.insert((next_allowed[h].max(clock), h));
        }
    }

    completions
}

/// How a request under a fault plan ultimately resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestFate {
    /// The final attempt got a response; the replay decides what it says.
    Delivered,
    /// Every attempt timed out.
    TimedOut,
    /// Never dispatched: the host was abandoned with its circuit breaker
    /// open, and the queued request resolved immediately.
    CircuitOpen,
}

/// A fault-aware crawl plan: one final completion per request (the last
/// attempt's window, or the abandonment tick for circuit-open requests),
/// plus per-request attempt counts and fates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule<'u> {
    /// Final completions, ordered by `(finished_at, id)`.
    pub completions: Vec<CrawlCompletion>,
    /// Attempts dispatched per request id (0 for circuit-open requests).
    pub attempts: Vec<u32>,
    /// Final disposition per request id.
    pub fates: Vec<RequestFate>,
    /// Virtual tick the last request resolved at.
    pub makespan: u64,
    /// Distinct hosts the batch touches, in first-appearance order.
    pub hosts: Vec<&'u str>,
    /// Interned host id (index into [`Self::hosts`]) per request.
    pub request_host: Vec<u32>,
}

/// Per-host retry/breaker state shared by both fault scheduling paths.
#[derive(Clone)]
struct FaultHostState {
    prev_start: u64,
    busy_until: u64,
    dispatched: bool,
    /// Consecutive failed attempts; carries across requests, reset by any
    /// success.
    consec: u32,
    /// Set when the host was abandoned: every still-queued request
    /// resolves [`RequestFate::CircuitOpen`] at this tick.
    abandoned_at: Option<u64>,
}

impl FaultHostState {
    fn new() -> Self {
        Self {
            prev_start: 0,
            busy_until: 0,
            dispatched: false,
            consec: 0,
            abandoned_at: None,
        }
    }
}

/// Computes the deterministic fault-aware completion order for a batch.
///
/// Identical politeness/window semantics to [`schedule`], with the fault
/// layer on top: an attempt dispatched at tick `t` fails iff
/// [`FaultPlan::attempt_fails`] says so; a failed attempt occupies its
/// host (and window slot) for [`RetryPolicy::timeout_ticks`], then the
/// request retries after exponential backoff + URL-hashed jitter, at the
/// front of its host's politeness queue. A host whose consecutive-failure
/// count reaches [`RetryPolicy::breaker_threshold`] is suspended for the
/// breaker cooldown (the front request then probes; any success closes
/// the breaker); if a request exhausts [`RetryPolicy::max_attempts`]
/// while the breaker is tripped, the host is abandoned and its remaining
/// queue resolves [`RequestFate::CircuitOpen`] on the spot — so hard-down
/// hosts cost a bounded number of timeouts instead of timing out every
/// request.
///
/// The whole schedule is a pure function of
/// `(urls, model, window, plan, policy)` — bit-identical at any
/// `NVD_JOBS`. Like [`schedule`], batches with `hosts <= window` take a
/// per-host chain fast path; both paths produce the identical schedule on
/// their shared domain (unit-tested).
///
/// # Panics
///
/// Panics if `window == 0` or `policy.max_attempts == 0`.
pub fn schedule_with_faults<'u>(
    urls: &[&'u str],
    model: &LatencyModel,
    window: usize,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> FaultSchedule<'u> {
    assert!(window >= 1, "schedule: in-flight window must be at least 1");
    assert!(
        policy.max_attempts >= 1,
        "schedule: retry policy needs at least one attempt"
    );

    let (hosts, request_host) = intern_hosts(urls);
    let profiles: Vec<&LatencyProfile> = hosts.iter().map(|h| model.profile(h)).collect();
    let modes: Vec<Option<FaultMode>> = hosts.iter().map(|h| plan.mode(h)).collect();

    let (completions, attempts, fates) = if hosts.len() <= window {
        chain_fault_schedule(urls, &request_host, &profiles, &modes, plan, policy)
    } else {
        windowed_fault_schedule(urls, &request_host, &profiles, &modes, plan, policy, window)
    };
    let makespan = completions.last().map_or(0, |c| c.finished_at);
    FaultSchedule {
        completions,
        attempts,
        fates,
        makespan,
        hosts,
        request_host,
    }
}

/// The fault-aware chain fast path: with `window >= hosts` the window
/// never binds, so each host is an independent serial simulation of its
/// FIFO — attempts, timeouts, backoffs and breaker state never interact
/// across hosts.
fn chain_fault_schedule(
    urls: &[&str],
    request_host: &[u32],
    profiles: &[&LatencyProfile],
    modes: &[Option<FaultMode>],
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> (Vec<CrawlCompletion>, Vec<u32>, Vec<RequestFate>) {
    let host_count = profiles.len();
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); host_count];
    for (i, &h) in request_host.iter().enumerate() {
        queues[h as usize].push(i);
    }

    let n = urls.len();
    let mut completions = Vec::with_capacity(n);
    let mut attempts_out = vec![0u32; n];
    let mut fates = vec![RequestFate::Delivered; n];
    for h in 0..host_count {
        let p = profiles[h];
        let mode = modes[h];
        let mut st = FaultHostState::new();
        for &req in &queues[h] {
            if let Some(t) = st.abandoned_at {
                fates[req] = RequestFate::CircuitOpen;
                completions.push(CrawlCompletion {
                    id: req,
                    started_at: t,
                    finished_at: t,
                });
                continue;
            }
            let url = urls[req];
            let mut attempt = 0u32;
            // Earliest-start floor carrying backoff and breaker cooldown.
            let mut floor = 0u64;
            loop {
                attempt += 1;
                let mut start = if st.dispatched {
                    (st.prev_start + p.politeness_ticks).max(st.busy_until)
                } else {
                    0
                };
                start = start.max(floor);
                st.dispatched = true;
                let fails = mode.is_some_and(|m| plan.attempt_fails(m, url, attempt, start));
                if !fails {
                    let finish = start + p.sample(url);
                    st.prev_start = start;
                    st.busy_until = finish;
                    st.consec = 0;
                    attempts_out[req] = attempt;
                    completions.push(CrawlCompletion {
                        id: req,
                        started_at: start,
                        finished_at: finish,
                    });
                    break;
                }
                let finish = start + policy.timeout_ticks;
                st.prev_start = start;
                st.busy_until = finish;
                st.consec += 1;
                let tripped = policy.breaker_threshold > 0 && st.consec >= policy.breaker_threshold;
                if attempt >= policy.max_attempts {
                    attempts_out[req] = attempt;
                    fates[req] = RequestFate::TimedOut;
                    completions.push(CrawlCompletion {
                        id: req,
                        started_at: start,
                        finished_at: finish,
                    });
                    if tripped {
                        st.abandoned_at = Some(finish);
                    }
                    break;
                }
                floor = finish + policy.backoff_ticks(url, attempt);
                if tripped {
                    floor = floor.max(finish + policy.breaker_cooldown_ticks);
                }
            }
        }
    }
    completions.sort_unstable_by_key(|c| (c.finished_at, c.id));
    (completions, attempts_out, fates)
}

/// The fault-aware event loop, for batches fanning over more hosts than
/// the window admits. Same event structure as [`windowed_schedule`], with
/// failed attempts re-queued at their host's front after backoff and
/// abandoned hosts drained at the trip tick.
#[allow(clippy::too_many_arguments)]
fn windowed_fault_schedule(
    urls: &[&str],
    request_host: &[u32],
    profiles: &[&LatencyProfile],
    modes: &[Option<FaultMode>],
    plan: &FaultPlan,
    policy: &RetryPolicy,
    window: usize,
) -> (Vec<CrawlCompletion>, Vec<u32>, Vec<RequestFate>) {
    let host_count = profiles.len();
    let n = urls.len();
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); host_count];
    for (i, &h) in request_host.iter().enumerate() {
        queues[h as usize].push_back(i);
    }

    let mut ready: BTreeSet<(u64, usize)> = (0..host_count).map(|h| (0u64, h)).collect();
    let mut next_allowed = vec![0u64; host_count];
    let mut consec = vec![0u32; host_count];
    let mut in_flight: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut started = vec![0u64; n];
    let mut attempts = vec![0u32; n];
    let mut attempt_failed = vec![false; n];
    let mut fates = vec![RequestFate::Delivered; n];
    let mut completions = Vec::with_capacity(n);
    let mut clock = 0u64;

    loop {
        while in_flight.len() < window {
            let Some(&(t, h)) = ready.iter().next() else {
                break;
            };
            if t > clock {
                break;
            }
            ready.remove(&(t, h));
            let req = queues[h].pop_front().expect("ready hosts have work");
            attempts[req] += 1;
            let fails =
                modes[h].is_some_and(|m| plan.attempt_fails(m, urls[req], attempts[req], clock));
            let finish = clock
                + if fails {
                    policy.timeout_ticks
                } else {
                    profiles[h].sample(urls[req])
                };
            started[req] = clock;
            attempt_failed[req] = fails;
            in_flight.push(Reverse((finish, req)));
            next_allowed[h] = clock + profiles[h].politeness_ticks;
        }

        let Some(&Reverse((next_finish, _))) = in_flight.peek() else {
            match ready.iter().next() {
                Some(&(t, _)) => {
                    clock = t;
                    continue;
                }
                None => break,
            }
        };

        if in_flight.len() < window {
            if let Some(&(t, _)) = ready.iter().next() {
                if t < next_finish {
                    clock = t;
                    continue;
                }
            }
        }

        let Reverse((finish, req)) = in_flight.pop().expect("peeked non-empty");
        clock = finish;
        let h = request_host[req] as usize;
        if !attempt_failed[req] {
            consec[h] = 0;
            completions.push(CrawlCompletion {
                id: req,
                started_at: started[req],
                finished_at: finish,
            });
            if !queues[h].is_empty() {
                ready.insert((next_allowed[h].max(clock), h));
            }
            continue;
        }
        consec[h] += 1;
        let tripped = policy.breaker_threshold > 0 && consec[h] >= policy.breaker_threshold;
        if attempts[req] >= policy.max_attempts {
            fates[req] = RequestFate::TimedOut;
            completions.push(CrawlCompletion {
                id: req,
                started_at: started[req],
                finished_at: finish,
            });
            if tripped {
                // Abandon the host: drain its queue as circuit-open, in
                // FIFO (= ascending id) order at the trip tick.
                while let Some(q) = queues[h].pop_front() {
                    fates[q] = RequestFate::CircuitOpen;
                    completions.push(CrawlCompletion {
                        id: q,
                        started_at: clock,
                        finished_at: clock,
                    });
                }
            } else if !queues[h].is_empty() {
                ready.insert((next_allowed[h].max(clock), h));
            }
        } else {
            // Retry in place: the failed request goes back to the front,
            // eligible after politeness, backoff and (if tripped) the
            // breaker cooldown.
            queues[h].push_front(req);
            let mut at =
                next_allowed[h].max(clock + policy.backoff_ticks(urls[req], attempts[req]));
            if tripped {
                at = at.max(clock + policy.breaker_cooldown_ticks);
            }
            ready.insert((at, h));
        }
    }

    completions.sort_unstable_by_key(|c| (c.finished_at, c.id));
    (completions, attempts, fates)
}

/// What one scheduled fetch produced. Failure arms carry no payload — the
/// caller still holds the URL by id — so failure-heavy batches (the paper's
/// 14 dead domains) allocate nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrawlResult {
    /// Page fetched; the extracted date if the crawler set covers the host.
    Fetched(Option<Date>),
    /// The host does not respond (registry-dead or `mark_dead`).
    HostUnreachable,
    /// Every attempt timed out under the active fault plan (only produced
    /// by fault-aware crawls).
    TimedOut,
    /// The request resolved without dispatch because its host's circuit
    /// breaker was open (only produced by fault-aware crawls).
    CircuitOpen,
    /// The host answers but has no page at this URL.
    NotFound,
}

/// One completed fetch + extraction, in virtual completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrawlOutcome {
    /// Index of the URL in the crawled batch.
    pub id: usize,
    /// Virtual tick the response arrived at.
    pub finished_at: u64,
    /// What came back.
    pub result: CrawlResult,
}

/// Per-host dispatch state, resolved once per host per crawl.
struct HostInfo<'a> {
    dead: bool,
    /// `Some` iff the crawler set covers the host and the registry knows it.
    extractor: Option<&'a DomainSpec>,
}

/// The batch crawl engine: schedule, then replay completions against the
/// archive with extraction fanned over `minipar`.
#[derive(Debug, Clone)]
pub struct CrawlEngine<'a> {
    archive: &'a WebArchive,
    crawlers: &'a CrawlerSet,
    window: usize,
    faults: Option<(&'a FaultPlan, RetryPolicy)>,
}

impl<'a> CrawlEngine<'a> {
    /// An engine over the archive with the given crawler set and the
    /// default in-flight window. No fault plan: the plain schedule runs.
    pub fn new(archive: &'a WebArchive, crawlers: &'a CrawlerSet) -> Self {
        Self {
            archive,
            crawlers,
            window: DEFAULT_WINDOW,
            faults: None,
        }
    }

    /// Replaces the in-flight window bound.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 1, "CrawlEngine: window must be at least 1");
        self.window = window;
        self
    }

    /// Attaches a fault plan and retry policy: crawls then run the
    /// fault-aware schedule, and requests on faulty hosts can resolve
    /// [`CrawlResult::TimedOut`] or [`CrawlResult::CircuitOpen`].
    ///
    /// # Panics
    ///
    /// Panics if `policy.max_attempts == 0`.
    pub fn with_faults(mut self, plan: &'a FaultPlan, policy: RetryPolicy) -> Self {
        assert!(
            policy.max_attempts >= 1,
            "CrawlEngine: retry policy needs at least one attempt"
        );
        self.faults = Some((plan, policy));
        self
    }

    /// The crawl plan for a batch, without touching page bodies. Ignores
    /// any attached fault plan; see [`CrawlEngine::schedule_with_faults`].
    pub fn schedule<'u>(&self, urls: &[&'u str]) -> CrawlSchedule<'u> {
        schedule(urls, self.archive.latency(), self.window)
    }

    /// The fault-aware crawl plan for a batch, using the attached fault
    /// plan and retry policy (an empty plan and the default policy if none
    /// was attached).
    pub fn schedule_with_faults<'u>(&self, urls: &[&'u str]) -> FaultSchedule<'u> {
        static EMPTY: std::sync::OnceLock<FaultPlan> = std::sync::OnceLock::new();
        let (plan, policy) = match self.faults {
            Some((plan, policy)) => (plan, policy),
            None => (
                EMPTY.get_or_init(|| FaultPlan::new(0)),
                RetryPolicy::default(),
            ),
        };
        schedule_with_faults(urls, self.archive.latency(), self.window, plan, &policy)
    }

    /// Crawls a batch of URLs: computes the deterministic schedule, then
    /// fetches and extracts each completion on the `minipar` pool.
    ///
    /// Outcomes are returned in virtual completion order — a pure function
    /// of the batch and the archive's latency model (and, when a fault
    /// plan is attached, of the plan and policy), so results are
    /// bit-identical at any `NVD_JOBS` setting. Liveness and crawler
    /// dispatch are resolved once per *host*; pages on dead hosts are never
    /// looked up.
    pub fn crawl(&self, urls: &[&str]) -> Vec<CrawlOutcome> {
        if let Some((plan, policy)) = self.faults {
            return self.crawl_with_faults(urls, plan, &policy);
        }
        let plan = self.schedule(urls);
        let results = self.replay(urls, &plan.request_host, &self.resolve_hosts(&plan.hosts));
        plan.completions
            .iter()
            .map(|c| CrawlOutcome {
                id: c.id,
                finished_at: c.finished_at,
                result: results[c.id],
            })
            .collect()
    }

    /// The fault path of [`CrawlEngine::crawl`]: run the fault-aware
    /// schedule, replay only what the fates say was delivered, and map
    /// timed-out / circuit-open requests to their failure results.
    fn crawl_with_faults(
        &self,
        urls: &[&str],
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> Vec<CrawlOutcome> {
        let sched = schedule_with_faults(urls, self.archive.latency(), self.window, plan, policy);
        let results = self.replay(urls, &sched.request_host, &self.resolve_hosts(&sched.hosts));
        sched
            .completions
            .iter()
            .map(|c| CrawlOutcome {
                id: c.id,
                finished_at: c.finished_at,
                result: match sched.fates[c.id] {
                    RequestFate::Delivered => results[c.id],
                    RequestFate::TimedOut => CrawlResult::TimedOut,
                    RequestFate::CircuitOpen => CrawlResult::CircuitOpen,
                },
            })
            .collect()
    }

    /// Crawls a batch and returns each request's result keyed by request id
    /// — `results[i]` answers `urls[i]`.
    ///
    /// This is the engine's bulk entry point for callers whose fold is
    /// order-independent (the §4.1 disclosure aggregation). What a fetch
    /// returns is a pure function of the URL and the archive — the schedule
    /// decides *when* a response arrives, never what it says — so the
    /// virtual-clock bookkeeping and the completion-order sort are elided
    /// here and only the engine's dispatch runs: per-host interning,
    /// memoised liveness/crawler resolution, and the pooled request-order
    /// replay. Callers that consume the completion *stream* use
    /// [`CrawlEngine::crawl`]; the two agree result-for-result
    /// (unit-tested).
    ///
    /// With a fault plan attached the elision no longer applies — whether
    /// an attempt fails can depend on its dispatch tick (outage windows) —
    /// so this path runs the full fault schedule and scatters the
    /// completion-ordered outcomes back to request-id order.
    pub fn crawl_results(&self, urls: &[&str]) -> Vec<CrawlResult> {
        if self.faults.is_some() {
            let mut results = vec![CrawlResult::NotFound; urls.len()];
            for outcome in self.crawl(urls) {
                results[outcome.id] = outcome.result;
            }
            return results;
        }
        let (hosts, request_host) = intern_hosts(urls);
        self.replay(urls, &request_host, &self.resolve_hosts(&hosts))
    }

    /// Resolves liveness and crawler dispatch once per host.
    fn resolve_hosts(&self, hosts: &[&str]) -> Vec<HostInfo<'a>> {
        hosts
            .iter()
            .map(|&host| HostInfo {
                dead: self.archive.is_dead(host),
                extractor: if self.crawlers.supports(host) {
                    domain_spec(host)
                } else {
                    None
                },
            })
            .collect()
    }

    /// Fetch + extract in request order — contiguous and cache-friendly,
    /// and (like the schedule) a pure function of the batch, so the fan
    /// over minipar cannot perturb results. The per-URL fast path is pure
    /// vector indexing: liveness, crawler support and the date extractor
    /// were resolved once per host, and pages on dead hosts are never
    /// looked up.
    fn replay(
        &self,
        urls: &[&str],
        request_host: &[u32],
        host_info: &[HostInfo<'_>],
    ) -> Vec<CrawlResult> {
        // Fixed-size chunks keep boundaries independent of the job count;
        // the chunk index recovers each request's absolute id, so no
        // per-request (host, url) pairs are materialised.
        const CHUNK: usize = 512;
        let parts =
            minipar::par_chunks(urls, CHUNK, |ci, part| {
                let base = ci * CHUNK;
                part.iter()
                    .enumerate()
                    .map(|(j, &url)| {
                        let info = &host_info[request_host[base + j] as usize];
                        if info.dead {
                            return CrawlResult::HostUnreachable;
                        }
                        match self.archive.page(url) {
                            None => CrawlResult::NotFound,
                            Some(page) => CrawlResult::Fetched(info.extractor.and_then(|s| {
                                find_labelled_date(&page.body, s.date_label, s.style)
                            })),
                        }
                    })
                    .collect::<Vec<CrawlResult>>()
            });
        let mut results = Vec::with_capacity(urls.len());
        for part in parts {
            results.extend_from_slice(&part);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyProfile;

    fn model(base: u64, politeness: u64) -> LatencyModel {
        LatencyModel::uniform(LatencyProfile::new(base, 0, politeness))
    }

    #[test]
    fn empty_batch_schedules_nothing() {
        let plan = schedule(&[], &LatencyModel::default(), 4);
        assert!(plan.completions.is_empty());
        assert_eq!(plan.makespan, 0);
        assert!(plan.hosts.is_empty());
    }

    #[test]
    fn completion_order_is_deterministic() {
        let urls: Vec<String> = (0..40)
            .map(|i| format!("https://host{}.example/p{}", i % 7, i))
            .collect();
        let refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let m = LatencyModel::uniform(LatencyProfile::new(1_000, 5_000, 500));
        let a = schedule(&refs, &m, 4);
        let b = schedule(&refs, &m, 4);
        assert_eq!(a, b);
        assert_eq!(a.completions.len(), refs.len());
        // Every id exactly once.
        let mut seen: Vec<usize> = a.completions.iter().map(|c| c.id).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..refs.len()).collect::<Vec<_>>());
        // Completion order is sorted by (finish, id).
        for w in a.completions.windows(2) {
            assert!(
                (w[0].finished_at, w[0].id) < (w[1].finished_at, w[1].id),
                "completions out of order"
            );
        }
    }

    #[test]
    fn chain_fast_path_equals_event_loop() {
        // A jittery multi-host batch scheduled at window == hosts: the
        // window can't bind, so the chain recurrence and the full event
        // loop must produce the identical schedule.
        let urls: Vec<String> = (0..60)
            .map(|i| format!("https://host{}.example/page/{i}", i % 9))
            .collect();
        let refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let mut m = LatencyModel::uniform(LatencyProfile::new(1_000, 7_777, 900));
        m.set("host3.example", LatencyProfile::new(50_000, 0, 10));
        m.set("host4.example", LatencyProfile::new(10, 3, 40_000));
        let plan = schedule(&refs, &m, 9); // fast path: 9 hosts, window 9
        let request_host = plan.request_host.clone();
        let profiles: Vec<&LatencyProfile> = plan.hosts.iter().map(|h| m.profile(h)).collect();
        let looped = windowed_schedule(&refs, &request_host, plan.hosts.len(), &profiles, 9);
        assert_eq!(plan.completions, looped, "fast path diverged");
    }

    #[test]
    fn politeness_queue_serialises_a_host() {
        let urls = [
            "https://one.example/a",
            "https://one.example/b",
            "https://one.example/c",
        ];
        let plan = schedule(&urls, &model(100, 250), 8);
        // One in flight per host, and starts spaced by politeness (250 >
        // the 100-tick service time, so the gap dominates).
        let mut by_id = plan.completions.clone();
        by_id.sort_unstable_by_key(|c| c.id);
        for w in by_id.windows(2) {
            assert!(
                w[1].started_at >= w[0].finished_at,
                "host had two requests in flight"
            );
            assert!(
                w[1].started_at - w[0].started_at >= 250,
                "politeness gap violated: {} -> {}",
                w[0].started_at,
                w[1].started_at
            );
        }
        assert_eq!(plan.makespan, 2 * 250 + 100);
    }

    #[test]
    fn window_bounds_concurrent_requests() {
        let urls: Vec<String> = (0..10)
            .map(|i| format!("https://host{i}.example/p"))
            .collect();
        let refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let plan = schedule(&refs, &model(100, 0), 2);
        // At most 2 overlapping [start, finish) intervals at any tick.
        for c in &plan.completions {
            let overlapping = plan
                .completions
                .iter()
                .filter(|o| o.started_at <= c.started_at && c.started_at < o.finished_at)
                .count();
            assert!(overlapping <= 2, "window exceeded: {overlapping} in flight");
        }
        // 10 equal requests through a window of 2: five sequential pairs.
        assert_eq!(plan.makespan, 500);
    }

    #[test]
    fn window_overlaps_slow_hosts() {
        // One slow host and many fast ones: the slow fetch must overlap the
        // fast ones instead of serialising behind them.
        let mut m = model(10, 0);
        m.set("slow.example", LatencyProfile::new(10_000, 0, 0));
        let urls = [
            "https://slow.example/x",
            "https://fast0.example/a",
            "https://fast1.example/b",
            "https://fast2.example/c",
        ];
        let plan = schedule(&urls, &m, 4);
        assert_eq!(plan.makespan, 10_000, "slow host dominates the makespan");
        assert!(plan.serial_ticks() > plan.makespan, "no overlap happened");
        // Fast responses complete first even though the slow one started
        // alongside them.
        assert_eq!(plan.completions.last().unwrap().id, 0);
    }

    #[test]
    fn engine_classifies_outcomes() {
        use nvd_model::prelude::Date;
        let mut archive = WebArchive::new();
        let d: Date = "2014-04-01".parse().unwrap();
        let live = archive
            .publish("seclists.org", "CVE-2014-0001", d, 2)
            .unwrap();
        let dead = archive.publish("osvdb.org", "CVE-2014-0001", d, 2).unwrap();
        archive.insert_raw("https://seclists.org/junk", "no dates here".into());
        let crawlers = CrawlerSet::builtin();
        let urls = [
            live.as_str(),
            dead.as_str(),
            "https://seclists.org/junk",
            "https://seclists.org/missing",
        ];
        let engine = CrawlEngine::new(&archive, &crawlers);
        let mut outcomes = engine.crawl(&urls);
        outcomes.sort_unstable_by_key(|o| o.id);
        assert_eq!(outcomes[0].result, CrawlResult::Fetched(Some(d)));
        assert_eq!(outcomes[1].result, CrawlResult::HostUnreachable);
        assert_eq!(outcomes[2].result, CrawlResult::Fetched(None), "malformed");
        assert_eq!(outcomes[3].result, CrawlResult::NotFound);
    }

    #[test]
    fn crawl_results_match_crawl_outcomes() {
        // The request-keyed bulk path elides the virtual clock; it must
        // still agree with the completion-stream path result for result.
        use nvd_model::prelude::Date;
        let mut archive = WebArchive::new();
        let d: Date = "2014-04-01".parse().unwrap();
        let live = archive
            .publish("seclists.org", "CVE-2014-0001", d, 2)
            .unwrap();
        let dead = archive.publish("osvdb.org", "CVE-2014-0001", d, 2).unwrap();
        let urls = [live.as_str(), dead.as_str(), "https://seclists.org/missing"];
        let crawlers = CrawlerSet::builtin();
        let engine = CrawlEngine::new(&archive, &crawlers);
        let results = engine.crawl_results(&urls);
        assert_eq!(results.len(), urls.len());
        for outcome in engine.crawl(&urls) {
            assert_eq!(results[outcome.id], outcome.result);
        }
    }

    #[test]
    fn empty_fault_plan_matches_plain_schedule() {
        let urls: Vec<String> = (0..50)
            .map(|i| format!("https://host{}.example/p{}", i % 6, i))
            .collect();
        let refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let m = LatencyModel::uniform(LatencyProfile::new(1_000, 4_000, 700));
        let plain = schedule(&refs, &m, 4);
        let faulty =
            schedule_with_faults(&refs, &m, 4, &FaultPlan::new(7), &RetryPolicy::default());
        assert_eq!(plain.completions, faulty.completions);
        assert_eq!(plain.makespan, faulty.makespan);
        assert!(faulty.attempts.iter().all(|&a| a == 1));
        assert!(faulty.fates.iter().all(|&f| f == RequestFate::Delivered));
    }

    #[test]
    fn fault_chain_fast_path_equals_event_loop() {
        // Window == hosts so the fast path runs; rerun the event loop
        // directly and demand the identical schedule, attempts and fates
        // under a mixed fault plan.
        let urls: Vec<String> = (0..48)
            .map(|i| format!("https://host{}.example/page/{i}", i % 6))
            .collect();
        let refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let mut m = LatencyModel::uniform(LatencyProfile::new(1_000, 7_777, 900));
        m.set("host2.example", LatencyProfile::new(50_000, 0, 10));
        let mut plan = FaultPlan::new(99);
        plan.set("host0.example", FaultMode::HardDown);
        plan.set(
            "host1.example",
            FaultMode::Outage {
                from: 0,
                until: 400_000,
            },
        );
        plan.set("host2.example", FaultMode::Transient { per_mille: 350 });
        let policy = RetryPolicy {
            timeout_ticks: 30_000,
            backoff_base_ticks: 8_000,
            breaker_cooldown_ticks: 100_000,
            ..RetryPolicy::default()
        };
        let fast = schedule_with_faults(&refs, &m, 6, &plan, &policy);
        let profiles: Vec<&LatencyProfile> = fast.hosts.iter().map(|h| m.profile(h)).collect();
        let modes: Vec<Option<FaultMode>> = fast.hosts.iter().map(|h| plan.mode(h)).collect();
        let looped = windowed_fault_schedule(
            &refs,
            &fast.request_host,
            &profiles,
            &modes,
            &plan,
            &policy,
            6,
        );
        assert_eq!(fast.completions, looped.0, "fault fast path diverged");
        assert_eq!(fast.attempts, looped.1, "attempt counts diverged");
        assert_eq!(fast.fates, looped.2, "fates diverged");
    }

    #[test]
    fn hard_down_host_trips_breaker_and_abandons_queue() {
        let urls: Vec<String> = (0..10)
            .map(|i| format!("https://down.example/p{i}"))
            .collect();
        let refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let mut plan = FaultPlan::new(1);
        plan.set("down.example", FaultMode::HardDown);
        let policy = RetryPolicy::default(); // threshold 4, max_attempts 3
        let sched = schedule_with_faults(&refs, &model(100, 0), 8, &plan, &policy);
        // Request 0 times out after 3 attempts (3 consecutive failures),
        // request 1's second attempt is the 5th consecutive failure — the
        // breaker trips mid-request — and exhausting it abandons the host.
        assert_eq!(sched.fates[0], RequestFate::TimedOut);
        assert_eq!(sched.attempts[0], 3);
        assert_eq!(sched.fates[1], RequestFate::TimedOut);
        for i in 2..10 {
            assert_eq!(sched.fates[i], RequestFate::CircuitOpen, "request {i}");
            assert_eq!(sched.attempts[i], 0, "request {i} should never dispatch");
        }
        // Bounded cost: 6 timeouts total, not 30.
        let dispatched: u32 = sched.attempts.iter().sum();
        assert_eq!(dispatched, 6);
    }

    #[test]
    fn outage_host_recovers_with_retries() {
        let urls = ["https://flaky.example/a", "https://flaky.example/b"];
        let mut plan = FaultPlan::new(1);
        // Down until tick 200_000: the first attempts time out, the backed
        // off retries land after the outage and succeed.
        plan.set(
            "flaky.example",
            FaultMode::Outage {
                from: 0,
                until: 200_000,
            },
        );
        let policy = RetryPolicy {
            max_attempts: 4,
            timeout_ticks: 90_000,
            backoff_base_ticks: 30_000,
            backoff_jitter_ticks: 0,
            breaker_threshold: 0,
            breaker_cooldown_ticks: 0,
        };
        let sched = schedule_with_faults(&urls, &model(1_000, 0), 8, &plan, &policy);
        assert!(
            sched.fates.iter().all(|&f| f == RequestFate::Delivered),
            "outage should be survivable: {:?}",
            sched.fates
        );
        assert!(sched.attempts[0] > 1, "first request must have retried");
        // Both final attempts started after the outage ended.
        let mut by_id = sched.completions.clone();
        by_id.sort_unstable_by_key(|c| c.id);
        for c in &by_id {
            assert!(c.started_at >= 200_000, "dispatched inside the outage");
        }
    }

    #[test]
    fn engine_with_empty_plan_matches_plain_crawl() {
        use nvd_model::prelude::Date;
        let mut archive = WebArchive::new();
        let d: Date = "2015-03-01".parse().unwrap();
        let mut urls = Vec::new();
        for i in 0..24 {
            let host = ["seclists.org", "www.debian.org", "osvdb.org"][i % 3];
            urls.push(archive.publish(host, "CVE-2015-0001", d, i as u32).unwrap());
        }
        let refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let crawlers = CrawlerSet::builtin();
        let plain = CrawlEngine::new(&archive, &crawlers);
        let plan = FaultPlan::new(3);
        let faulty =
            CrawlEngine::new(&archive, &crawlers).with_faults(&plan, RetryPolicy::default());
        assert_eq!(plain.crawl(&refs), faulty.crawl(&refs));
        assert_eq!(plain.crawl_results(&refs), faulty.crawl_results(&refs));
    }

    #[test]
    fn faulty_engine_is_bit_identical_across_job_counts() {
        use nvd_model::prelude::Date;
        let mut archive = WebArchive::new();
        let d: Date = "2017-06-01".parse().unwrap();
        let mut urls = Vec::new();
        for i in 0..40 {
            let host = ["seclists.org", "www.debian.org", "marc.info", "osvdb.org"][i % 4];
            urls.push(archive.publish(host, "CVE-2017-0001", d, i as u32).unwrap());
        }
        let refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let crawlers = CrawlerSet::builtin();
        let mut plan = FaultPlan::new(0xfa17);
        plan.set("seclists.org", FaultMode::Transient { per_mille: 400 });
        plan.set("marc.info", FaultMode::HardDown);
        plan.set(
            "www.debian.org",
            FaultMode::Outage {
                from: 10_000,
                until: 500_000,
            },
        );
        let engine = CrawlEngine::new(&archive, &crawlers)
            .with_window(3)
            .with_faults(&plan, RetryPolicy::default());
        let serial = minipar::with_jobs(1, || engine.crawl(&refs));
        let wide = minipar::with_jobs(4, || engine.crawl(&refs));
        assert_eq!(serial, wide, "fault crawl diverged across job counts");
        let results = engine.crawl_results(&refs);
        for outcome in &serial {
            assert_eq!(results[outcome.id], outcome.result);
        }
        assert!(
            serial.iter().any(|o| o.result == CrawlResult::TimedOut),
            "hard-down host should time out"
        );
    }

    #[test]
    fn engine_is_bit_identical_across_job_counts() {
        use nvd_model::prelude::Date;
        let mut archive = WebArchive::new();
        let d: Date = "2016-05-01".parse().unwrap();
        let mut urls = Vec::new();
        for i in 0..30 {
            let host = ["seclists.org", "www.debian.org", "marc.info"][i % 3];
            urls.push(archive.publish(host, "CVE-2016-0001", d, i as u32).unwrap());
        }
        let refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let crawlers = CrawlerSet::builtin();
        let engine = CrawlEngine::new(&archive, &crawlers).with_window(4);
        let serial = minipar::with_jobs(1, || engine.crawl(&refs));
        let wide = minipar::with_jobs(4, || engine.crawl(&refs));
        assert_eq!(serial, wide, "crawl outcomes diverged across job counts");
    }
}
