//! Seeded fault injection for the crawl scheduler.
//!
//! The paper's own run met a hostile web — 14 of the top 50 reference
//! domains were dead — and real NVD consumers additionally live with
//! transient timeouts, flapping mirrors and scheduled outages. This module
//! supplies those failure shapes *deterministically*: a [`FaultPlan`] maps
//! hosts to seeded [`FaultMode`]s, and whether one attempt fails is a pure
//! function of `(mode, url, attempt number, virtual start tick, seed)` —
//! no randomness at simulation time, so the fault-aware schedule in
//! [`crate::scheduler`] stays bit-identical at any `NVD_JOBS`.
//!
//! [`RetryPolicy`] is the recovery half: per-attempt timeouts, bounded
//! retries with exponential backoff plus URL-hashed jitter (both in
//! virtual ticks, like every latency profile), and a per-host circuit
//! breaker that suspends a failing host for a cooldown and abandons it —
//! resolving the rest of its queue as
//! [`CircuitOpen`](crate::scheduler::CrawlResult::CircuitOpen) — once a
//! request exhausts its attempts while the breaker is tripped.

use std::collections::BTreeMap;

use crate::latency::jitter_hash;

/// Mixing constant shared with the latency jitter hash.
const FAULT_K: u64 = 0x517c_c1b7_2722_0a95;

/// How a faulty host misbehaves, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The host never answers: every attempt times out.
    HardDown,
    /// The host is down for the half-open virtual-tick interval
    /// `[from, until)` and healthy outside it — the flaky-then-recover
    /// shape: attempts dispatched during the outage time out, retries that
    /// back off past `until` succeed.
    Outage {
        /// First tick of the outage.
        from: u64,
        /// First tick after the outage.
        until: u64,
    },
    /// Each attempt independently times out with probability
    /// `per_mille / 1000`, decided by hashing `(url, attempt, seed)` — so
    /// a retry of the same URL is a fresh draw, but the whole sequence is
    /// reproducible.
    Transient {
        /// Failure probability in thousandths (0–1000).
        per_mille: u16,
    },
}

/// A seeded per-host fault assignment. Hosts without an entry never fail
/// at the fault layer (archive-level liveness still applies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    modes: BTreeMap<String, FaultMode>,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan. `seed` feeds the [`FaultMode::Transient`] draws.
    pub fn new(seed: u64) -> Self {
        Self {
            modes: BTreeMap::new(),
            seed,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Assigns a fault mode to one host.
    pub fn set(&mut self, host: &str, mode: FaultMode) {
        self.modes.insert(host.to_owned(), mode);
    }

    /// The fault mode of a host, if any.
    pub fn mode(&self, host: &str) -> Option<FaultMode> {
        self.modes.get(host).copied()
    }

    /// Number of hosts with an assigned fault mode.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// Whether no host has an assigned fault mode.
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// Whether one dispatch attempt fails under `mode` — a pure function
    /// of the URL, the (1-based) attempt number, the virtual start tick
    /// and the plan seed.
    pub fn attempt_fails(&self, mode: FaultMode, url: &str, attempt: u32, start_tick: u64) -> bool {
        match mode {
            FaultMode::HardDown => true,
            FaultMode::Outage { from, until } => from <= start_tick && start_tick < until,
            FaultMode::Transient { per_mille } => {
                fault_hash(self.seed, url, attempt) % 1000 < u64::from(per_mille)
            }
        }
    }
}

/// Timeout, retry, backoff and circuit-breaker parameters, all in virtual
/// ticks. See the module docs for the breaker semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per request before it resolves as timed out (≥ 1).
    pub max_attempts: u32,
    /// Virtual ticks a failed attempt occupies its host (and window slot).
    pub timeout_ticks: u64,
    /// Backoff before retry `k+1` starts at `base << (k-1)` ticks.
    pub backoff_base_ticks: u64,
    /// Maximum extra backoff, hashed from `(url, attempt)` — seeded jitter
    /// that de-synchronises retries without real randomness.
    pub backoff_jitter_ticks: u64,
    /// Consecutive per-host failures that trip the breaker; 0 disables it.
    pub breaker_threshold: u32,
    /// Virtual ticks a tripped host is suspended before the front request
    /// probes again.
    pub breaker_cooldown_ticks: u64,
}

impl RetryPolicy {
    /// The backoff delay inserted after failed attempt `attempt`
    /// (1-based): exponential in the attempt number, plus URL-hashed
    /// jitter. Saturates instead of overflowing.
    pub fn backoff_ticks(&self, url: &str, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(16);
        let base = self.backoff_base_ticks.saturating_mul(1u64 << exp);
        if self.backoff_jitter_ticks == 0 {
            return base;
        }
        base + fault_hash(0xb0ff, url, attempt) % (self.backoff_jitter_ticks + 1)
    }
}

impl Default for RetryPolicy {
    /// 3 attempts with a 120 ms timeout, 20 ms backoff doubling per retry
    /// with up to 5 ms jitter; the breaker trips after 4 consecutive
    /// failures and cools down for 800 ms. (1 tick ≈ 1 µs.)
    fn default() -> Self {
        Self {
            max_attempts: 3,
            timeout_ticks: 120_000,
            backoff_base_ticks: 20_000,
            backoff_jitter_ticks: 5_000,
            breaker_threshold: 4,
            breaker_cooldown_ticks: 800_000,
        }
    }
}

/// Deterministic draw for transient faults and backoff jitter: the URL's
/// jitter hash remixed with a seed and the attempt number, so each retry
/// is a fresh — but reproducible — sample.
fn fault_hash(seed: u64, url: &str, attempt: u32) -> u64 {
    let mut h = jitter_hash(url.as_bytes());
    h = (h.rotate_left(5) ^ seed).wrapping_mul(FAULT_K);
    (h.rotate_left(5) ^ u64::from(attempt)).wrapping_mul(FAULT_K)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_down_always_fails() {
        let plan = FaultPlan::new(1);
        for attempt in 1..5 {
            assert!(plan.attempt_fails(FaultMode::HardDown, "https://a/x", attempt, 0));
        }
    }

    #[test]
    fn outage_window_is_half_open() {
        let plan = FaultPlan::new(1);
        let m = FaultMode::Outage {
            from: 100,
            until: 200,
        };
        assert!(!plan.attempt_fails(m, "https://a/x", 1, 99));
        assert!(plan.attempt_fails(m, "https://a/x", 1, 100));
        assert!(plan.attempt_fails(m, "https://a/x", 1, 199));
        assert!(!plan.attempt_fails(m, "https://a/x", 1, 200));
    }

    #[test]
    fn transient_draws_are_seeded_and_attempt_dependent() {
        let plan = FaultPlan::new(42);
        let m = FaultMode::Transient { per_mille: 500 };
        let draws: Vec<bool> = (1..64)
            .map(|a| plan.attempt_fails(m, "https://a/x", a, 0))
            .collect();
        let again: Vec<bool> = (1..64)
            .map(|a| plan.attempt_fails(m, "https://a/x", a, 0))
            .collect();
        assert_eq!(draws, again, "equal inputs must redraw identically");
        assert!(draws.iter().any(|&f| f), "some attempts should fail");
        assert!(!draws.iter().all(|&f| f), "some attempts should succeed");
        let other = FaultPlan::new(43);
        let reseeded: Vec<bool> = (1..64)
            .map(|a| other.attempt_fails(m, "https://a/x", a, 0))
            .collect();
        assert_ne!(draws, reseeded, "the plan seed must matter");
    }

    #[test]
    fn transient_extremes_are_certain() {
        let plan = FaultPlan::new(7);
        let never = FaultMode::Transient { per_mille: 0 };
        let always = FaultMode::Transient { per_mille: 1000 };
        for a in 1..32 {
            assert!(!plan.attempt_fails(never, "https://a/x", a, 0));
            assert!(plan.attempt_fails(always, "https://a/x", a, 0));
        }
    }

    #[test]
    fn backoff_grows_exponentially_within_jitter() {
        let p = RetryPolicy {
            backoff_base_ticks: 100,
            backoff_jitter_ticks: 9,
            ..RetryPolicy::default()
        };
        let b1 = p.backoff_ticks("https://a/x", 1);
        let b2 = p.backoff_ticks("https://a/x", 2);
        let b3 = p.backoff_ticks("https://a/x", 3);
        assert!((100..=109).contains(&b1), "b1 {b1}");
        assert!((200..=209).contains(&b2), "b2 {b2}");
        assert!((400..=409).contains(&b3), "b3 {b3}");
        assert_eq!(b1, p.backoff_ticks("https://a/x", 1), "jitter is pure");
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = RetryPolicy {
            backoff_base_ticks: u64::MAX / 2,
            backoff_jitter_ticks: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ticks("u", 40), u64::MAX);
    }

    #[test]
    fn plan_tracks_hosts() {
        let mut plan = FaultPlan::new(9);
        assert!(plan.is_empty());
        plan.set("seclists.org", FaultMode::HardDown);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.mode("seclists.org"), Some(FaultMode::HardDown));
        assert_eq!(plan.mode("marc.info"), None);
        assert_eq!(plan.seed(), 9);
    }
}
