//! The archive store and its fetch API.
//!
//! Mirrors the failure modes the paper's crawlers hit: dead hosts (14 of the
//! top 50 domains) and pages that simply are not there.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use nvd_model::prelude::Date;

use crate::domains::domain_spec;
use crate::latency::LatencyModel;
use crate::page::{page_url, render_page};

/// The host component of a URL: the text between the scheme separator and
/// the first `/`, `?` or `#`. URLs without a `://` scheme separator have no
/// recognisable host and yield `""`.
///
/// This is the one URL parser the crate uses — page insertion, fetching and
/// the crawl scheduler's per-domain queues must all agree on what a host is.
pub fn host_of_url(url: &str) -> &str {
    // Byte-wise on purpose: the crawl scheduler parses every URL of a batch,
    // and all the delimiters are ASCII, so byte positions are always char
    // boundaries. Behaviour matches `split_once("://")` + a delimiter split.
    let bytes = url.as_bytes();
    let mut from = 0;
    let start = loop {
        match bytes[from..].iter().position(|&b| b == b':') {
            Some(i) if bytes[from + i + 1..].starts_with(b"//") => break from + i + 3,
            Some(i) => from += i + 1,
            None => return "", // no scheme separator: no recognisable host
        }
    };
    let end = bytes[start..]
        .iter()
        .position(|&b| matches!(b, b'/' | b'?' | b'#'))
        .map_or(url.len(), |i| start + i);
    &url[start..end]
}

/// One archived web page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// Full URL the page is served at.
    pub url: String,
    /// Host part of the URL.
    pub host: String,
    /// Page body (HTML-ish text).
    pub body: String,
}

/// Why a fetch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// The host no longer responds (e.g. osvdb.org after 2016).
    HostUnreachable {
        /// The dead host.
        host: String,
    },
    /// The host answers but has no such page.
    NotFound {
        /// The missing URL.
        url: String,
    },
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::HostUnreachable { host } => write!(f, "host unreachable: {host}"),
            FetchError::NotFound { url } => write!(f, "not found: {url}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// Error returned by [`WebArchive::publish`] for hosts missing from the
/// domain registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownDomainError {
    /// The unregistered host.
    pub host: String,
}

impl fmt::Display for UnknownDomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown domain: {}", self.host)
    }
}

impl std::error::Error for UnknownDomainError {}

/// An in-memory snapshot of the reference-URL web.
///
/// Pages are inserted by the corpus generator and fetched by the disclosure
/// estimator; liveness comes from the domain registry, with
/// [`WebArchive::mark_dead`] layering extra outages on top for failure
/// injection.
#[derive(Debug, Clone, Default)]
pub struct WebArchive {
    pages: BTreeMap<String, Page>,
    pages_per_host: BTreeMap<String, usize>,
    extra_dead: BTreeSet<String>,
    latency: LatencyModel,
}

impl WebArchive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders and stores the page `host` would serve about `cve_id`
    /// disclosed on `disclosed`; returns the page URL.
    ///
    /// Pages for dead hosts are stored too — the death shows at fetch time,
    /// exactly like a real crawl hitting a domain that has since shut down.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownDomainError`] if the host is not in the registry.
    pub fn publish(
        &mut self,
        host: &str,
        cve_id: &str,
        disclosed: Date,
        modified_offset_days: u32,
    ) -> Result<String, UnknownDomainError> {
        let spec = domain_spec(host).ok_or_else(|| UnknownDomainError {
            host: host.to_owned(),
        })?;
        let n = self.pages_per_host.entry(host.to_owned()).or_insert(0);
        let url = page_url(spec, cve_id, *n);
        *n += 1;
        let body = render_page(spec, cve_id, disclosed, modified_offset_days);
        self.insert_raw(&url, body);
        Ok(url)
    }

    /// Stores an arbitrary page body at the given URL (for malformed-page
    /// failure injection and custom sites).
    pub fn insert_raw(&mut self, url: &str, body: String) {
        let host = host_of_url(url).to_owned();
        self.pages.insert(
            url.to_owned(),
            Page {
                url: url.to_owned(),
                host,
                body,
            },
        );
    }

    /// Marks a host as unreachable regardless of its registry liveness.
    pub fn mark_dead(&mut self, host: &str) {
        self.extra_dead.insert(host.to_owned());
    }

    /// Whether fetches to this host fail.
    pub fn is_dead(&self, host: &str) -> bool {
        if self.extra_dead.contains(host) {
            return true;
        }
        domain_spec(host).is_some_and(|d| !d.alive)
    }

    /// Fetches a page.
    ///
    /// # Errors
    ///
    /// [`FetchError::HostUnreachable`] for dead hosts,
    /// [`FetchError::NotFound`] for live hosts without the page.
    pub fn fetch(&self, url: &str) -> Result<&Page, FetchError> {
        let host = host_of_url(url);
        if self.is_dead(host) {
            return Err(FetchError::HostUnreachable {
                host: host.to_owned(),
            });
        }
        self.pages.get(url).ok_or_else(|| FetchError::NotFound {
            url: url.to_owned(),
        })
    }

    /// Direct page lookup, ignoring host liveness.
    ///
    /// The crawl scheduler resolves liveness once per *host* and only then
    /// looks pages up; [`WebArchive::fetch`] is the per-URL API with the
    /// liveness check folded in.
    pub fn page(&self, url: &str) -> Option<&Page> {
        self.pages.get(url)
    }

    /// The simulated per-domain latency model the crawl scheduler reads.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Replaces the latency model (the corpus generator calibrates one per
    /// seed).
    pub fn set_latency(&mut self, latency: LatencyModel) {
        self.latency = latency;
    }

    /// Number of stored pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Iterates over all stored URLs.
    pub fn urls(&self) -> impl Iterator<Item = &str> {
        self.pages.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn date(s: &str) -> Date {
        s.parse().unwrap()
    }

    #[test]
    fn publish_and_fetch_round_trip() {
        let mut a = WebArchive::new();
        let url = a
            .publish(
                "www.securityfocus.com",
                "CVE-2011-0700",
                date("2011-02-07"),
                5,
            )
            .unwrap();
        let page = a.fetch(&url).unwrap();
        assert_eq!(page.host, "www.securityfocus.com");
        assert!(page.body.contains("2011-02-07"));
    }

    #[test]
    fn dead_host_is_unreachable_even_with_page() {
        let mut a = WebArchive::new();
        let url = a
            .publish("osvdb.org", "CVE-2009-0001", date("2009-03-01"), 0)
            .unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(
            a.fetch(&url),
            Err(FetchError::HostUnreachable {
                host: "osvdb.org".to_owned()
            })
        );
    }

    #[test]
    fn missing_page_is_not_found() {
        let a = WebArchive::new();
        assert_eq!(
            a.fetch("https://www.securityfocus.com/vuln/CVE-1999-0001-0"),
            Err(FetchError::NotFound {
                url: "https://www.securityfocus.com/vuln/CVE-1999-0001-0".to_owned()
            })
        );
    }

    #[test]
    fn mark_dead_injects_outage() {
        let mut a = WebArchive::new();
        let url = a
            .publish("seclists.org", "CVE-2014-0001", date("2014-04-01"), 2)
            .unwrap();
        assert!(a.fetch(&url).is_ok());
        a.mark_dead("seclists.org");
        assert!(matches!(
            a.fetch(&url),
            Err(FetchError::HostUnreachable { .. })
        ));
    }

    #[test]
    fn unknown_domain_is_rejected_at_publish() {
        let mut a = WebArchive::new();
        let err = a
            .publish("example.invalid", "CVE-2020-0001", date("2020-01-01"), 0)
            .unwrap_err();
        assert_eq!(err.host, "example.invalid");
    }

    #[test]
    fn repeated_publishes_get_distinct_urls() {
        let mut a = WebArchive::new();
        let u1 = a
            .publish("seclists.org", "CVE-2014-0001", date("2014-04-01"), 0)
            .unwrap();
        let u2 = a
            .publish("seclists.org", "CVE-2014-0001", date("2014-04-02"), 0)
            .unwrap();
        assert_ne!(u1, u2);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn insert_raw_extracts_host() {
        let mut a = WebArchive::new();
        a.insert_raw("https://drupal.org/advisory/x?y=1", "no dates here".into());
        let page = a.fetch("https://drupal.org/advisory/x?y=1").unwrap();
        assert_eq!(page.host, "drupal.org");
    }

    #[test]
    fn host_of_url_covers_the_grammar() {
        // Plain path.
        assert_eq!(host_of_url("https://drupal.org/advisory/x"), "drupal.org");
        // Query and fragment directly after the host.
        assert_eq!(host_of_url("https://drupal.org?y=1"), "drupal.org");
        assert_eq!(host_of_url("https://drupal.org#frag"), "drupal.org");
        assert_eq!(host_of_url("http://seclists.org/a?b=c#d"), "seclists.org");
        // Bare host, any scheme.
        assert_eq!(host_of_url("ftp://marc.info"), "marc.info");
        // No scheme separator: no recognisable host.
        assert_eq!(host_of_url("drupal.org/advisory/x"), "");
        assert_eq!(host_of_url(""), "");
    }

    #[test]
    fn insert_and_fetch_agree_on_hosts() {
        // The dedup point of `host_of_url`: a page stored under a URL must
        // be owned by exactly the host `fetch` checks liveness for.
        let mut a = WebArchive::new();
        for url in [
            "https://osvdb.org/show/osvdb/1?ref=2",
            "https://osvdb.org/show#frag",
        ] {
            a.insert_raw(url, "body".into());
            assert_eq!(
                a.fetch(url),
                Err(FetchError::HostUnreachable {
                    host: "osvdb.org".to_owned()
                }),
                "{url}: fetch must resolve the same (dead) host insert_raw stored"
            );
            assert_eq!(a.page(url).unwrap().host, "osvdb.org");
        }
    }
}
