//! Deterministic synthetic query workloads.
//!
//! The NVD-users study motivates the traffic shape: most requests are
//! lookups of a *popular* minority of CVEs (newly published, widely
//! deployed software), watchlist sweeps arrive in bursts (a scanner walks
//! its inventory vendor by vendor), and dashboards mix range scans with
//! histogram polls. [`generate_workload`] reproduces that mix as a pure
//! function of `(database, profile, seed)`:
//!
//! * **zipf-distributed point lookups** over a seed-shuffled popularity
//!   ranking of the CVE ids (so popularity is uncorrelated with id order),
//!   with a configurable miss rate probing absent ids;
//! * **bursty vendor/product scans** — each watch query repeats for a
//!   geometrically distributed burst length;
//! * **mixed range/histogram traffic** — patch windows of random width and
//!   placement, severity histograms (half of them windowed), CWE
//!   histograms.
//!
//! The generator is sequential over one `StdRng` stream, so a seed pins
//! the exact query sequence at any scale — the determinism suite asserts
//! seed stability, and the serve benches replay identical workloads
//! through both engines.

use nvd_model::prelude::{CveId, Database, Date, ProductName, VendorName};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::query::Query;

/// Traffic-mix knobs for [`generate_workload`].
///
/// Category weights are relative (they need not sum to 1); each query
/// draws its category from the normalised weights.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Total queries to emit.
    pub queries: usize,
    /// Zipf exponent for point-lookup popularity (≈1.1 matches web-style
    /// skew; higher concentrates traffic further).
    pub zipf_exponent: f64,
    /// Fraction of point lookups probing ids absent from the database.
    pub miss_rate: f64,
    /// Relative weight of point lookups.
    pub point_weight: f64,
    /// Relative weight of vendor-watch bursts.
    pub vendor_weight: f64,
    /// Relative weight of product-watch bursts.
    pub product_weight: f64,
    /// Relative weight of patch-window range scans.
    pub window_weight: f64,
    /// Relative weight of histogram polls.
    pub histogram_weight: f64,
    /// Mean geometric burst length for watch queries.
    pub mean_burst: f64,
    /// Maximum patch-window width in days.
    pub max_window_days: i32,
}

impl WorkloadProfile {
    /// The interactive shape: almost all traffic is point lookups.
    pub fn point_heavy(queries: usize) -> Self {
        Self {
            queries,
            zipf_exponent: 1.1,
            miss_rate: 0.05,
            point_weight: 0.96,
            vendor_weight: 0.04,
            product_weight: 0.0,
            window_weight: 0.0,
            histogram_weight: 0.0,
            mean_burst: 4.0,
            max_window_days: 90,
        }
    }

    /// The dashboard/scanner shape: watch bursts, range scans and
    /// histogram polls alongside the lookup stream.
    pub fn mixed(queries: usize) -> Self {
        Self {
            queries,
            zipf_exponent: 1.1,
            miss_rate: 0.05,
            point_weight: 0.55,
            vendor_weight: 0.20,
            product_weight: 0.10,
            window_weight: 0.10,
            histogram_weight: 0.05,
            mean_burst: 8.0,
            max_window_days: 180,
        }
    }
}

/// Inverse-CDF zipf sampler over ranks `0..n`.
#[derive(Debug)]
struct Zipf {
    /// Cumulative unnormalised weights; `cum[r]` closes rank `r`.
    cum: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, exponent: f64) -> Self {
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cum.push(total);
        }
        Self { cum }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cum.last().expect("zipf over empty domain");
        let u: f64 = rng.gen_range(0.0..total);
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }
}

/// Generates the full query sequence for `(db, profile, seed)`.
///
/// Returns an empty workload for an empty database (there is nothing
/// meaningful to ask).
pub fn generate_workload(db: &Database, profile: &WorkloadProfile, seed: u64) -> Vec<Query> {
    if db.is_empty() || profile.queries == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Popularity ranking: a seeded shuffle of the id universe, so rank 0
    // (the hottest CVE) is unrelated to numeric id order.
    let mut by_popularity: Vec<CveId> = db.iter().map(|e| e.id).collect();
    by_popularity.shuffle(&mut rng);
    let zipf = Zipf::new(by_popularity.len(), profile.zipf_exponent);

    let vendors: Vec<VendorName> = db.vendor_set().into_iter().cloned().collect();
    let products: Vec<ProductName> = db.product_set().into_iter().cloned().collect();

    let (mut min_day, mut max_day) = (i32::MAX, i32::MIN);
    for entry in db.iter() {
        let day = entry.published.day_number();
        min_day = min_day.min(day);
        max_day = max_day.max(day);
    }

    let weights = [
        profile.point_weight,
        if vendors.is_empty() {
            0.0
        } else {
            profile.vendor_weight
        },
        if products.is_empty() {
            0.0
        } else {
            profile.product_weight
        },
        profile.window_weight,
        profile.histogram_weight,
    ];
    let total_weight: f64 = weights.iter().sum();
    assert!(
        total_weight > 0.0,
        "workload profile has no positive weight"
    );
    let burst_continue = (1.0 - 1.0 / profile.mean_burst.max(1.0)).clamp(0.0, 0.99);

    let mut queries = Vec::with_capacity(profile.queries);
    while queries.len() < profile.queries {
        let mut pick: f64 = rng.gen_range(0.0..total_weight);
        let mut category = 0usize;
        for (c, &w) in weights.iter().enumerate() {
            if pick < w {
                category = c;
                break;
            }
            pick -= w;
        }
        match category {
            0 => {
                let id = if rng.gen_bool(profile.miss_rate) {
                    // An id shaped like the corpus but guaranteed absent:
                    // NVD sequences never reach the 9-million range.
                    let year = db.iter().next().expect("non-empty").id.year();
                    CveId::new(year, 9_000_000 + rng.gen_range(0..1_000_000u32))
                } else {
                    by_popularity[zipf.sample(&mut rng)]
                };
                queries.push(Query::PointLookup(id));
            }
            1 | 2 => {
                // One watch target, repeated for a geometric burst.
                loop {
                    let query = if category == 1 {
                        Query::VendorWatch(vendors[rng.gen_range(0..vendors.len())].clone())
                    } else {
                        Query::ProductWatch(products[rng.gen_range(0..products.len())].clone())
                    };
                    queries.push(query);
                    if queries.len() >= profile.queries || !rng.gen_bool(burst_continue) {
                        break;
                    }
                }
            }
            3 => {
                let width = rng.gen_range(7..=profile.max_window_days.max(7));
                let start = rng.gen_range(min_day..=max_day);
                queries.push(Query::PatchWindow {
                    since: Date::from_day_number(start),
                    until: Date::from_day_number((start + width).min(max_day)),
                });
            }
            _ => {
                if rng.gen_bool(0.4) {
                    queries.push(Query::CweHistogram);
                } else {
                    let window = if rng.gen_bool(0.5) {
                        let width = rng.gen_range(7..=profile.max_window_days.max(7));
                        let start = rng.gen_range(min_day..=max_day);
                        Some((
                            Date::from_day_number(start),
                            Date::from_day_number((start + width).min(max_day)),
                        ))
                    } else {
                        None
                    };
                    queries.push(Query::SeverityHistogram { window });
                }
            }
        }
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::prelude::{CpeName, CveEntry};

    fn tiny_db() -> Database {
        let mut db = Database::new();
        for i in 1..=40u32 {
            let mut e = CveEntry::new(
                format!("CVE-2015-{i:04}").parse().unwrap(),
                Date::from_day_number(Date::from_ymd(2015, 1, 1).unwrap().day_number() + i as i32),
            );
            e.affected
                .push(CpeName::application(format!("vendor{}", i % 5), "tool"));
            db.push(e);
        }
        db
    }

    #[test]
    fn exact_length_and_seed_stability() {
        let db = tiny_db();
        let profile = WorkloadProfile::mixed(500);
        let a = generate_workload(&db, &profile, 99);
        let b = generate_workload(&db, &profile, 99);
        assert_eq!(a.len(), 500);
        assert_eq!(a, b, "same seed must reproduce the workload");
        let c = generate_workload(&db, &profile, 100);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn point_heavy_is_mostly_lookups() {
        let db = tiny_db();
        let queries = generate_workload(&db, &WorkloadProfile::point_heavy(1000), 7);
        let points = queries
            .iter()
            .filter(|q| matches!(q, Query::PointLookup(_)))
            .count();
        assert!(points > 850, "expected ≫85% lookups, got {points}/1000");
    }

    #[test]
    fn zipf_concentrates_traffic() {
        let db = tiny_db();
        let queries = generate_workload(&db, &WorkloadProfile::point_heavy(2000), 21);
        let mut counts = std::collections::BTreeMap::<CveId, usize>::new();
        for q in &queries {
            if let Query::PointLookup(id) = q {
                *counts.entry(*id).or_default() += 1;
            }
        }
        let mut tallies: Vec<usize> = counts.values().copied().collect();
        tallies.sort_unstable_by(|a, b| b.cmp(a));
        let top = tallies[0];
        assert!(
            top * 4 > tallies.iter().sum::<usize>() / 2,
            "hottest id should dominate: top={top}, total={}",
            tallies.iter().sum::<usize>()
        );
    }

    #[test]
    fn empty_database_yields_empty_workload() {
        let db = Database::new();
        assert!(generate_workload(&db, &WorkloadProfile::mixed(100), 1).is_empty());
    }
}
