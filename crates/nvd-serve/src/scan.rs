//! The legacy read path: answer every query by scanning the whole database.
//!
//! This is the replica the serve benches gate against — it reproduces, per
//! query, exactly what pre-index callers did: `Database::iter` plus an
//! ad-hoc filter (`examples/vendor_watch.rs` walked `cves_by_vendor`,
//! `examples/patch_window.rs` walked every entry). Answers are canonical
//! (see [`crate::query`]) so they compare bit-for-bit against
//! [`ServeIndex`](crate::ServeIndex); only the cost differs — every query
//! is `O(database)` here, independent of selectivity.

use nvd_clean::quality::{QualityLedger, QualityScore};
use nvd_model::prelude::{CveId, Database};

use crate::index::{histogram_from_counts, quality_histogram_from_counts};
use crate::query::{effective_severity, Query, QueryEngine, QueryResult};

/// Full-scan query engine over an unindexed database.
#[derive(Debug)]
pub struct LinearScan<'a> {
    db: &'a Database,
    /// Quality ledger for [`Query::QualityLookup`] / `QualityHistogram`
    /// answers; without one, every served entry answers as issue-free
    /// (perfect score) — the same convention an index without attached
    /// quality follows, so the two engines stay comparable either way.
    ledger: Option<&'a QualityLedger>,
}

impl<'a> LinearScan<'a> {
    /// Wraps a database without building anything.
    pub fn new(db: &'a Database) -> Self {
        Self { db, ledger: None }
    }

    /// Wraps a database plus the quality ledger its cleaning run emitted,
    /// so quality queries answer from real per-CVE issue records.
    pub fn with_ledger(db: &'a Database, ledger: &'a QualityLedger) -> Self {
        Self {
            db,
            ledger: Some(ledger),
        }
    }
}

impl QueryEngine for LinearScan<'_> {
    fn execute<'db>(&'db self, query: &Query) -> QueryResult<'db> {
        match query {
            Query::PointLookup(id) => {
                QueryResult::Entry(self.db.iter().find(|entry| entry.id == *id))
            }
            Query::VendorWatch(vendor) => {
                let mut ids: Vec<CveId> = self
                    .db
                    .iter()
                    .filter(|entry| entry.affected.iter().any(|cpe| cpe.vendor == *vendor))
                    .map(|entry| entry.id)
                    .collect();
                ids.sort_unstable();
                QueryResult::Ids(ids)
            }
            Query::ProductWatch(product) => {
                let mut ids: Vec<CveId> = self
                    .db
                    .iter()
                    .filter(|entry| entry.affected.iter().any(|cpe| cpe.product == *product))
                    .map(|entry| entry.id)
                    .collect();
                ids.sort_unstable();
                QueryResult::Ids(ids)
            }
            Query::PatchWindow { since, until } => {
                let mut hits: Vec<_> = self
                    .db
                    .iter()
                    .filter(|entry| entry.published >= *since && entry.published <= *until)
                    .map(|entry| (entry.published, entry.id))
                    .collect();
                hits.sort_unstable();
                QueryResult::Ids(hits.into_iter().map(|(_, id)| id).collect())
            }
            Query::SeverityHistogram { window } => {
                let mut counts = [0usize; 5];
                for entry in self.db.iter() {
                    if let Some((since, until)) = window {
                        if entry.published < *since || entry.published > *until {
                            continue;
                        }
                    }
                    if let Some(band) = effective_severity(entry) {
                        counts[band as usize] += 1;
                    }
                }
                QueryResult::SeverityHistogram(histogram_from_counts(&counts))
            }
            Query::CweHistogram => {
                let mut buckets: Vec<(nvd_model::prelude::CweId, usize)> = Vec::new();
                let mut pairs: Vec<_> = self
                    .db
                    .iter()
                    .filter_map(|entry| entry.effective_cwe().specific())
                    .collect();
                pairs.sort_unstable();
                for cwe in pairs {
                    match buckets.last_mut() {
                        Some((id, count)) if *id == cwe => *count += 1,
                        _ => buckets.push((cwe, 1)),
                    }
                }
                QueryResult::CweHistogram(buckets)
            }
            Query::QualityLookup(id) => {
                if self.db.iter().any(|entry| entry.id == *id) {
                    let issues = self.ledger.map_or(&[][..], |l| l.issues_for(id));
                    QueryResult::Quality(Some((QualityScore::from_issues(issues), issues)))
                } else {
                    QueryResult::Quality(None)
                }
            }
            Query::QualityHistogram { axis } => {
                let mut counts = [0usize; 11];
                for entry in self.db.iter() {
                    let issues = self.ledger.map_or(&[][..], |l| l.issues_for(&entry.id));
                    let bucket = QualityScore::from_issues(issues).bucket(*axis);
                    counts[bucket as usize] += 1;
                }
                QueryResult::QualityHistogram(quality_histogram_from_counts(&counts))
            }
        }
    }
}
