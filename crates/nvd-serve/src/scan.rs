//! The legacy read path: answer every query by scanning the whole database.
//!
//! This is the replica the serve benches gate against — it reproduces, per
//! query, exactly what pre-index callers did: `Database::iter` plus an
//! ad-hoc filter (`examples/vendor_watch.rs` walked `cves_by_vendor`,
//! `examples/patch_window.rs` walked every entry). Answers are canonical
//! (see [`crate::query`]) so they compare bit-for-bit against
//! [`ServeIndex`](crate::ServeIndex); only the cost differs — every query
//! is `O(database)` here, independent of selectivity.

use nvd_model::prelude::{CveId, Database};

use crate::index::histogram_from_counts;
use crate::query::{effective_severity, Query, QueryEngine, QueryResult};

/// Full-scan query engine over an unindexed database.
#[derive(Debug)]
pub struct LinearScan<'a> {
    db: &'a Database,
}

impl<'a> LinearScan<'a> {
    /// Wraps a database without building anything.
    pub fn new(db: &'a Database) -> Self {
        Self { db }
    }
}

impl QueryEngine for LinearScan<'_> {
    fn execute<'db>(&'db self, query: &Query) -> QueryResult<'db> {
        match query {
            Query::PointLookup(id) => {
                QueryResult::Entry(self.db.iter().find(|entry| entry.id == *id))
            }
            Query::VendorWatch(vendor) => {
                let mut ids: Vec<CveId> = self
                    .db
                    .iter()
                    .filter(|entry| entry.affected.iter().any(|cpe| cpe.vendor == *vendor))
                    .map(|entry| entry.id)
                    .collect();
                ids.sort_unstable();
                QueryResult::Ids(ids)
            }
            Query::ProductWatch(product) => {
                let mut ids: Vec<CveId> = self
                    .db
                    .iter()
                    .filter(|entry| entry.affected.iter().any(|cpe| cpe.product == *product))
                    .map(|entry| entry.id)
                    .collect();
                ids.sort_unstable();
                QueryResult::Ids(ids)
            }
            Query::PatchWindow { since, until } => {
                let mut hits: Vec<_> = self
                    .db
                    .iter()
                    .filter(|entry| entry.published >= *since && entry.published <= *until)
                    .map(|entry| (entry.published, entry.id))
                    .collect();
                hits.sort_unstable();
                QueryResult::Ids(hits.into_iter().map(|(_, id)| id).collect())
            }
            Query::SeverityHistogram { window } => {
                let mut counts = [0usize; 5];
                for entry in self.db.iter() {
                    if let Some((since, until)) = window {
                        if entry.published < *since || entry.published > *until {
                            continue;
                        }
                    }
                    if let Some(band) = effective_severity(entry) {
                        counts[band as usize] += 1;
                    }
                }
                QueryResult::SeverityHistogram(histogram_from_counts(&counts))
            }
            Query::CweHistogram => {
                let mut buckets: Vec<(nvd_model::prelude::CweId, usize)> = Vec::new();
                let mut pairs: Vec<_> = self
                    .db
                    .iter()
                    .filter_map(|entry| entry.effective_cwe().specific())
                    .collect();
                pairs.sort_unstable();
                for cwe in pairs {
                    match buckets.last_mut() {
                        Some((id, count)) if *id == cwe => *count += 1,
                        _ => buckets.push((cwe, 1)),
                    }
                }
                QueryResult::CweHistogram(buckets)
            }
        }
    }
}
