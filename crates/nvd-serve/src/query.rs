//! The typed query surface of the read path.
//!
//! Queries are the practitioner asks the NVD-users study catalogues:
//! "is this CVE in the database" ([`Query::PointLookup`]), "what affects the
//! software I run" ([`Query::VendorWatch`] / [`Query::ProductWatch`]),
//! "what went public in this window" ([`Query::PatchWindow`]), and the
//! severity / vulnerability-type breakdowns dashboards poll
//! ([`Query::SeverityHistogram`] / [`Query::CweHistogram`]).
//!
//! Every engine answering these queries — the sharded [`ServeIndex`] and
//! the linear-scan [`LinearScan`] replica — must return *canonical*
//! results: CVE id lists ascending (except patch windows, which are in
//! ascending `(published, id)` order) and histograms ascending by key with
//! zero-count buckets omitted. Canonical form is what makes "bit-identical
//! at any shard count and any `NVD_JOBS`" a checkable contract rather than
//! an aspiration.
//!
//! [`ServeIndex`]: crate::ServeIndex
//! [`LinearScan`]: crate::LinearScan

use nvd_clean::quality::{QualityIssue, QualityScore, Resolution, ScoreAxis};
use nvd_model::prelude::{CveEntry, CveId, CweId, Date, ProductName, Severity, VendorName};

/// A single read-path request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Fetch one entry by CVE id.
    PointLookup(CveId),
    /// All CVE ids affecting a vendor (the watchlist sweep of §4.2).
    VendorWatch(VendorName),
    /// All CVE ids affecting a product, across vendors.
    ProductWatch(ProductName),
    /// CVE ids published inside `since..=until`, in ascending
    /// `(published, id)` order (the §4.1 window-of-exposure scan).
    PatchWindow {
        /// First publication date included.
        since: Date,
        /// Last publication date included.
        until: Date,
    },
    /// Entry counts per effective severity band (v3 when present, else
    /// v2), optionally restricted to a publication window.
    SeverityHistogram {
        /// Inclusive publication-date window, `None` for the whole corpus.
        window: Option<(Date, Date)>,
    },
    /// Entry counts per effective specific CWE id.
    CweHistogram,
    /// The quality-assessment record of one CVE: its per-axis
    /// [`QualityScore`] plus the typed issue list the cleaning stages
    /// emitted for it (the "how trustworthy is this entry" ask).
    QualityLookup(CveId),
    /// Entry counts per score decile (bucket = axis score / 10, so
    /// 0..=10) on one quality axis — the corpus-health dashboard poll.
    QualityHistogram {
        /// The quality axis to bucket on.
        axis: ScoreAxis,
    },
}

/// The answer to a [`Query`], borrowing entry data from the served database.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult<'db> {
    /// Point-lookup hit or miss.
    Entry(Option<&'db CveEntry>),
    /// An ordered CVE id list (watch queries ascending by id; patch
    /// windows ascending by `(published, id)`).
    Ids(Vec<CveId>),
    /// Non-empty severity buckets, ascending by band.
    SeverityHistogram(Vec<(Severity, usize)>),
    /// Non-empty CWE buckets, ascending by id.
    CweHistogram(Vec<(CweId, usize)>),
    /// Quality-lookup hit (score plus the served issue slice, possibly
    /// empty for an issue-free entry) or miss (`None`: unknown CVE).
    Quality(Option<(QualityScore, &'db [QualityIssue])>),
    /// Non-empty score-decile buckets `(bucket, count)`, ascending by
    /// bucket; every served entry lands in exactly one bucket.
    QualityHistogram(Vec<(u8, usize)>),
}

/// 64-bit FNV-1a, the workspace's standing choice for cheap stable hashing.
pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// FNV-1a offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Stable hash of a CVE id, used both for shard routing and checksums.
pub(crate) fn hash_cve_id(id: CveId) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &id.year().to_le_bytes());
    h = fnv1a(h, &id.sequence().to_le_bytes());
    h
}

impl QueryResult<'_> {
    /// Number of items carried by the result (0 or 1 for point lookups).
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Entry(e) => usize::from(e.is_some()),
            QueryResult::Ids(ids) => ids.len(),
            QueryResult::SeverityHistogram(h) => h.len(),
            QueryResult::CweHistogram(h) => h.len(),
            // A hit carries the score (1 item) plus its issues.
            QueryResult::Quality(q) => q.map_or(0, |(_, issues)| 1 + issues.len()),
            QueryResult::QualityHistogram(h) => h.len(),
        }
    }

    /// Whether the result carries nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An order-sensitive stable checksum of the result.
    ///
    /// Cheap enough to fold over millions of workload queries, yet strict
    /// enough that any reordering, dropped id, or shifted count changes it —
    /// the serve benches and determinism tests compare engines and shard
    /// counts through this.
    pub fn checksum(&self) -> u64 {
        match self {
            QueryResult::Entry(e) => {
                let mut h = fnv1a(FNV_OFFSET, b"entry");
                if let Some(entry) = e {
                    h ^= hash_cve_id(entry.id);
                    h = fnv1a(h, &entry.published.day_number().to_le_bytes());
                    h = fnv1a(h, &(entry.references.len() as u64).to_le_bytes());
                }
                h
            }
            QueryResult::Ids(ids) => {
                let mut h = fnv1a(FNV_OFFSET, b"ids");
                for &id in ids {
                    h = fnv1a(h, &hash_cve_id(id).to_le_bytes());
                }
                h
            }
            QueryResult::SeverityHistogram(buckets) => {
                let mut h = fnv1a(FNV_OFFSET, b"sev");
                for (band, count) in buckets {
                    h = fnv1a(h, band.abbrev().as_bytes());
                    h = fnv1a(h, &(*count as u64).to_le_bytes());
                }
                h
            }
            QueryResult::CweHistogram(buckets) => {
                let mut h = fnv1a(FNV_OFFSET, b"cwe");
                for (id, count) in buckets {
                    h = fnv1a(h, &id.number().to_le_bytes());
                    h = fnv1a(h, &(*count as u64).to_le_bytes());
                }
                h
            }
            QueryResult::Quality(q) => {
                let mut h = fnv1a(FNV_OFFSET, b"qual");
                if let Some((score, issues)) = q {
                    h = fnv1a(h, &[score.completeness, score.consistency, score.accuracy]);
                    for issue in *issues {
                        h = fnv1a(h, &[issue.kind.code(), issue.severity.code()]);
                        match &issue.resolution {
                            Resolution::AutoFixed { fix } => {
                                h = fnv1a(h, b"fix");
                                h = fnv1a(h, fix.as_bytes());
                            }
                            Resolution::NeedsReview => h = fnv1a(h, b"rev"),
                        }
                        h = fnv1a(h, issue.evidence.as_bytes());
                    }
                }
                h
            }
            QueryResult::QualityHistogram(buckets) => {
                let mut h = fnv1a(FNV_OFFSET, b"qhst");
                for (bucket, count) in buckets {
                    h = fnv1a(h, &[*bucket]);
                    h = fnv1a(h, &(*count as u64).to_le_bytes());
                }
                h
            }
        }
    }
}

/// Anything that can answer [`Query`]s over one database.
///
/// Both the sharded index and the linear-scan replica implement this; the
/// benches and tests drive whole workloads through the trait so the two
/// paths stay comparable query-for-query.
pub trait QueryEngine {
    /// Answers one query in canonical form.
    fn execute<'db>(&'db self, query: &Query) -> QueryResult<'db>;
}

/// Order-sensitive digest of a whole workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSummary {
    /// Combined checksum over every result, in query order.
    pub checksum: u64,
    /// Total items returned across all queries.
    pub items: usize,
}

/// Runs every query through `engine`, folding results into a summary.
pub fn run_workload<E: QueryEngine + ?Sized>(engine: &E, queries: &[Query]) -> WorkloadSummary {
    let mut checksum = FNV_OFFSET;
    let mut items = 0usize;
    for query in queries {
        let result = engine.execute(query);
        checksum = fnv1a(checksum, &result.checksum().to_le_bytes());
        items += result.len();
    }
    WorkloadSummary { checksum, items }
}

/// The effective severity band served for an entry: the modern v3 band
/// when scored, else the v2 band, else `None` (unscored entries are
/// invisible to severity queries).
pub(crate) fn effective_severity(entry: &CveEntry) -> Option<Severity> {
    entry.severity_v3().or_else(|| entry.severity_v2())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_sensitive() {
        let a: CveId = "CVE-2001-0001".parse().unwrap();
        let b: CveId = "CVE-2001-0002".parse().unwrap();
        let fwd = QueryResult::Ids(vec![a, b]).checksum();
        let rev = QueryResult::Ids(vec![b, a]).checksum();
        assert_ne!(fwd, rev);
        assert_ne!(QueryResult::Ids(vec![a]).checksum(), fwd);
    }

    #[test]
    fn checksum_distinguishes_variants() {
        let empty_ids = QueryResult::Ids(Vec::new());
        let miss = QueryResult::Entry(None);
        assert_ne!(empty_ids.checksum(), miss.checksum());
        assert!(empty_ids.is_empty());
        assert!(miss.is_empty());
    }

    #[test]
    fn histogram_checksums_cover_counts() {
        let one = QueryResult::SeverityHistogram(vec![(Severity::High, 1)]);
        let two = QueryResult::SeverityHistogram(vec![(Severity::High, 2)]);
        assert_ne!(one.checksum(), two.checksum());
        assert_eq!(one.len(), 1);
    }
}
