//! # nvd-serve
//!
//! A sharded read path over the cleaned NVD database — the serving layer of
//! the `nvd-clean` workspace (the Rust reproduction of *"Cleaning the NVD"*,
//! Anwar et al., DSN 2021).
//!
//! The NVD-users study (Wunder et al., arXiv:2408.10695) finds
//! practitioners' top asks are a *faster, more queryable, more reliable*
//! NVD interface. This crate is that interface for an in-memory cleaned
//! corpus: [`ServeIndex`] loads a [`Database`](nvd_model::database::Database)
//! into sharded indexes (hash-sharded CVE id shards, owned sorted
//! vendor/product name universes with per-name postings, CWE /
//! severity-band / publication-date secondary indexes) behind the typed
//! [`Query`] API. [`LinearScan`] is the frozen pre-index replica — every
//! query answered by a full database walk — kept as the benchmark baseline
//! and parity oracle.
//!
//! The index splits into an owned [`ServeIndexState`] plus a borrowed
//! entry view, so dated delta feeds can be absorbed **warm**: detach the
//! state, push the delta into the database, update only the touched
//! shards/postings with [`ServeIndexState::apply_delta`], and re-attach —
//! the result is digest-identical to a full rebuild.
//!
//! The cleaning pipeline's per-CVE quality ledger is served through the
//! same API: attach it with [`ServeIndex::with_quality`] (or refresh a
//! warm state via [`ServeIndexState::set_quality`] after a delta), then
//! ask [`Query::QualityLookup`] for one entry's typed issue record and
//! score, or [`Query::QualityHistogram`] for corpus score-decile counts
//! on any axis. Engines without an attached ledger serve every entry as
//! issue-free, so quality queries stay answerable (and parity-checkable)
//! everywhere.
//!
//! **Determinism contract:** query answers are *canonical* (see
//! [`query`]), so results are bit-identical at any shard count and any
//! `NVD_JOBS`, and identical between [`ServeIndex`] and [`LinearScan`].
//! The workspace determinism suite and the `serve` bench enforce all three
//! equalities before any timing is taken.
//!
//! [`workload`] generates deterministic synthetic traffic (zipf point
//! lookups, bursty watch scans, mixed range/histogram polls) to drive the
//! benches and any future real front end.
//!
//! ## Example
//!
//! ```
//! use nvd_serve::{Query, QueryEngine, ServeIndex};
//! use nvd_synth::{generate, SynthConfig};
//!
//! let corpus = generate(&SynthConfig::with_scale(0.003, 1));
//! let index = ServeIndex::build(&corpus.database);
//! let entry = corpus.database.iter().next().unwrap();
//! // Point lookup: one shard hash + one binary search.
//! assert_eq!(index.get(entry.id).map(|e| e.id), Some(entry.id));
//! // Watch query: interned postings, ids ascending.
//! let vendor = entry.affected.first().map(|c| c.vendor.clone());
//! if let Some(vendor) = vendor {
//!     let result = index.execute(&Query::VendorWatch(vendor));
//!     assert!(result.len() >= 1);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod index;
pub mod query;
pub mod scan;
pub mod workload;

pub use index::{ServeIndex, ServeIndexState, UpdateError};
pub use nvd_clean::quality::{QualityIssue, QualityLedger, QualityScore, ScoreAxis};
pub use query::{run_workload, Query, QueryEngine, QueryResult, WorkloadSummary};
pub use scan::LinearScan;
pub use workload::{generate_workload, WorkloadProfile};

#[cfg(test)]
mod tests {
    use nvd_model::prelude::{CveId, Database, Date};
    use nvd_synth::{generate, SynthConfig};

    use super::*;

    fn corpus_db() -> Database {
        generate(&SynthConfig::with_scale(0.004, 33)).database
    }

    #[test]
    fn point_lookup_agrees_with_database_index() {
        let db = corpus_db();
        let index = ServeIndex::build(&db);
        assert_eq!(index.len(), db.len());
        for entry in db.iter() {
            assert_eq!(index.get(entry.id).map(|e| e.id), Some(entry.id));
        }
        let absent: CveId = "CVE-1999-9999999".parse().unwrap();
        assert!(index.get(absent).is_none());
    }

    #[test]
    fn every_query_matches_linear_scan() {
        let db = corpus_db();
        let index = ServeIndex::build(&db);
        let scan = LinearScan::new(&db);
        let workload = generate_workload(&db, &WorkloadProfile::mixed(2_000), 5);
        for query in &workload {
            assert_eq!(
                index.execute(query),
                scan.execute(query),
                "index and scan disagree on {query:?}"
            );
        }
    }

    #[test]
    fn shard_count_does_not_change_answers() {
        let db = corpus_db();
        let scan = LinearScan::new(&db);
        let workload = generate_workload(&db, &WorkloadProfile::mixed(1_000), 17);
        let reference = run_workload(&scan, &workload);
        for shards in [1usize, 3, 16, 64] {
            let index = ServeIndex::with_shards(&db, shards);
            assert_eq!(
                run_workload(&index, &workload),
                reference,
                "answers changed at shard_count={shards}"
            );
        }
    }

    #[test]
    fn patch_window_is_date_then_id_ordered() {
        let db = corpus_db();
        let index = ServeIndex::build(&db);
        let stats = db.stats();
        let (min_year, max_year) = stats.year_range.unwrap();
        let since = Date::from_ymd(min_year, 1, 1).unwrap();
        let until = Date::from_ymd(max_year, 12, 31).unwrap();
        let QueryResult::Ids(ids) = index.execute(&Query::PatchWindow { since, until }) else {
            panic!("patch window must return ids");
        };
        assert_eq!(ids.len(), db.len(), "whole-range window covers everything");
        let keyed: Vec<_> = ids
            .iter()
            .map(|id| (db.get(id).unwrap().published, *id))
            .collect();
        assert!(keyed.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn histograms_cover_scored_entries_exactly() {
        let db = corpus_db();
        let index = ServeIndex::build(&db);
        let QueryResult::SeverityHistogram(buckets) =
            index.execute(&Query::SeverityHistogram { window: None })
        else {
            panic!("severity histogram expected");
        };
        let scored = db
            .iter()
            .filter(|e| e.cvss_v2.is_some() || e.cvss_v3.is_some())
            .count();
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<usize>(), scored);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(buckets.iter().all(|&(_, c)| c > 0));
    }

    #[test]
    fn build_is_bit_identical_across_job_counts() {
        let db = corpus_db();
        let serial = minipar::with_jobs(1, || ServeIndex::build(&db).digest());
        let wide = minipar::with_jobs(4, || ServeIndex::build(&db).digest());
        assert_eq!(serial, wide, "index build diverged across job counts");
    }

    #[test]
    fn apply_delta_matches_full_rebuild_at_every_feed() {
        let stream = nvd_synth::delta::generate_delta_stream(&SynthConfig::with_scale(0.004, 7), 3);
        for shards in [1usize, 3, 16] {
            let mut db = stream.base.clone();
            let mut state = ServeIndex::with_shards(&db, shards).into_state();
            for feed in &stream.feeds {
                let entries = feed.entries();
                let touched: Vec<CveId> = entries.iter().map(|e| e.id).collect();
                for entry in entries {
                    db.push(entry);
                }
                state.apply_delta(&db, &touched);
                assert_eq!(
                    state.digest(),
                    ServeIndex::with_shards(&db, shards).digest(),
                    "warm state diverged from rebuild at shard_count={shards}"
                );
            }
            let warm = state.attach(&db);
            let fresh = ServeIndex::with_shards(&db, shards);
            let workload = generate_workload(&db, &WorkloadProfile::mixed(1_000), 9);
            assert_eq!(
                run_workload(&warm, &workload),
                run_workload(&fresh, &workload),
                "warm answers diverged at shard_count={shards}"
            );
        }
    }

    #[test]
    fn try_apply_delta_rejects_without_tearing() {
        let db0 = corpus_db();
        let mut state = ServeIndex::with_shards(&db0, 8).into_state();
        let before = state.digest();

        // A touched id the database has never seen.
        let missing: CveId = "CVE-1999-9999999".parse().unwrap();
        assert_eq!(
            state.try_apply_delta(&db0, &[missing]),
            Err(UpdateError::MissingEntry { id: missing })
        );
        assert_eq!(state.digest(), before, "rejected update tore the state");

        // A new entry inserted out of push order: rebuild the database
        // with the fresh entry first, so it is present but misplaced.
        let mut fresh_entry = db0.iter().next().unwrap().clone();
        fresh_entry.id = "CVE-2030-0001".parse().unwrap();
        let mut shuffled = Database::new();
        shuffled.push(fresh_entry.clone());
        for e in db0.iter() {
            shuffled.push(e.clone());
        }
        assert_eq!(
            state.try_apply_delta(&shuffled, &[fresh_entry.id]),
            Err(UpdateError::MisplacedEntry {
                id: fresh_entry.id,
                expected_index: db0.len(),
            })
        );
        assert_eq!(state.digest(), before, "rejected update tore the state");

        // Replaying the corrected delta afterwards equals a fresh build.
        let mut db = db0.clone();
        db.push(fresh_entry.clone());
        state
            .try_apply_delta(&db, &[fresh_entry.id])
            .expect("corrected delta applies");
        assert_eq!(state.digest(), ServeIndex::with_shards(&db, 8).digest());
    }

    #[test]
    fn apply_delta_evicts_and_splices_names() {
        let db0 = corpus_db();
        let mut db = db0.clone();
        let mut state = ServeIndex::with_shards(&db, 8).into_state();
        // Rewrite one entry into another's shape: its old names lose a
        // posting (evicting any singleton name), foreign names gain one
        // (splicing in any new name), its severity bucket and date slot
        // both move.
        let mut iter = db0.iter();
        let victim = iter.next().unwrap();
        let donor = iter.next().unwrap();
        let mut modified = victim.clone();
        modified.affected = donor.affected.clone();
        modified.published = donor.published;
        modified.cvss_v2 = None;
        modified.cvss_v3 = None;
        db.push(modified);
        state.apply_delta(&db, &[victim.id]);
        assert_eq!(state.digest(), ServeIndex::with_shards(&db, 8).digest());
        let warm = state.attach(&db);
        assert_eq!(
            warm.get(victim.id).map(|e| &e.affected),
            Some(&donor.affected)
        );
    }

    /// Cleans the corpus at (0.004, 33) and returns `(cleaned, ledger)`.
    /// Backport off: quality parity does not depend on it and the
    /// stratified training pass dominates test wall-clock.
    fn cleaned_with_ledger() -> (Database, QualityLedger) {
        use nvd_clean::cleaner::{CleanOptions, Cleaner};
        use nvd_clean::names::OracleVerifier;
        let corpus = generate(&SynthConfig::with_scale(0.004, 33));
        let cleaner = Cleaner::new(CleanOptions {
            run_backport: false,
            ..CleanOptions::default()
        });
        let oracle = OracleVerifier::new(corpus.truth.vendor_alias_map());
        let out = cleaner.clean(&corpus.database, &corpus.archive, &oracle);
        (out.database, out.ledger)
    }

    #[test]
    fn quality_answers_match_linear_scan_at_any_shard_count() {
        let (db, ledger) = cleaned_with_ledger();
        assert!(!ledger.is_empty(), "fixture must surface quality issues");
        let scan = LinearScan::with_ledger(&db, &ledger);
        let absent: CveId = "CVE-1999-9999999".parse().unwrap();
        let axes = [
            ScoreAxis::Completeness,
            ScoreAxis::Consistency,
            ScoreAxis::Accuracy,
            ScoreAxis::Overall,
        ];
        for shards in [1usize, 3, 16] {
            let index = ServeIndex::with_shards(&db, shards).with_quality(&ledger);
            for entry in db.iter() {
                let q = Query::QualityLookup(entry.id);
                assert_eq!(
                    index.execute(&q),
                    scan.execute(&q),
                    "quality lookup diverged at shard_count={shards}"
                );
            }
            assert_eq!(
                index.execute(&Query::QualityLookup(absent)),
                QueryResult::Quality(None)
            );
            for axis in axes {
                let q = Query::QualityHistogram { axis };
                let result = index.execute(&q);
                assert_eq!(
                    result,
                    scan.execute(&q),
                    "quality histogram diverged at shard_count={shards}"
                );
                let QueryResult::QualityHistogram(buckets) = result else {
                    panic!("quality histogram expected");
                };
                assert_eq!(
                    buckets.iter().map(|(_, c)| c).sum::<usize>(),
                    db.len(),
                    "every served entry lands in exactly one bucket"
                );
            }
        }
    }

    #[test]
    fn unattached_quality_serves_perfect_scores() {
        let db = corpus_db();
        let index = ServeIndex::build(&db);
        let scan = LinearScan::new(&db);
        let id = db.iter().next().unwrap().id;
        let hit = index.execute(&Query::QualityLookup(id));
        assert_eq!(hit, scan.execute(&Query::QualityLookup(id)));
        let QueryResult::Quality(Some((score, issues))) = hit else {
            panic!("known id must hit");
        };
        assert_eq!(score, QualityScore::perfect());
        assert!(issues.is_empty());
        let q = Query::QualityHistogram {
            axis: ScoreAxis::Overall,
        };
        assert_eq!(index.execute(&q), scan.execute(&q));
        assert_eq!(
            index.execute(&q),
            QueryResult::QualityHistogram(vec![(10, db.len())])
        );
    }

    #[test]
    fn digest_covers_attached_quality() {
        let (db, ledger) = cleaned_with_ledger();
        let bare = ServeIndex::build(&db).digest();
        let attached = ServeIndex::build(&db).with_quality(&ledger).digest();
        assert_ne!(bare, attached, "attaching a non-empty ledger must show");
        // The warm path — set_quality on a detached state — lands on the
        // same digest as the build-time attach.
        let mut state = ServeIndex::build(&db).into_state();
        state.set_quality(&ledger);
        assert_eq!(state.digest(), attached);
    }

    #[test]
    fn empty_database_serves_empty_answers() {
        let db = Database::new();
        let index = ServeIndex::with_shards(&db, 4);
        assert!(index.is_empty());
        let absent: CveId = "CVE-2020-0001".parse().unwrap();
        assert_eq!(index.execute(&Query::PointLookup(absent)).len(), 0);
        assert_eq!(index.execute(&Query::CweHistogram).len(), 0);
    }
}
