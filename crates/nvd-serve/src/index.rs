//! The immutable sharded index set behind the read path.
//!
//! [`ServeIndex::build`] loads a (cleaned) [`Database`] into:
//!
//! * **hash-sharded id shards** — each CVE id is routed to
//!   `fnv1a(id) % shard_count`; within a shard, entry indices are sorted by
//!   id, so a point lookup is one hash plus one binary search over `n/S`
//!   ids. Shard routing is a pure function of the id, never of insertion
//!   order, so any shard count serves identical answers;
//! * **interned vendor/product postings** — the §4.2 engine's
//!   [`NameTable`] interns each name universe into dense ids in ascending
//!   name order; postings are per-name CVE lists sorted by id;
//! * **secondary indexes** — per-CWE and per-severity-band postings, plus
//!   one `(published, id)`-ordered permutation for patch-window range
//!   scans and windowed histograms.
//!
//! Construction fans over `minipar` (per-shard sorts, chunked postings
//! proposal) with the workspace's standing guarantee: the built index — and
//! therefore every query answer — is bit-identical at any `NVD_JOBS`.

use nvd_clean::names::NameTable;
use nvd_model::prelude::{
    CveEntry, CveId, CweId, Database, Date, ProductName, Severity, VendorName,
};

use crate::query::{
    effective_severity, fnv1a, hash_cve_id, Query, QueryEngine, QueryResult, FNV_OFFSET,
};

/// Entries per work unit for the chunked postings-proposal passes. Small
/// enough to load-balance a skewed corpus, large enough that the inline
/// `jobs = 1` path pays no chunking overhead worth measuring.
const POSTING_CHUNK: usize = 256;

/// An immutable sharded view over one database.
///
/// The index borrows the database; rebuilding after a cleaning pass is the
/// intended lifecycle (the database itself is treated as immutable input
/// everywhere in the workspace).
#[derive(Debug)]
pub struct ServeIndex<'a> {
    entries: Vec<&'a CveEntry>,
    /// `ids[i]` is `entries[i].id`, kept dense for sort keys and lookups.
    ids: Vec<CveId>,
    shard_count: usize,
    /// Per-shard entry indices, each sorted ascending by CVE id.
    id_shards: Vec<Vec<u32>>,
    vendors: NameTable<'a, VendorName>,
    /// Per-vendor-id entry indices, sorted ascending by CVE id.
    vendor_postings: Vec<Vec<u32>>,
    products: NameTable<'a, ProductName>,
    /// Per-product-id entry indices, sorted ascending by CVE id.
    product_postings: Vec<Vec<u32>>,
    /// Non-empty per-CWE postings, ascending by CWE id.
    cwe_postings: Vec<(CweId, Vec<u32>)>,
    /// Non-empty per-band postings, ascending by severity band.
    severity_postings: Vec<(Severity, Vec<u32>)>,
    /// All entry indices, sorted ascending by `(published, id)`.
    date_order: Vec<u32>,
}

impl<'a> ServeIndex<'a> {
    /// Default shard count: enough to keep per-shard binary searches short
    /// at paper scale without fragmenting a small corpus.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Builds the index with [`Self::DEFAULT_SHARDS`] id shards.
    pub fn build(db: &'a Database) -> Self {
        Self::with_shards(db, Self::DEFAULT_SHARDS)
    }

    /// Builds the index with an explicit id-shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn with_shards(db: &'a Database, shard_count: usize) -> Self {
        assert!(shard_count > 0, "ServeIndex: shard_count must be positive");
        let entries: Vec<&'a CveEntry> = db.iter().collect();
        let ids: Vec<CveId> = entries.iter().map(|e| e.id).collect();
        let n = entries.len();

        // --- id shards: serial routing, parallel per-shard sort. -------
        let mut raw_shards: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        for (i, &id) in ids.iter().enumerate() {
            raw_shards[(hash_cve_id(id) % shard_count as u64) as usize].push(i as u32);
        }
        let id_shards: Vec<Vec<u32>> = minipar::par_map(&raw_shards, |shard| {
            let mut sorted = shard.clone();
            sorted.sort_unstable_by_key(|&i| ids[i as usize]);
            sorted
        });

        // --- interned name universes (ids in ascending name order). ----
        let vendors = NameTable::from_sorted_iter(db.vendor_set());
        let products = NameTable::from_sorted_iter(db.product_set());

        // --- postings: chunked parallel proposal, ordered assembly. ----
        let vendor_pairs = propose_pairs(&entries, |entry, out| {
            for cpe in &entry.affected {
                out.push(vendors.id_of(cpe.vendor.as_str()).expect("interned vendor"));
            }
        });
        let vendor_postings = group_postings(vendor_pairs, vendors.len(), &ids);
        let product_pairs = propose_pairs(&entries, |entry, out| {
            for cpe in &entry.affected {
                out.push(
                    products
                        .id_of(cpe.product.as_str())
                        .expect("interned product"),
                );
            }
        });
        let product_postings = group_postings(product_pairs, products.len(), &ids);

        // --- secondary indexes (serial: one cheap pass each). ----------
        let mut cwe_pairs: Vec<(CweId, u32)> = Vec::new();
        let mut severity_pairs: Vec<(Severity, u32)> = Vec::new();
        for (i, entry) in entries.iter().enumerate() {
            if let Some(cwe) = entry.effective_cwe().specific() {
                cwe_pairs.push((cwe, i as u32));
            }
            if let Some(band) = effective_severity(entry) {
                severity_pairs.push((band, i as u32));
            }
        }
        let cwe_postings = group_keyed(cwe_pairs, &ids);
        let severity_postings = group_keyed(severity_pairs, &ids);

        let mut date_order: Vec<u32> = (0..n as u32).collect();
        date_order.sort_unstable_by_key(|&i| (entries[i as usize].published, ids[i as usize]));

        Self {
            entries,
            ids,
            shard_count,
            id_shards,
            vendors,
            vendor_postings,
            products,
            product_postings,
            cwe_postings,
            severity_postings,
            date_order,
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is over an empty database.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of id shards.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Number of distinct interned vendors.
    pub fn vendor_count(&self) -> usize {
        self.vendors.len()
    }

    /// Number of distinct interned products.
    pub fn product_count(&self) -> usize {
        self.products.len()
    }

    /// Point lookup: shard hash plus binary search within the shard.
    pub fn get(&self, id: CveId) -> Option<&'a CveEntry> {
        let shard = &self.id_shards[(hash_cve_id(id) % self.shard_count as u64) as usize];
        shard
            .binary_search_by_key(&id, |&i| self.ids[i as usize])
            .ok()
            .map(|pos| self.entries[shard[pos] as usize])
    }

    /// Structural digest over every shard and posting list.
    ///
    /// Two builds of the same database at the same shard count must agree
    /// exactly — the determinism suite compares `NVD_JOBS` 1 vs 4 builds
    /// through this.
    pub fn digest(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &(self.shard_count as u64).to_le_bytes());
        let fold_postings = |h: &mut u64, postings: &[Vec<u32>]| {
            for list in postings {
                *h = fnv1a(*h, &(list.len() as u64).to_le_bytes());
                for &i in list {
                    *h = fnv1a(*h, &hash_cve_id(self.ids[i as usize]).to_le_bytes());
                }
            }
        };
        fold_postings(&mut h, &self.id_shards);
        fold_postings(&mut h, &self.vendor_postings);
        fold_postings(&mut h, &self.product_postings);
        for (cwe, list) in &self.cwe_postings {
            h = fnv1a(h, &cwe.number().to_le_bytes());
            fold_postings(&mut h, std::slice::from_ref(list));
        }
        for (band, list) in &self.severity_postings {
            h = fnv1a(h, band.abbrev().as_bytes());
            fold_postings(&mut h, std::slice::from_ref(list));
        }
        fold_postings(&mut h, std::slice::from_ref(&self.date_order));
        h
    }

    /// The `date_order` slice covering `since..=until`.
    fn window_slice(&self, since: Date, until: Date) -> &[u32] {
        let lower = self
            .date_order
            .partition_point(|&i| self.entries[i as usize].published < since);
        let upper = self
            .date_order
            .partition_point(|&i| self.entries[i as usize].published <= until);
        &self.date_order[lower..upper]
    }

    fn ids_of(&self, postings: &[u32]) -> Vec<CveId> {
        postings.iter().map(|&i| self.ids[i as usize]).collect()
    }
}

/// Chunked parallel postings proposal: maps each entry to its name ids,
/// returning `(name_id, entry_idx)` pairs concatenated in entry order.
/// Chunk boundaries are fixed by [`POSTING_CHUNK`], so the pair stream is
/// identical at any thread count; duplicate pairs (one entry, several CPEs
/// of the same name) are collapsed later in [`group_postings`].
fn propose_pairs(
    entries: &[&CveEntry],
    emit: impl Fn(&CveEntry, &mut Vec<u32>) + Sync,
) -> Vec<(u32, u32)> {
    let idx: Vec<u32> = (0..entries.len() as u32).collect();
    minipar::par_chunks(&idx, POSTING_CHUNK, |_ci, part| {
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(part.len());
        let mut scratch: Vec<u32> = Vec::new();
        for &i in part {
            scratch.clear();
            emit(entries[i as usize], &mut scratch);
            pairs.extend(scratch.iter().map(|&nid| (nid, i)));
        }
        pairs
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Groups `(name_id, entry_idx)` pairs into per-name postings sorted by
/// CVE id.
fn group_postings(mut pairs: Vec<(u32, u32)>, names: usize, ids: &[CveId]) -> Vec<Vec<u32>> {
    pairs.sort_unstable_by_key(|&(nid, i)| (nid, ids[i as usize]));
    pairs.dedup();
    let mut postings: Vec<Vec<u32>> = vec![Vec::new(); names];
    for (nid, i) in pairs {
        postings[nid as usize].push(i);
    }
    postings
}

/// Groups `(key, entry_idx)` pairs into non-empty per-key postings sorted
/// by CVE id, keys ascending.
fn group_keyed<K: Ord + Copy>(mut pairs: Vec<(K, u32)>, ids: &[CveId]) -> Vec<(K, Vec<u32>)> {
    pairs.sort_unstable_by_key(|&(k, i)| (k, ids[i as usize]));
    let mut grouped: Vec<(K, Vec<u32>)> = Vec::new();
    for (k, i) in pairs {
        match grouped.last_mut() {
            Some((key, list)) if *key == k => list.push(i),
            _ => grouped.push((k, vec![i])),
        }
    }
    grouped
}

impl QueryEngine for ServeIndex<'_> {
    fn execute<'db>(&'db self, query: &Query) -> QueryResult<'db> {
        match query {
            Query::PointLookup(id) => QueryResult::Entry(self.get(*id)),
            Query::VendorWatch(vendor) => {
                let ids = match self.vendors.id_of(vendor.as_str()) {
                    Some(vid) => self.ids_of(&self.vendor_postings[vid as usize]),
                    None => Vec::new(),
                };
                QueryResult::Ids(ids)
            }
            Query::ProductWatch(product) => {
                let ids = match self.products.id_of(product.as_str()) {
                    Some(pid) => self.ids_of(&self.product_postings[pid as usize]),
                    None => Vec::new(),
                };
                QueryResult::Ids(ids)
            }
            Query::PatchWindow { since, until } => {
                QueryResult::Ids(self.ids_of(self.window_slice(*since, *until)))
            }
            Query::SeverityHistogram { window } => match window {
                None => QueryResult::SeverityHistogram(
                    self.severity_postings
                        .iter()
                        .map(|(band, list)| (*band, list.len()))
                        .collect(),
                ),
                Some((since, until)) => {
                    let mut counts = [0usize; 5];
                    for &i in self.window_slice(*since, *until) {
                        if let Some(band) = effective_severity(self.entries[i as usize]) {
                            counts[band as usize] += 1;
                        }
                    }
                    QueryResult::SeverityHistogram(histogram_from_counts(&counts))
                }
            },
            Query::CweHistogram => QueryResult::CweHistogram(
                self.cwe_postings
                    .iter()
                    .map(|(cwe, list)| (*cwe, list.len()))
                    .collect(),
            ),
        }
    }
}

/// Converts a per-band count array (indexed by `Severity as usize`) into
/// canonical non-empty ascending buckets.
pub(crate) fn histogram_from_counts(counts: &[usize; 5]) -> Vec<(Severity, usize)> {
    const BANDS: [Severity; 5] = [
        Severity::None,
        Severity::Low,
        Severity::Medium,
        Severity::High,
        Severity::Critical,
    ];
    BANDS
        .iter()
        .zip(counts)
        .filter(|(_, &c)| c > 0)
        .map(|(&b, &c)| (b, c))
        .collect()
}
