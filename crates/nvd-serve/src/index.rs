//! The sharded index set behind the read path.
//!
//! [`ServeIndex::build`] loads a (cleaned) [`Database`] into:
//!
//! * **hash-sharded id shards** — each CVE id is routed to
//!   `fnv1a(id) % shard_count`; within a shard, entry indices are sorted by
//!   id, so a point lookup is one hash plus one binary search over `n/S`
//!   ids. Shard routing is a pure function of the id, never of insertion
//!   order, so any shard count serves identical answers;
//! * **owned vendor/product name universes with postings** — each name
//!   universe is a sorted `Vec` of owned names (dense id = position, in
//!   ascending name order, binary-search lookup); postings are per-name CVE
//!   lists sorted by id;
//! * **secondary indexes** — per-CWE and per-severity-band postings, plus
//!   one `(published, id)`-ordered permutation for patch-window range
//!   scans and windowed histograms.
//!
//! Construction fans over `minipar` (per-shard sorts, chunked postings
//! proposal) with the workspace's standing guarantee: the built index — and
//! therefore every query answer — is bit-identical at any `NVD_JOBS`.
//!
//! # Staying warm under delta feeds
//!
//! The index splits into an owned [`ServeIndexState`] and the borrowed
//! entry view. When a delta arrives, detach the state
//! ([`ServeIndex::into_state`]), push the delta's entries into the
//! database, surgically update the touched structures
//! ([`ServeIndexState::apply_delta`]), and re-attach
//! ([`ServeIndexState::attach`]). Every structure is a canonical sorted
//! function of the entry set — names whose last posting disappears are
//! evicted, new names are spliced in at their sorted position — so the
//! updated state is **bit-identical** (digest-equal) to a fresh build of
//! the updated database, which `tests/determinism.rs` enforces.

use std::collections::{BTreeMap, BTreeSet};

use nvd_clean::quality::{QualityIssue, QualityLedger, QualityScore, Resolution};
use nvd_model::prelude::{
    CveEntry, CveId, CweId, Database, Date, ProductName, Severity, VendorName,
};

use crate::query::{
    effective_severity, fnv1a, hash_cve_id, Query, QueryEngine, QueryResult, FNV_OFFSET,
};

/// Entries per work unit for the chunked postings-proposal passes. Small
/// enough to load-balance a skewed corpus, large enough that the inline
/// `jobs = 1` path pays no chunking overhead worth measuring.
const POSTING_CHUNK: usize = 256;

/// Why one warm update was rejected. Produced by
/// [`ServeIndexState::try_apply_delta`] *before* any structure is
/// touched: an `Err` leaves the state digest-identical to before the
/// call, so the caller can roll back by simply not committing its
/// database mutation and replay a corrected delta later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    /// A touched id is absent from the database.
    MissingEntry {
        /// The missing id.
        id: CveId,
    },
    /// A touched id is new to the index but its database entry is not at
    /// the append position — i.e. the database was not grown with
    /// `Database::push` semantics.
    MisplacedEntry {
        /// The misplaced id.
        id: CveId,
        /// The database index the entry was expected at.
        expected_index: usize,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingEntry { id } => {
                write!(f, "serve update: touched id {id} absent from database")
            }
            Self::MisplacedEntry { id, expected_index } => write!(
                f,
                "serve update: new id {id} not at append position {expected_index}"
            ),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Everything the index derived from one entry — kept so a modified
/// redelivery can retire its old version's postings without re-reading the
/// (already replaced) old entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EntryProjection {
    published: Date,
    /// Distinct affected vendors, ascending.
    vendors: Vec<VendorName>,
    /// Distinct affected products, ascending.
    products: Vec<ProductName>,
    cwe: Option<CweId>,
    severity: Option<Severity>,
}

impl EntryProjection {
    fn of(entry: &CveEntry) -> Self {
        let mut vendors: Vec<VendorName> =
            entry.affected.iter().map(|c| c.vendor.clone()).collect();
        vendors.sort_unstable();
        vendors.dedup();
        let mut products: Vec<ProductName> =
            entry.affected.iter().map(|c| c.product.clone()).collect();
        products.sort_unstable();
        products.dedup();
        Self {
            published: entry.published,
            vendors,
            products,
            cwe: entry.effective_cwe().specific(),
            severity: effective_severity(entry),
        }
    }
}

/// The owned half of a [`ServeIndex`]: every shard, name universe, and
/// posting list, independent of the database's borrow — so it can outlive
/// a database mutation and absorb deltas in place via
/// [`ServeIndexState::apply_delta`].
#[derive(Debug, Clone)]
pub struct ServeIndexState {
    /// `ids[i]` is the id of database entry `i`, in insertion order.
    ids: Vec<CveId>,
    shard_count: usize,
    /// Per-shard entry indices, each sorted ascending by CVE id.
    id_shards: Vec<Vec<u32>>,
    /// Sorted owned vendor universe; dense vendor id = position.
    vendor_names: Vec<VendorName>,
    /// Per-vendor-id entry indices, sorted ascending by CVE id.
    vendor_postings: Vec<Vec<u32>>,
    /// Sorted owned product universe; dense product id = position.
    product_names: Vec<ProductName>,
    /// Per-product-id entry indices, sorted ascending by CVE id.
    product_postings: Vec<Vec<u32>>,
    /// Non-empty per-CWE postings, ascending by CWE id.
    cwe_postings: Vec<(CweId, Vec<u32>)>,
    /// Non-empty per-band postings, ascending by severity band.
    severity_postings: Vec<(Severity, Vec<u32>)>,
    /// All entry indices, sorted ascending by `(published, id)`.
    date_order: Vec<u32>,
    /// Per-entry projections, aligned with `ids`.
    projections: Vec<EntryProjection>,
    /// Per-CVE quality issues for served entries, attached via
    /// [`ServeIndexState::set_quality`]; ids absent here serve as
    /// issue-free (perfect score). Empty until a ledger is attached.
    quality: BTreeMap<CveId, Vec<QualityIssue>>,
}

/// A sharded view over one database: the owned [`ServeIndexState`] plus
/// borrowed entry references for answer materialisation.
///
/// The view borrows the database. For batch workloads, rebuild after a
/// cleaning pass; for delta feeds, round-trip through
/// [`ServeIndex::into_state`] / [`ServeIndexState::attach`].
#[derive(Debug)]
pub struct ServeIndex<'a> {
    entries: Vec<&'a CveEntry>,
    state: ServeIndexState,
}

/// Binary search over a sorted owned name slice (dense id = position).
macro_rules! name_id_of {
    ($names:expr, $s:expr) => {
        $names
            .binary_search_by(|n| n.as_str().cmp($s))
            .ok()
            .map(|i| i as u32)
    };
}

impl ServeIndexState {
    /// Builds the owned state for `db` with `shard_count` id shards.
    pub fn build(db: &Database, shard_count: usize) -> Self {
        assert!(shard_count > 0, "ServeIndex: shard_count must be positive");
        let entries: Vec<&CveEntry> = db.iter().collect();
        let ids: Vec<CveId> = entries.iter().map(|e| e.id).collect();
        let n = entries.len();

        // --- id shards: serial routing, parallel per-shard sort. -------
        let mut raw_shards: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        for (i, &id) in ids.iter().enumerate() {
            raw_shards[(hash_cve_id(id) % shard_count as u64) as usize].push(i as u32);
        }
        let id_shards: Vec<Vec<u32>> = minipar::par_map(&raw_shards, |shard| {
            let mut sorted = shard.clone();
            sorted.sort_unstable_by_key(|&i| ids[i as usize]);
            sorted
        });

        // --- owned name universes (dense ids in ascending name order). -
        let vendor_names: Vec<VendorName> = db.vendor_set().into_iter().cloned().collect();
        let product_names: Vec<ProductName> = db.product_set().into_iter().cloned().collect();

        // --- postings: chunked parallel proposal, ordered assembly. ----
        let vendor_pairs = propose_pairs(&entries, |entry, out| {
            for cpe in &entry.affected {
                out.push(name_id_of!(vendor_names, cpe.vendor.as_str()).expect("interned vendor"));
            }
        });
        let vendor_postings = group_postings(vendor_pairs, vendor_names.len(), &ids);
        let product_pairs = propose_pairs(&entries, |entry, out| {
            for cpe in &entry.affected {
                out.push(
                    name_id_of!(product_names, cpe.product.as_str()).expect("interned product"),
                );
            }
        });
        let product_postings = group_postings(product_pairs, product_names.len(), &ids);

        // --- secondary indexes (serial: one cheap pass each). ----------
        let mut cwe_pairs: Vec<(CweId, u32)> = Vec::new();
        let mut severity_pairs: Vec<(Severity, u32)> = Vec::new();
        for (i, entry) in entries.iter().enumerate() {
            if let Some(cwe) = entry.effective_cwe().specific() {
                cwe_pairs.push((cwe, i as u32));
            }
            if let Some(band) = effective_severity(entry) {
                severity_pairs.push((band, i as u32));
            }
        }
        let cwe_postings = group_keyed(cwe_pairs, &ids);
        let severity_postings = group_keyed(severity_pairs, &ids);

        let mut date_order: Vec<u32> = (0..n as u32).collect();
        date_order.sort_unstable_by_key(|&i| (entries[i as usize].published, ids[i as usize]));

        let projections: Vec<EntryProjection> =
            minipar::par_map(&entries, |e| EntryProjection::of(e));

        Self {
            ids,
            shard_count,
            id_shards,
            vendor_names,
            vendor_postings,
            product_names,
            product_postings,
            cwe_postings,
            severity_postings,
            date_order,
            projections,
            quality: BTreeMap::new(),
        }
    }

    /// Attaches (or refreshes) the quality ledger the read path serves
    /// from, replacing any previously attached issues wholesale.
    ///
    /// Only keyed issues for **indexed** ids are kept — a ledger's
    /// unkeyed records describe quarantined raw documents that never
    /// became entries, so they have no served identity. The replace is a
    /// map rebuild, not an index rebuild: after a warm
    /// [`Self::apply_delta`], calling this with the delta's fresh ledger
    /// brings quality answers up to date while every shard and posting
    /// list stays in place. The refreshed state is digest-identical to a
    /// fresh build of the same database with the same ledger attached.
    pub fn set_quality(&mut self, ledger: &QualityLedger) {
        self.quality = ledger
            .iter()
            .filter(|(id, _)| self.index_of(**id).is_some())
            .map(|(id, issues)| (*id, issues.to_vec()))
            .collect();
    }

    /// Absorbs one delta in place: `db` is the **already-updated**
    /// database (same-id entries replaced, new entries appended — i.e.
    /// `Database::push` semantics) and `touched` lists the delivered ids.
    ///
    /// Only the structures a touched entry participates in are rewritten:
    /// its shard slot, the posting lists of names it gained or lost (names
    /// are spliced in or evicted to keep the universe exactly the set of
    /// in-use names), its CWE/severity buckets, and its `date_order` slot.
    /// Untouched postings are not even visited. The update is serial —
    /// deltas are small — so it is trivially bit-identical at any
    /// `NVD_JOBS`; equality with a fresh build is the contract
    /// `tests/determinism.rs` pins digest-for-digest.
    ///
    /// # Panics
    ///
    /// Panics if a touched id is absent from `db`, or if `db` and the
    /// state disagree about an existing entry's index (i.e. `db` was not
    /// grown with push semantics).
    pub fn apply_delta(&mut self, db: &Database, touched: &[CveId]) {
        for &id in touched {
            let entry = db.get(&id).expect("touched id present in database");
            let new = EntryProjection::of(entry);
            match self.index_of(id) {
                Some(i) => {
                    let old = self.projections[i as usize].clone();
                    if old == new {
                        continue;
                    }
                    self.retire(i, &old, &new);
                    self.admit(i, &old, &new);
                    self.projections[i as usize] = new;
                }
                None => {
                    let i = self.ids.len() as u32;
                    self.ids.push(id);
                    // Entry appended: db.push must have put it at the end.
                    assert_eq!(
                        db.as_slice().get(i as usize).map(|e| e.id),
                        Some(id),
                        "database was not grown with push semantics"
                    );
                    let shard =
                        &mut self.id_shards[(hash_cve_id(id) % self.shard_count as u64) as usize];
                    let pos = shard.partition_point(|&j| self.ids[j as usize] < id);
                    shard.insert(pos, i);
                    let empty = EntryProjection {
                        published: new.published,
                        vendors: Vec::new(),
                        products: Vec::new(),
                        cwe: None,
                        severity: None,
                    };
                    self.admit(i, &empty, &new);
                    let pos = self
                        .date_order
                        .partition_point(|&j| self.date_key(j) < (new.published, id));
                    self.date_order.insert(pos, i);
                    self.projections.push(new);
                }
            }
        }
    }

    /// The rollback-safe variant of [`Self::apply_delta`]: validates the
    /// whole delta upfront and only then commits.
    ///
    /// The checks mirror exactly the panics `apply_delta` would hit —
    /// every touched id must be present in `db`, and ids new to the index
    /// must sit at consecutive append positions (push semantics) — so
    /// after `Ok(())` the commit is infallible, and on `Err` **nothing
    /// was mutated**: the state stays digest-identical to before the
    /// call, never torn mid-update. Replaying a corrected delta after an
    /// `Err` is bit-identical to a fresh build of the corrected database
    /// (enforced in `tests/faults.rs` at shard counts 1/3/16/64).
    ///
    /// # Errors
    ///
    /// [`UpdateError::MissingEntry`] or [`UpdateError::MisplacedEntry`];
    /// see the variants.
    pub fn try_apply_delta(&mut self, db: &Database, touched: &[CveId]) -> Result<(), UpdateError> {
        let mut fresh = self.ids.len();
        let mut seen_new: BTreeSet<CveId> = BTreeSet::new();
        for &id in touched {
            if db.get(&id).is_none() {
                return Err(UpdateError::MissingEntry { id });
            }
            if self.index_of(id).is_none() && seen_new.insert(id) {
                if db.as_slice().get(fresh).map(|e| e.id) != Some(id) {
                    return Err(UpdateError::MisplacedEntry {
                        id,
                        expected_index: fresh,
                    });
                }
                fresh += 1;
            }
        }
        self.apply_delta(db, touched);
        Ok(())
    }

    /// Re-attaches the state to its (updated) database as a queryable
    /// view.
    ///
    /// # Panics
    ///
    /// Panics if `db`'s entries do not line up with the indexed ids —
    /// i.e. the state was not kept in sync via [`Self::apply_delta`].
    pub fn attach(self, db: &Database) -> ServeIndex<'_> {
        let entries: Vec<&CveEntry> = db.iter().collect();
        assert_eq!(entries.len(), self.ids.len(), "entry count diverged");
        for (e, &id) in entries.iter().zip(&self.ids) {
            assert_eq!(e.id, id, "entry order diverged from the indexed ids");
        }
        ServeIndex {
            entries,
            state: self,
        }
    }

    /// Point lookup of an entry index: shard hash plus binary search.
    fn index_of(&self, id: CveId) -> Option<u32> {
        let shard = &self.id_shards[(hash_cve_id(id) % self.shard_count as u64) as usize];
        shard
            .binary_search_by_key(&id, |&i| self.ids[i as usize])
            .ok()
            .map(|pos| shard[pos])
    }

    fn date_key(&self, i: u32) -> (Date, CveId) {
        (self.projections[i as usize].published, self.ids[i as usize])
    }

    /// Removes entry `i` from every structure the old projection put it
    /// in and the new one doesn't.
    fn retire(&mut self, i: u32, old: &EntryProjection, new: &EntryProjection) {
        let id = self.ids[i as usize];
        for v in old.vendors.iter().filter(|v| !new.vendors.contains(v)) {
            let vid = name_id_of!(self.vendor_names, v.as_str()).expect("indexed vendor");
            remove_posting(&mut self.vendor_postings[vid as usize], i);
            if self.vendor_postings[vid as usize].is_empty() {
                self.vendor_names.remove(vid as usize);
                self.vendor_postings.remove(vid as usize);
            }
        }
        for p in old.products.iter().filter(|p| !new.products.contains(p)) {
            let pid = name_id_of!(self.product_names, p.as_str()).expect("indexed product");
            remove_posting(&mut self.product_postings[pid as usize], i);
            if self.product_postings[pid as usize].is_empty() {
                self.product_names.remove(pid as usize);
                self.product_postings.remove(pid as usize);
            }
        }
        if old.cwe != new.cwe {
            if let Some(cwe) = old.cwe {
                remove_keyed(&mut self.cwe_postings, cwe, i);
            }
        }
        if old.severity != new.severity {
            if let Some(band) = old.severity {
                remove_keyed(&mut self.severity_postings, band, i);
            }
        }
        if old.published != new.published {
            let pos = self
                .date_order
                .partition_point(|&j| self.date_key(j) < (old.published, id));
            debug_assert_eq!(self.date_order[pos], i);
            self.date_order.remove(pos);
            let pos = self
                .date_order
                .partition_point(|&j| self.date_key(j) < (new.published, id));
            self.date_order.insert(pos, i);
        }
    }

    /// Adds entry `i` to every structure the new projection puts it in
    /// and the old one didn't.
    fn admit(&mut self, i: u32, old: &EntryProjection, new: &EntryProjection) {
        for v in new.vendors.iter().filter(|v| !old.vendors.contains(v)) {
            let vid = match name_id_of!(self.vendor_names, v.as_str()) {
                Some(vid) => vid,
                None => {
                    let pos = self.vendor_names.partition_point(|n| n < v);
                    self.vendor_names.insert(pos, v.clone());
                    self.vendor_postings.insert(pos, Vec::new());
                    pos as u32
                }
            };
            insert_posting(&mut self.vendor_postings[vid as usize], i, &self.ids);
        }
        for p in new.products.iter().filter(|p| !old.products.contains(p)) {
            let pid = match name_id_of!(self.product_names, p.as_str()) {
                Some(pid) => pid,
                None => {
                    let pos = self.product_names.partition_point(|n| n < p);
                    self.product_names.insert(pos, p.clone());
                    self.product_postings.insert(pos, Vec::new());
                    pos as u32
                }
            };
            insert_posting(&mut self.product_postings[pid as usize], i, &self.ids);
        }
        if new.cwe != old.cwe {
            if let Some(cwe) = new.cwe {
                insert_keyed(&mut self.cwe_postings, cwe, i, &self.ids);
            }
        }
        if new.severity != old.severity {
            if let Some(band) = new.severity {
                insert_keyed(&mut self.severity_postings, band, i, &self.ids);
            }
        }
    }

    /// Structural digest over every shard and posting list.
    ///
    /// Two builds of the same database at the same shard count must agree
    /// exactly — and so must a delta-updated state versus a fresh build of
    /// the updated database. The determinism suite compares `NVD_JOBS`
    /// 1 vs 4 builds and incremental-vs-rebuilt states through this.
    pub fn digest(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &(self.shard_count as u64).to_le_bytes());
        let fold_postings = |h: &mut u64, postings: &[Vec<u32>]| {
            for list in postings {
                *h = fnv1a(*h, &(list.len() as u64).to_le_bytes());
                for &i in list {
                    *h = fnv1a(*h, &hash_cve_id(self.ids[i as usize]).to_le_bytes());
                }
            }
        };
        fold_postings(&mut h, &self.id_shards);
        fold_postings(&mut h, &self.vendor_postings);
        fold_postings(&mut h, &self.product_postings);
        for (cwe, list) in &self.cwe_postings {
            h = fnv1a(h, &cwe.number().to_le_bytes());
            fold_postings(&mut h, std::slice::from_ref(list));
        }
        for (band, list) in &self.severity_postings {
            h = fnv1a(h, band.abbrev().as_bytes());
            fold_postings(&mut h, std::slice::from_ref(list));
        }
        fold_postings(&mut h, std::slice::from_ref(&self.date_order));
        for (id, issues) in &self.quality {
            h = fnv1a(h, &hash_cve_id(*id).to_le_bytes());
            h = fnv1a(h, &(issues.len() as u64).to_le_bytes());
            for issue in issues {
                h = fnv1a(h, &[issue.kind.code(), issue.severity.code()]);
                match &issue.resolution {
                    Resolution::AutoFixed { fix } => {
                        h = fnv1a(h, b"fix");
                        h = fnv1a(h, fix.as_bytes());
                    }
                    Resolution::NeedsReview => h = fnv1a(h, b"rev"),
                }
                h = fnv1a(h, issue.evidence.as_bytes());
            }
        }
        h
    }
}

/// Removes `i` from an id-sorted posting list.
fn remove_posting(list: &mut Vec<u32>, i: u32) {
    let pos = list.iter().position(|&j| j == i).expect("posted entry");
    list.remove(pos);
}

/// Inserts `i` into a posting list at its CVE-id-sorted position.
fn insert_posting(list: &mut Vec<u32>, i: u32, ids: &[CveId]) {
    let id = ids[i as usize];
    let pos = list.partition_point(|&j| ids[j as usize] < id);
    list.insert(pos, i);
}

/// Removes `i` from the keyed posting list for `key`, dropping the bucket
/// when it empties (fresh builds only materialise non-empty buckets).
fn remove_keyed<K: Ord + Copy>(buckets: &mut Vec<(K, Vec<u32>)>, key: K, i: u32) {
    let b = buckets
        .binary_search_by_key(&key, |&(k, _)| k)
        .expect("indexed bucket");
    remove_posting(&mut buckets[b].1, i);
    if buckets[b].1.is_empty() {
        buckets.remove(b);
    }
}

/// Inserts `i` into the keyed posting list for `key`, creating the bucket
/// at its sorted position when absent.
fn insert_keyed<K: Ord + Copy>(buckets: &mut Vec<(K, Vec<u32>)>, key: K, i: u32, ids: &[CveId]) {
    match buckets.binary_search_by_key(&key, |&(k, _)| k) {
        Ok(b) => insert_posting(&mut buckets[b].1, i, ids),
        Err(b) => buckets.insert(b, (key, vec![i])),
    }
}

impl<'a> ServeIndex<'a> {
    /// Default shard count: enough to keep per-shard binary searches short
    /// at paper scale without fragmenting a small corpus.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Builds the index with [`Self::DEFAULT_SHARDS`] id shards.
    pub fn build(db: &'a Database) -> Self {
        Self::with_shards(db, Self::DEFAULT_SHARDS)
    }

    /// Builds the index with an explicit id-shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn with_shards(db: &'a Database, shard_count: usize) -> Self {
        ServeIndexState::build(db, shard_count).attach(db)
    }

    /// Detaches the owned state, releasing the database borrow so a delta
    /// can be pushed and absorbed via [`ServeIndexState::apply_delta`].
    pub fn into_state(self) -> ServeIndexState {
        self.state
    }

    /// Attaches a quality ledger for [`Query::QualityLookup`] /
    /// [`Query::QualityHistogram`] answers (see
    /// [`ServeIndexState::set_quality`]).
    pub fn with_quality(mut self, ledger: &QualityLedger) -> Self {
        self.state.set_quality(ledger);
        self
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is over an empty database.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of id shards.
    pub fn shard_count(&self) -> usize {
        self.state.shard_count
    }

    /// Number of distinct interned vendors.
    pub fn vendor_count(&self) -> usize {
        self.state.vendor_names.len()
    }

    /// Number of distinct interned products.
    pub fn product_count(&self) -> usize {
        self.state.product_names.len()
    }

    /// Point lookup: shard hash plus binary search within the shard.
    pub fn get(&self, id: CveId) -> Option<&'a CveEntry> {
        self.state.index_of(id).map(|i| self.entries[i as usize])
    }

    /// Structural digest over every shard and posting list (see
    /// [`ServeIndexState::digest`]).
    pub fn digest(&self) -> u64 {
        self.state.digest()
    }

    /// The `date_order` slice covering `since..=until`.
    fn window_slice(&self, since: Date, until: Date) -> &[u32] {
        let lower = self
            .state
            .date_order
            .partition_point(|&i| self.entries[i as usize].published < since);
        let upper = self
            .state
            .date_order
            .partition_point(|&i| self.entries[i as usize].published <= until);
        &self.state.date_order[lower..upper]
    }

    fn ids_of(&self, postings: &[u32]) -> Vec<CveId> {
        postings
            .iter()
            .map(|&i| self.state.ids[i as usize])
            .collect()
    }
}

/// Chunked parallel postings proposal: maps each entry to its name ids,
/// returning `(name_id, entry_idx)` pairs concatenated in entry order.
/// Chunk boundaries are fixed by [`POSTING_CHUNK`], so the pair stream is
/// identical at any thread count; duplicate pairs (one entry, several CPEs
/// of the same name) are collapsed later in [`group_postings`].
fn propose_pairs(
    entries: &[&CveEntry],
    emit: impl Fn(&CveEntry, &mut Vec<u32>) + Sync,
) -> Vec<(u32, u32)> {
    let idx: Vec<u32> = (0..entries.len() as u32).collect();
    minipar::par_chunks(&idx, POSTING_CHUNK, |_ci, part| {
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(part.len());
        let mut scratch: Vec<u32> = Vec::new();
        for &i in part {
            scratch.clear();
            emit(entries[i as usize], &mut scratch);
            pairs.extend(scratch.iter().map(|&nid| (nid, i)));
        }
        pairs
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Groups `(name_id, entry_idx)` pairs into per-name postings sorted by
/// CVE id.
fn group_postings(mut pairs: Vec<(u32, u32)>, names: usize, ids: &[CveId]) -> Vec<Vec<u32>> {
    pairs.sort_unstable_by_key(|&(nid, i)| (nid, ids[i as usize]));
    pairs.dedup();
    let mut postings: Vec<Vec<u32>> = vec![Vec::new(); names];
    for (nid, i) in pairs {
        postings[nid as usize].push(i);
    }
    postings
}

/// Groups `(key, entry_idx)` pairs into non-empty per-key postings sorted
/// by CVE id, keys ascending.
fn group_keyed<K: Ord + Copy>(mut pairs: Vec<(K, u32)>, ids: &[CveId]) -> Vec<(K, Vec<u32>)> {
    pairs.sort_unstable_by_key(|&(k, i)| (k, ids[i as usize]));
    let mut grouped: Vec<(K, Vec<u32>)> = Vec::new();
    for (k, i) in pairs {
        match grouped.last_mut() {
            Some((key, list)) if *key == k => list.push(i),
            _ => grouped.push((k, vec![i])),
        }
    }
    grouped
}

impl QueryEngine for ServeIndex<'_> {
    fn execute<'db>(&'db self, query: &Query) -> QueryResult<'db> {
        match query {
            Query::PointLookup(id) => QueryResult::Entry(self.get(*id)),
            Query::VendorWatch(vendor) => {
                let ids = match name_id_of!(self.state.vendor_names, vendor.as_str()) {
                    Some(vid) => self.ids_of(&self.state.vendor_postings[vid as usize]),
                    None => Vec::new(),
                };
                QueryResult::Ids(ids)
            }
            Query::ProductWatch(product) => {
                let ids = match name_id_of!(self.state.product_names, product.as_str()) {
                    Some(pid) => self.ids_of(&self.state.product_postings[pid as usize]),
                    None => Vec::new(),
                };
                QueryResult::Ids(ids)
            }
            Query::PatchWindow { since, until } => {
                QueryResult::Ids(self.ids_of(self.window_slice(*since, *until)))
            }
            Query::SeverityHistogram { window } => match window {
                None => QueryResult::SeverityHistogram(
                    self.state
                        .severity_postings
                        .iter()
                        .map(|(band, list)| (*band, list.len()))
                        .collect(),
                ),
                Some((since, until)) => {
                    let mut counts = [0usize; 5];
                    for &i in self.window_slice(*since, *until) {
                        if let Some(band) = effective_severity(self.entries[i as usize]) {
                            counts[band as usize] += 1;
                        }
                    }
                    QueryResult::SeverityHistogram(histogram_from_counts(&counts))
                }
            },
            Query::CweHistogram => QueryResult::CweHistogram(
                self.state
                    .cwe_postings
                    .iter()
                    .map(|(cwe, list)| (*cwe, list.len()))
                    .collect(),
            ),
            Query::QualityLookup(id) => match self.state.index_of(*id) {
                None => QueryResult::Quality(None),
                Some(_) => {
                    let issues: &[QualityIssue] =
                        self.state.quality.get(id).map_or(&[], |v| v.as_slice());
                    QueryResult::Quality(Some((QualityScore::from_issues(issues), issues)))
                }
            },
            Query::QualityHistogram { axis } => {
                // Entries without attached issues are issue-free: all in
                // the perfect decile, counted without being visited.
                let mut counts = [0usize; 11];
                counts[10] = self.len() - self.state.quality.len();
                for issues in self.state.quality.values() {
                    let bucket = QualityScore::from_issues(issues).bucket(*axis);
                    counts[bucket as usize] += 1;
                }
                QueryResult::QualityHistogram(quality_histogram_from_counts(&counts))
            }
        }
    }
}

/// Converts a per-decile count array (indexed by score bucket 0..=10)
/// into canonical non-empty ascending buckets.
pub(crate) fn quality_histogram_from_counts(counts: &[usize; 11]) -> Vec<(u8, usize)> {
    counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(bucket, &c)| (bucket as u8, c))
        .collect()
}

/// Converts a per-band count array (indexed by `Severity as usize`) into
/// canonical non-empty ascending buckets.
pub(crate) fn histogram_from_counts(counts: &[usize; 5]) -> Vec<(Severity, usize)> {
    const BANDS: [Severity; 5] = [
        Severity::None,
        Severity::Low,
        Severity::Medium,
        Severity::High,
        Severity::Critical,
    ];
    BANDS
        .iter()
        .zip(counts)
        .filter(|(_, &c)| c > 0)
        .map(|(&b, &c)| (b, c))
        .collect()
}
