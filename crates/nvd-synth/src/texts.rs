//! Free-form CVE description generation.
//!
//! §4.4 of the paper classifies vulnerability descriptions into CWE types
//! with a k-NN over sentence embeddings (65.60% accuracy over 151 classes)
//! and regex-mines `CWE-\d+` mentions out of evaluator comments. To support
//! both experiments, descriptions here are (a) class-typical, written in the
//! NVD analysts' house style, (b) only partially type-revealing — the
//! weakness's short name is mentioned in most but not all descriptions, so
//! embedding classifiers top out well below 100% — and (c) optionally
//! accompanied by evaluator comments embedding the formal `CWE-n: name`
//! string.

use nvd_model::cwe::{CweCatalog, CweId};
use rand::rngs::StdRng;
use rand::Rng;

use crate::profile::{classify, CweClass};

const PARAMS: &[&str] = &[
    "id", "page", "query", "user", "name", "file", "path", "action", "cmd", "search", "lang",
    "cat", "token", "session", "redirect",
];

const COMPONENTS: &[&str] = &[
    "login module",
    "admin console",
    "file upload handler",
    "session manager",
    "report generator",
    "update service",
    "configuration parser",
    "web interface",
    "RPC service",
    "print spooler",
];

const FILETYPES: &[&str] = &[
    "PDF", "MP4", "PNG", "XML", "ZIP", "DOC", "TIFF", "SWF", "HTML", "MIDI",
];

const ACTORS_REMOTE: &[&str] = &["remote attackers", "unauthenticated remote attackers"];
const ACTORS_AUTH: &[&str] = &["remote authenticated users", "authenticated attackers"];
const ACTORS_LOCAL: &[&str] = &["local users", "physically proximate attackers"];

fn pick<'a>(rng: &mut StdRng, list: &[&'a str]) -> &'a str {
    list[rng.gen_range(0..list.len())]
}

/// A plausible version string.
pub fn version(rng: &mut StdRng) -> String {
    let major = rng.gen_range(0..12);
    let minor = rng.gen_range(0..20);
    if rng.gen_bool(0.5) {
        format!("{major}.{minor}")
    } else {
        format!("{major}.{minor}.{}", rng.gen_range(0..30))
    }
}

/// Generates the analyst description for a vulnerability of type `cwe` in
/// `vendor`'s `product`.
///
/// The probability that the weakness's short name is mentioned explicitly is
/// `name_mention_p` — the knob that calibrates k-NN type-classification
/// accuracy (paper: 65.60%).
pub fn describe(
    rng: &mut StdRng,
    catalog: &CweCatalog,
    cwe: CweId,
    vendor: &str,
    product: &str,
    name_mention_p: f64,
) -> String {
    let class = classify(cwe);
    let ver = version(rng);
    let param = pick(rng, PARAMS);
    let comp = pick(rng, COMPONENTS);
    let ft = pick(rng, FILETYPES);
    let body = match class {
        CweClass::Memory => match rng.gen_range(0..3) {
            0 => format!(
                "Buffer overflow in {product} {ver} from {vendor} allows {} to execute \
                 arbitrary code via a crafted {ft} file.",
                pick(rng, ACTORS_REMOTE)
            ),
            1 => format!(
                "Heap-based memory corruption in the {comp} in {vendor} {product} before \
                 {ver} allows attackers to cause a denial of service or possibly execute \
                 arbitrary code via a long {param} argument."
            ),
            _ => format!(
                "Out-of-bounds access in {product} {ver} allows {} to overwrite memory \
                 and potentially execute arbitrary code via a malformed {ft} document.",
                pick(rng, ACTORS_REMOTE)
            ),
        },
        CweClass::Injection => match rng.gen_range(0..3) {
            0 => format!(
                "SQL injection vulnerability in {param}.php in {vendor} {product} {ver} \
                 allows {} to execute arbitrary SQL commands via the {param} parameter.",
                pick(rng, ACTORS_REMOTE)
            ),
            1 => format!(
                "The {comp} in {product} before {ver} allows {} to inject and execute \
                 arbitrary commands via shell metacharacters in the {param} field.",
                pick(rng, ACTORS_REMOTE)
            ),
            _ => format!(
                "Improper neutralization of special elements in {vendor} {product} {ver} \
                 allows attackers to execute arbitrary code via a crafted {param} value."
            ),
        },
        CweClass::Web => match rng.gen_range(0..3) {
            0 => format!(
                "Cross-site scripting (XSS) vulnerability in {vendor} {product} {ver} \
                 allows {} to inject arbitrary web script or HTML via the {param} \
                 parameter.",
                pick(rng, ACTORS_REMOTE)
            ),
            1 => format!(
                "Cross-site request forgery in the {comp} of {product} before {ver} allows \
                 attackers to hijack the authentication of administrators via a crafted \
                 request."
            ),
            _ => format!(
                "Open redirect in {product} {ver} allows {} to redirect victims to \
                 arbitrary web sites via the {param} parameter.",
                pick(rng, ACTORS_REMOTE)
            ),
        },
        CweClass::InfoLeak => format!(
            "{vendor} {product} {ver} allows {} to obtain sensitive information via a \
             crafted request to the {comp}, which reveals the {param} in an error message.",
            pick(rng, ACTORS_REMOTE)
        ),
        CweClass::Crypto => format!(
            "{vendor} {product} before {ver} uses a weak cryptographic algorithm in the \
             {comp}, which makes it easier for attackers to decrypt or spoof sensitive \
             data via a crafted {param}.",
        ),
        CweClass::AuthPriv => match rng.gen_range(0..2) {
            0 => format!(
                "{product} {ver} does not properly enforce access restrictions in the \
                 {comp}, which allows {} to gain privileges via unspecified vectors.",
                pick(rng, ACTORS_AUTH)
            ),
            _ => format!(
                "Authentication bypass in the {comp} of {vendor} {product} before {ver} \
                 allows {} to obtain administrative access via a crafted {param}.",
                pick(rng, ACTORS_REMOTE)
            ),
        },
        CweClass::PathFile => format!(
            "Directory traversal vulnerability in {product} {ver} from {vendor} allows \
             {} to read arbitrary files via a .. (dot dot) in the {param} parameter.",
            pick(rng, ACTORS_REMOTE)
        ),
        CweClass::Resource => format!(
            "{vendor} {product} before {ver} allows {} to cause a denial of service \
             (resource exhaustion) via a malformed {ft} file processed by the {comp}.",
            pick(rng, ACTORS_REMOTE)
        ),
        CweClass::Race => format!(
            "Race condition in the {comp} in {product} {ver} allows {} to gain privileges \
             via a symlink attack on the {param} temporary file.",
            pick(rng, ACTORS_LOCAL)
        ),
        CweClass::General => format!(
            "Unspecified vulnerability in {vendor} {product} {ver} allows attackers to \
             have unspecified impact via unknown vectors related to the {comp}."
        ),
    };
    if rng.gen::<f64>() < name_mention_p {
        let short = catalog
            .short_name(cwe)
            .map(str::to_lowercase)
            .unwrap_or_else(|| format!("cwe {}", cwe.number()));
        format!("{body} The issue is classified as {short}.")
    } else {
        body
    }
}

/// The evaluator comment embedding the formal CWE string, e.g.
/// `Per the CVE evaluator: CWE-835: Loop with Unreachable Exit Condition
/// ('Infinite Loop').` — the exact pattern §4.4 mines with `CWE-[0-9]*`.
pub fn evaluator_comment(catalog: &CweCatalog, cwe: CweId) -> String {
    let name = catalog
        .get(cwe)
        .map(|r| r.name.as_str())
        .unwrap_or("Unclassified Weakness");
    format!("Per the CVE evaluator: {cwe}: {name}.")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn descriptions_mention_product_and_read_like_nvd() {
        let catalog = CweCatalog::builtin();
        let mut rng = StdRng::seed_from_u64(5);
        for cwe in [119u32, 89, 79, 200, 310, 264, 22, 399, 362, 16] {
            let d = describe(
                &mut rng,
                &catalog,
                CweId::new(cwe),
                "microsoft",
                "internet_explorer",
                0.7,
            );
            assert!(d.contains("internet_explorer"), "{d}");
            assert!(d.len() > 60, "{d}");
        }
    }

    #[test]
    fn name_mention_probability_is_respected() {
        let catalog = CweCatalog::builtin();
        let mut rng = StdRng::seed_from_u64(6);
        let mut mentions = 0;
        let n = 2000;
        for _ in 0..n {
            let d = describe(&mut rng, &catalog, CweId::new(89), "v", "p", 0.7);
            if d.contains("classified as") {
                mentions += 1;
            }
        }
        let rate = mentions as f64 / n as f64;
        assert!((0.6..0.8).contains(&rate), "mention rate {rate}");
    }

    #[test]
    fn evaluator_comment_matches_mining_regex() {
        let catalog = CweCatalog::builtin();
        let c = evaluator_comment(&catalog, CweId::new(835));
        assert!(c.contains("CWE-835"), "{c}");
        assert!(c.contains("Infinite Loop"), "{c}");
    }

    #[test]
    fn deterministic_under_seed() {
        let catalog = CweCatalog::builtin();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = describe(&mut r1, &catalog, CweId::new(79), "v", "p", 0.5);
        let b = describe(&mut r2, &catalog, CweId::new(79), "v", "p", 0.5);
        assert_eq!(a, b);
    }
}
