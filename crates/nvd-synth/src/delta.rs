//! Dated delta feeds: the synthetic corpus as a stream instead of a batch.
//!
//! The real NVD publishes `recent`/`modified` JSON feeds on top of the
//! yearly archives; consumers ingest a base snapshot once and then replay
//! dated deltas. This module carves a generated [`SynthCorpus`] into that
//! shape deterministically:
//!
//! 1. [`generate`] produces the **final** corpus state, exactly as the
//!    batch pipeline sees it;
//! 2. the chronologically latest slice of entries (by `(published, id)`)
//!    becomes *new-CVE arrivals*, split into dated feeds;
//! 3. a seeded subset of the remaining entries is *degraded* in the base
//!    snapshot (references trimmed, evaluator comment withheld, CVSS v3
//!    hidden, `last_modified` rolled back — the paper's §3 inconsistency
//!    flavours arriving late) and the final entry is redelivered in a
//!    later feed as a *modified* record.
//!
//! Feeds are carried as [`FeedDocument`]s — the same struct-level NVD JSON
//! schema `nvd-model/src/feed.rs` exports — so replaying a delta is
//! exactly `from_feed` + `Database::push` (push replaces same-id entries
//! in place). By construction, replaying every feed over the base snapshot
//! reproduces the final corpus entries: the incremental-vs-batch
//! equivalence tests in `tests/determinism.rs` lean on this.

use nvd_model::database::Database;
use nvd_model::date::Date;
use nvd_model::entry::CveEntry;
use nvd_model::feed::{from_feed, to_feed, FeedDocument};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{generate, SynthConfig, SynthCorpus};

/// Seed stream tag separating delta partitioning from the corpus streams.
const DELTA_STREAM: u64 = 0x6465_6c74_6121_0001;

/// Fraction of the corpus (chronological tail) delivered as new-CVE feeds.
const ARRIVAL_FRACTION: f64 = 0.25;

/// Fraction of base-snapshot entries degraded and later redelivered.
const MODIFIED_FRACTION: f64 = 0.12;

/// One dated delta feed: new CVEs plus modified redeliveries.
#[derive(Debug, Clone)]
pub struct DeltaFeed {
    /// The feed date (the latest `published` among its new entries, or the
    /// previous feed's date for pure-modification feeds).
    pub date: Date,
    /// The feed payload in the NVD JSON schema.
    pub document: FeedDocument,
}

impl DeltaFeed {
    /// Parses the feed payload back into entries, in feed order.
    ///
    /// Synth-generated feeds always round-trip; a parse failure here means
    /// the feed schema and the generator have drifted apart.
    pub fn entries(&self) -> Vec<CveEntry> {
        from_feed(&self.document)
            .expect("synth delta feed round-trips")
            .into_iter()
            .collect()
    }
}

/// A seeded delta stream: a base snapshot plus dated feeds whose replay
/// reproduces the generated corpus.
#[derive(Debug, Clone)]
pub struct DeltaStream {
    /// The base snapshot (chronological head, with seeded degradations).
    pub base: Database,
    /// The dated feeds, in chronological order.
    pub feeds: Vec<DeltaFeed>,
    /// The full corpus the stream was carved from: `corpus.archive` and
    /// `corpus.truth` drive cleaning exactly as in the batch pipeline.
    pub corpus: SynthCorpus,
}

impl DeltaStream {
    /// Replays every feed over the base snapshot: the final database the
    /// incremental pipeline must match batch-cleaning against.
    pub fn final_database(&self) -> Database {
        let mut db = self.base.clone();
        for feed in &self.feeds {
            for entry in feed.entries() {
                db.push(entry);
            }
        }
        db
    }

    /// Total entries delivered across all feeds (new + modified).
    pub fn delta_entry_count(&self) -> usize {
        self.feeds.iter().map(|f| f.document.items.len()).sum()
    }
}

/// Carves the corpus for `config` into a base snapshot plus `feed_count`
/// dated delta feeds. Deterministic in `(config, feed_count)`.
///
/// # Panics
///
/// Panics if `feed_count` is zero or the corpus is too small to carve
/// (fewer than `feed_count + 1` entries).
pub fn generate_delta_stream(config: &SynthConfig, feed_count: usize) -> DeltaStream {
    assert!(feed_count > 0, "need at least one delta feed");
    let corpus = generate(config);
    let total = corpus.database.len();
    assert!(
        total > feed_count,
        "corpus of {total} entries cannot fill {feed_count} feeds"
    );

    // Chronological order decides what "arrives late": the tail of the
    // (published, id) sort becomes the new-CVE stream.
    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by_key(|&i| {
        let e = &corpus.database.as_slice()[i];
        (e.published, e.id)
    });
    let arrivals = ((total as f64 * ARRIVAL_FRACTION).round() as usize)
        .clamp(feed_count, total.saturating_sub(1));
    let (head, tail) = order.split_at(total - arrivals);

    let mut rng = StdRng::seed_from_u64(minipar::derive_seed(config.seed, DELTA_STREAM));

    // Pick the modified subset from the base (chronological head) and
    // assign each redelivery to a feed.
    let mut modified_by_feed: Vec<Vec<usize>> = vec![Vec::new(); feed_count];
    for &i in head {
        if rng.gen_range(0..1000usize) < (MODIFIED_FRACTION * 1000.0) as usize {
            modified_by_feed[rng.gen_range(0..feed_count)].push(i);
        }
    }

    // Base snapshot: head entries in corpus order, modified ones degraded.
    let mut base = Database::new();
    let mut in_head = vec![false; total];
    for &i in head {
        in_head[i] = true;
    }
    let is_modified = {
        let mut v = vec![false; total];
        for feed in &modified_by_feed {
            for &i in feed {
                v[i] = true;
            }
        }
        v
    };
    for (i, entry) in corpus.database.iter().enumerate() {
        if in_head[i] {
            base.push(if is_modified[i] {
                degrade(entry, &mut rng)
            } else {
                entry.clone()
            });
        }
    }

    // New arrivals split into `feed_count` contiguous chronological chunks
    // (earlier feeds slightly larger when sizes don't divide evenly).
    let mut feeds = Vec::with_capacity(feed_count);
    let chunk = arrivals / feed_count;
    let extra = arrivals % feed_count;
    let mut cursor = 0usize;
    let mut last_date = corpus
        .database
        .as_slice()
        .get(*head.last().expect("non-empty head"))
        .map_or_else(
            || Date::from_ymd(1999, 1, 1).expect("valid date"),
            |e| e.published,
        );
    for (f, modified) in modified_by_feed.iter().enumerate() {
        let take = chunk + usize::from(f < extra);
        let slice = &tail[cursor..cursor + take];
        cursor += take;

        let mut feed_db = Database::new();
        for &i in slice {
            feed_db.push(corpus.database.as_slice()[i].clone());
        }
        // Modified redeliveries ride along in corpus order: the final
        // entry verbatim, superseding the degraded base copy on push.
        for &i in modified {
            feed_db.push(corpus.database.as_slice()[i].clone());
        }
        let date = slice
            .last()
            .map_or(last_date, |&i| corpus.database.as_slice()[i].published);
        last_date = date;
        let document = to_feed(&feed_db, &format!("{date}T00:00Z"));
        feeds.push(DeltaFeed { date, document });
    }
    debug_assert_eq!(cursor, arrivals);

    DeltaStream {
        base,
        feeds,
        corpus,
    }
}

/// Produces the degraded base-snapshot version of a later-modified entry:
/// the state a consumer would have seen before the `modified` feed item.
fn degrade(entry: &CveEntry, rng: &mut StdRng) -> CveEntry {
    let mut e = entry.clone();
    // References accrete over time: the base copy carries only a prefix.
    if e.references.len() > 1 {
        let keep = rng.gen_range(1..e.references.len());
        e.references.truncate(keep);
    }
    // Evaluator comments and CVSS v3 records typically land late (§3 /
    // §4.3): withhold them from the base copy.
    if rng.gen_range(0..2) == 0 {
        e.descriptions
            .retain(|d| d.source != nvd_model::entry::DescriptionSource::Evaluator);
    }
    if rng.gen_range(0..2) == 0 {
        e.cvss_v3 = None;
    }
    e.last_modified = e.published;
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SynthConfig {
        SynthConfig::with_scale(0.002, 0xde17a)
    }

    #[test]
    fn replay_reproduces_final_corpus_entries() {
        let stream = generate_delta_stream(&small_config(), 4);
        let replayed = stream.final_database();
        assert_eq!(replayed.len(), stream.corpus.database.len());
        for entry in stream.corpus.database.iter() {
            assert_eq!(
                replayed.get(&entry.id),
                Some(entry),
                "replayed entry {} diverged from the generated corpus",
                entry.id
            );
        }
    }

    #[test]
    fn base_snapshot_is_strictly_older_state() {
        let stream = generate_delta_stream(&small_config(), 3);
        assert!(stream.base.len() < stream.corpus.database.len());
        let mut degraded = 0;
        for entry in stream.base.iter() {
            let fin = stream.corpus.database.get(&entry.id).expect("in corpus");
            assert!(entry.references.len() <= fin.references.len());
            assert!(entry.last_modified <= fin.last_modified);
            if entry != fin {
                degraded += 1;
            }
        }
        assert!(degraded > 0, "expected some degraded base entries");
    }

    #[test]
    fn stream_is_deterministic() {
        let a = generate_delta_stream(&small_config(), 4);
        let b = generate_delta_stream(&small_config(), 4);
        assert_eq!(a.base.as_slice(), b.base.as_slice());
        assert_eq!(a.feeds.len(), b.feeds.len());
        for (fa, fb) in a.feeds.iter().zip(&b.feeds) {
            assert_eq!(fa.date, fb.date);
            assert_eq!(fa.entries(), fb.entries());
        }
    }

    #[test]
    fn feeds_are_dated_monotonically() {
        let stream = generate_delta_stream(&small_config(), 4);
        for pair in stream.feeds.windows(2) {
            assert!(pair[0].date <= pair[1].date);
        }
        assert!(stream.delta_entry_count() > 0);
    }
}
