//! Ground-truth quality-degradation labels for a generated corpus.
//!
//! The generator injects every §3 degradation deliberately — missing
//! references, alias names, degenerate CWE labels, withheld v3 vectors,
//! publication lag — and [`GroundTruth`](crate::GroundTruth) records the
//! secrets. This module flattens those secrets into per-CVE
//! [`DegradationKind`] label sets so the cleaning pipeline's quality
//! detectors can be scored: the precision/recall harness in the workspace
//! test suite maps each detector's emitted issue kind onto the label of
//! the degradation it claims to have found and compares against
//! [`expected_issues`].
//!
//! The enum is deliberately this crate's own (not the cleaner's
//! `IssueKind`): the generator must stay ignorant of the pipeline under
//! evaluation, and the dependency points the other way anyway.

use std::collections::{BTreeMap, BTreeSet};

use nvd_model::prelude::{CveId, CweLabel};

use crate::SynthCorpus;

/// One injected quality degradation, from the generator's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationKind {
    /// The entry was generated without reference URLs, so no disclosure
    /// evidence exists to be crawled.
    MissingDisclosure,
    /// The entry's NVD publication date lags its true disclosure date.
    PublicationLag,
    /// The entry was recorded under an injected vendor alias.
    VendorAlias,
    /// The entry was recorded under an injected product alias.
    ProductAlias,
    /// The entry's CWE label was degraded to `NVD-CWE-Other`.
    DegenerateCwe,
    /// The entry's CWE label was degraded to `NVD-CWE-noinfo` or left
    /// unassigned.
    MissingCwe,
    /// The entry's true CVSS v3 vector was withheld (v2-era entry).
    MissingCvssV3,
}

impl DegradationKind {
    /// Every kind, in declaration order.
    pub const ALL: [DegradationKind; 7] = [
        DegradationKind::MissingDisclosure,
        DegradationKind::PublicationLag,
        DegradationKind::VendorAlias,
        DegradationKind::ProductAlias,
        DegradationKind::DegenerateCwe,
        DegradationKind::MissingCwe,
        DegradationKind::MissingCvssV3,
    ];

    /// Stable kebab-case name (matches the cleaner's issue-kind naming).
    pub fn name(self) -> &'static str {
        match self {
            DegradationKind::MissingDisclosure => "missing-disclosure",
            DegradationKind::PublicationLag => "publication-lag",
            DegradationKind::VendorAlias => "vendor-alias",
            DegradationKind::ProductAlias => "product-alias",
            DegradationKind::DegenerateCwe => "degenerate-cwe",
            DegradationKind::MissingCwe => "missing-cwe",
            DegradationKind::MissingCvssV3 => "missing-cvss-v3",
        }
    }
}

/// The injected degradations per CVE, derived from the corpus secrets.
///
/// A pure function of the generated database plus its
/// [`GroundTruth`](crate::GroundTruth); CVEs with no injected degradation
/// are absent from the map.
pub fn expected_issues(corpus: &SynthCorpus) -> BTreeMap<CveId, BTreeSet<DegradationKind>> {
    let truth = &corpus.truth;
    let mut expected: BTreeMap<_, BTreeSet<DegradationKind>> = BTreeMap::new();
    for entry in corpus.database.iter() {
        let mut kinds = BTreeSet::new();
        if entry.references.is_empty() {
            kinds.insert(DegradationKind::MissingDisclosure);
        } else if truth
            .disclosure
            .get(&entry.id)
            .is_some_and(|&d| d < entry.published)
        {
            kinds.insert(DegradationKind::PublicationLag);
        }
        if truth.mislabeled_vendor.contains(&entry.id) {
            kinds.insert(DegradationKind::VendorAlias);
        }
        if truth.mislabeled_product.contains(&entry.id) {
            kinds.insert(DegradationKind::ProductAlias);
        }
        match entry.effective_cwe() {
            CweLabel::Other => {
                kinds.insert(DegradationKind::DegenerateCwe);
            }
            CweLabel::NoInfo | CweLabel::Unassigned => {
                kinds.insert(DegradationKind::MissingCwe);
            }
            CweLabel::Specific(_) => {}
        }
        if entry.cvss_v3.is_none() {
            kinds.insert(DegradationKind::MissingCvssV3);
        }
        if !kinds.is_empty() {
            expected.insert(entry.id, kinds);
        }
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, SynthConfig};

    #[test]
    fn expected_issues_cover_the_injected_degradations() {
        let corpus = generate(&SynthConfig::with_scale(0.005, 11));
        let expected = expected_issues(&corpus);
        assert!(!expected.is_empty(), "degradations are always injected");
        // Every mislabeled-vendor secret surfaces as a VendorAlias label.
        for id in &corpus.truth.mislabeled_vendor {
            assert!(
                expected[id].contains(&DegradationKind::VendorAlias),
                "{id} missing its vendor-alias label"
            );
        }
        // No-reference entries are labeled, and exclusively so for the
        // disclosure axis (lag is unknowable without evidence).
        for entry in corpus.database.iter() {
            let has = |k| expected.get(&entry.id).is_some_and(|s| s.contains(&k));
            assert_eq!(
                entry.references.is_empty(),
                has(DegradationKind::MissingDisclosure)
            );
            assert_eq!(entry.cvss_v3.is_none(), has(DegradationKind::MissingCvssV3));
        }
    }
}
