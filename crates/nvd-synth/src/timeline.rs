//! Temporal processes: yearly volumes, disclosure dates, lags, and batch
//! artifacts.
//!
//! Reproduces the paper's temporal findings by construction:
//!
//! * disclosure concentrates early in the week (Fig. 2) with bulk
//!   coordinated-disclosure events on vendor patch days (Table 8 right);
//! * NVD publication trails disclosure with the Fig. 1 lag distribution
//!   (≈38% zero-lag, ≈70% within 6 days, a heavy tail to ≈2,400 days) where
//!   higher-severity CVEs are *more* likely to show lag (§4.1: dates
//!   improved for 37%/41%/65% of L/M/H CVEs);
//! * early years exhibit the New-Year's-Eve backfill artifact (Table 8
//!   left: 44.8% of 2004's CVEs carry the publication date 12/31/2004).

use nvd_model::prelude::{Date, Severity, Weekday};
use rand::rngs::StdRng;
use rand::Rng;

/// Last day covered by the generated snapshot.
///
/// The paper's snapshot was pulled 2018-05-21 but its Table 8 includes July
/// 2018 dates (the analysis dataset was refreshed); we generate through
/// July so those rows reproduce.
pub fn snapshot_end() -> Date {
    Date::from_ymd(2018, 7, 31).expect("valid date")
}

/// Relative yearly CVE volumes (1988–2018), shaped like the real NVD curve;
/// normalised by [`year_allocation`].
const YEAR_WEIGHTS: &[(i32, f64)] = &[
    (1988, 0.002),
    (1989, 0.003),
    (1990, 0.010),
    (1991, 0.015),
    (1992, 0.013),
    (1993, 0.013),
    (1994, 0.025),
    (1995, 0.025),
    (1996, 0.075),
    (1997, 0.250),
    (1998, 0.250),
    (1999, 0.900),
    (2000, 1.020),
    (2001, 1.680),
    (2002, 2.160),
    (2003, 1.530),
    (2004, 2.450),
    (2005, 4.930),
    (2006, 6.600),
    (2007, 6.520),
    (2008, 5.630),
    (2009, 5.730),
    (2010, 4.650),
    (2011, 4.150),
    (2012, 5.290),
    (2013, 5.190),
    (2014, 7.940),
    (2015, 6.480),
    (2016, 6.450),
    (2017, 14.650),
    (2018, 9.300),
];

/// Splits a total CVE budget across years proportionally to the NVD curve.
/// Every year with positive weight gets at least one CVE when the total
/// allows.
pub fn year_allocation(total: usize) -> Vec<(i32, usize)> {
    let weight_sum: f64 = YEAR_WEIGHTS.iter().map(|(_, w)| w).sum();
    let mut out: Vec<(i32, usize)> = Vec::with_capacity(YEAR_WEIGHTS.len());
    let mut allocated = 0usize;
    for (year, w) in YEAR_WEIGHTS {
        let n = ((w / weight_sum) * total as f64).round() as usize;
        out.push((*year, n));
        allocated += n;
    }
    // Adjust rounding drift on the largest year.
    if allocated != total {
        let largest = out
            .iter_mut()
            .max_by(|a, b| a.1.cmp(&b.1))
            .expect("non-empty");
        largest.1 = (largest.1 as i64 + total as i64 - allocated as i64).max(0) as usize;
    }
    out
}

/// A bulk event day: a fixed share of the year's disclosures or
/// publications lands exactly on this date.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchDay {
    /// The calendar day.
    pub date: Date,
    /// Fraction of the year's CVEs assigned to this day.
    pub share: f64,
}

fn d(y: i32, m: u32, day: u32) -> Date {
    Date::from_ymd(y, m, day).expect("valid batch date")
}

/// Bulk *disclosure* days (Table 8 right): coordinated vendor patch days,
/// concentrated Monday–Wednesday. Named dates are taken verbatim from the
/// paper; other years get generic quarterly events.
pub fn disclosure_batches(year: i32) -> Vec<BatchDay> {
    match year {
        2005 => vec![BatchDay {
            date: d(2005, 5, 2),
            share: 0.054,
        }],
        2014 => vec![BatchDay {
            date: d(2014, 9, 9),
            share: 0.051,
        }],
        2015 => vec![BatchDay {
            date: d(2015, 7, 14),
            share: 0.037,
        }],
        2016 => vec![BatchDay {
            date: d(2016, 1, 19),
            share: 0.046,
        }],
        2017 => vec![
            BatchDay {
                date: d(2017, 7, 5),
                share: 0.024,
            },
            BatchDay {
                date: d(2017, 7, 18),
                share: 0.022,
            },
            BatchDay {
                date: d(2017, 1, 17),
                share: 0.020,
            },
        ],
        2018 => vec![
            BatchDay {
                date: d(2018, 7, 9),
                share: 0.024,
            },
            BatchDay {
                date: d(2018, 4, 2),
                share: 0.023,
            },
            BatchDay {
                date: d(2018, 7, 17),
                share: 0.017,
            },
        ],
        y if (2006..=2013).contains(&y) => {
            // Generic quarterly coordinated-disclosure days: second Tuesday
            // of January, April, July, October.
            [1u32, 4, 7, 10]
                .iter()
                .map(|&m| BatchDay {
                    date: nth_weekday(y, m, Weekday::Tuesday, 2),
                    share: 0.012,
                })
                .collect()
        }
        _ => Vec::new(),
    }
}

/// Bulk *publication* days (Table 8 left): year-end backfill batches plus a
/// handful of real mass-insertion days.
pub fn publication_batches(year: i32) -> Vec<BatchDay> {
    match year {
        2002 => vec![BatchDay {
            date: d(2002, 12, 31),
            share: 0.205,
        }],
        2003 => vec![BatchDay {
            date: d(2003, 12, 31),
            share: 0.267,
        }],
        2004 => vec![BatchDay {
            date: d(2004, 12, 31),
            share: 0.448,
        }],
        2005 => vec![
            BatchDay {
                date: d(2005, 5, 2),
                share: 0.166,
            },
            BatchDay {
                date: d(2005, 12, 31),
                share: 0.078,
            },
        ],
        2014 => vec![BatchDay {
            date: d(2014, 9, 9),
            share: 0.041,
        }],
        2017 => vec![BatchDay {
            date: d(2017, 8, 8),
            share: 0.022,
        }],
        2018 => vec![
            BatchDay {
                date: d(2018, 7, 9),
                share: 0.028,
            },
            BatchDay {
                date: d(2018, 2, 15),
                share: 0.023,
            },
            BatchDay {
                date: d(2018, 4, 18),
                share: 0.019,
            },
        ],
        _ => Vec::new(),
    }
}

/// The `n`-th given weekday of a month (n is 1-based).
pub fn nth_weekday(year: i32, month: u32, weekday: Weekday, n: u32) -> Date {
    let first = Date::from_ymd(year, month, 1).expect("valid month");
    let offset = (weekday.index() + 7 - first.weekday().index()) % 7;
    first.plus_days(offset as i32 + (n as i32 - 1) * 7)
}

/// Day-of-week propensities for public disclosure (Fig. 2: Monday–Wednesday
/// dominate, weekends are quiet).
fn weekday_weight(w: Weekday) -> f64 {
    match w {
        Weekday::Monday => 0.19,
        Weekday::Tuesday => 0.22,
        Weekday::Wednesday => 0.19,
        Weekday::Thursday => 0.155,
        Weekday::Friday => 0.115,
        Weekday::Saturday => 0.05,
        Weekday::Sunday => 0.08,
    }
}

/// Samples a disclosure date within `year`: either one of the year's bulk
/// event days, or a weekday-weighted ordinary day.
pub fn sample_disclosure(rng: &mut StdRng, year: i32) -> Date {
    let batches = disclosure_batches(year);
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for b in &batches {
        acc += b.share;
        if x < acc {
            return b.date;
        }
    }
    let start = Date::from_ymd(year, 1, 1).expect("valid year");
    let end = if year == snapshot_end().year() {
        snapshot_end()
    } else {
        Date::from_ymd(year, 12, 31).expect("valid year")
    };
    let span = end.days_since(start).max(0) + 1;
    // Rejection-sample the weekday profile (max weight 0.22).
    for _ in 0..64 {
        let day = start.plus_days(rng.gen_range(0..span));
        if rng.gen::<f64>() * 0.22 < weekday_weight(day.weekday()) {
            return day;
        }
    }
    start.plus_days(rng.gen_range(0..span))
}

/// Probability that a CVE of the given v2 band enters the NVD the day it is
/// disclosed. Calibrated so that the share *measured through the §4.1
/// estimator* lands near Fig. 1's ≈38%: the estimator loses some early
/// references to dead hosts, which inflates measured zero-lag by roughly
/// ten points over this true rate, exactly as a real crawl would. §4.1's
/// ordering (high-severity CVEs lag more often) is preserved.
fn zero_lag_probability(band: Severity) -> f64 {
    match band {
        Severity::Low => 0.42,
        Severity::Medium => 0.32,
        _ => 0.15,
    }
}

/// Samples the publication lag (days) for a CVE of the given v2 band.
///
/// Mixture: a zero-lag atom, a short uniform 1–6-day component, and a
/// log-normal heavy tail clamped to the paper's observed maximum (2,372
/// days).
pub fn sample_lag(rng: &mut StdRng, band: Severity) -> i32 {
    if rng.gen::<f64>() < zero_lag_probability(band) {
        return 0;
    }
    if rng.gen::<f64>() < 0.52 {
        return rng.gen_range(1..=6);
    }
    // Box–Muller log-normal: ln L ~ N(4.6, 1.0).
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    let lag = (4.6 + z).exp();
    (lag as i32).clamp(7, 2372)
}

/// Applies the publication-batch artifact: with the batch's share, the
/// published date is replaced by the batch day of its year.
pub fn apply_publication_batch(rng: &mut StdRng, published: Date) -> Date {
    for b in publication_batches(published.year()) {
        if rng.gen::<f64>() < b.share {
            return b.date;
        }
    }
    published
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn allocation_sums_to_total() {
        for total in [100, 1000, 107_200] {
            let alloc = year_allocation(total);
            let sum: usize = alloc.iter().map(|(_, n)| n).sum();
            assert_eq!(sum, total);
        }
    }

    #[test]
    fn allocation_peaks_in_2017() {
        let alloc = year_allocation(107_200);
        let max = alloc.iter().max_by_key(|(_, n)| *n).unwrap();
        assert_eq!(max.0, 2017);
    }

    #[test]
    fn nth_weekday_is_correct() {
        // Second Tuesday of January 2018 was the 9th.
        assert_eq!(
            nth_weekday(2018, 1, Weekday::Tuesday, 2),
            Date::from_ymd(2018, 1, 9).unwrap()
        );
        // First Monday of May 2005 was the 2nd.
        assert_eq!(
            nth_weekday(2005, 5, Weekday::Monday, 1),
            Date::from_ymd(2005, 5, 2).unwrap()
        );
    }

    #[test]
    fn disclosure_stays_in_year_and_skews_early_week() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut weekday_counts = [0usize; 7];
        for _ in 0..8000 {
            let date = sample_disclosure(&mut rng, 2012);
            assert_eq!(date.year(), 2012);
            weekday_counts[date.weekday().index()] += 1;
        }
        let mon_tue = weekday_counts[0] + weekday_counts[1];
        let sat_sun = weekday_counts[5] + weekday_counts[6];
        assert!(mon_tue > sat_sun * 2, "{weekday_counts:?}");
    }

    #[test]
    fn batch_days_fall_on_their_paper_dates() {
        let b = disclosure_batches(2014);
        assert_eq!(b[0].date, Date::from_ymd(2014, 9, 9).unwrap());
        assert_eq!(b[0].date.weekday(), Weekday::Tuesday);
        let p = publication_batches(2004);
        assert!(p[0].date.is_new_years_eve());
        assert!((p[0].share - 0.448).abs() < 1e-9);
    }

    #[test]
    fn lag_distribution_matches_fig1_shape() {
        let mut rng = StdRng::seed_from_u64(10);
        // Severity mix per Table 9.
        let mut zero = 0usize;
        let mut within6 = 0usize;
        let mut over7 = 0usize;
        let n = 30_000;
        for _ in 0..n {
            let x: f64 = rng.gen();
            let band = if x < 0.0825 {
                Severity::Low
            } else if x < 0.0825 + 0.5483 {
                Severity::Medium
            } else {
                Severity::High
            };
            let lag = sample_lag(&mut rng, band);
            assert!((0..=2372).contains(&lag));
            if lag == 0 {
                zero += 1;
            }
            if lag <= 6 {
                within6 += 1;
            }
            if lag > 7 {
                over7 += 1;
            }
        }
        let zero_frac = zero as f64 / n as f64;
        let within6_frac = within6 as f64 / n as f64;
        let over7_frac = over7 as f64 / n as f64;
        // True rates sit below the paper's measured ≈38% zero / ≈70% ≤6d /
        // ≈28% >7d: the estimator's dead-host losses add ≈10 points of
        // measured zero-lag on top (see `zero_lag_probability`).
        assert!((0.20..0.34).contains(&zero_frac), "zero {zero_frac}");
        assert!((0.52..0.72).contains(&within6_frac), "≤6 {within6_frac}");
        assert!((0.28..0.44).contains(&over7_frac), ">7 {over7_frac}");
    }

    #[test]
    fn high_severity_lags_more_often() {
        let mut rng = StdRng::seed_from_u64(11);
        let lagged = |band: Severity, rng: &mut StdRng| {
            (0..4000).filter(|_| sample_lag(rng, band) > 0).count() as f64 / 4000.0
        };
        let low = lagged(Severity::Low, &mut rng);
        let high = lagged(Severity::High, &mut rng);
        assert!(high > low + 0.15, "low {low} high {high}");
    }

    #[test]
    fn publication_batch_reassigns_a_share() {
        let mut rng = StdRng::seed_from_u64(12);
        let base = Date::from_ymd(2004, 6, 15).unwrap();
        let nye = (0..4000)
            .map(|_| apply_publication_batch(&mut rng, base))
            .filter(|d| d.is_new_years_eve())
            .count() as f64
            / 4000.0;
        assert!((0.38..0.52).contains(&nye), "NYE share {nye}");
    }
}
