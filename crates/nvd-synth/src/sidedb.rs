//! Side vulnerability databases: SecurityFocus and SecurityTracker.
//!
//! §4.2 applies the NVD-derived vendor-name mapping to two other databases
//! and finds 8% (SecurityFocus, 24,760 vendors) and 3% (SecurityTracker,
//! 4,151 vendors) of their vendor names inconsistent. The side databases
//! here share part of the NVD vendor universe — including its injected
//! aliases at those rates — plus names of their own.

use std::collections::BTreeSet;

use nvd_model::prelude::VendorName;
use rand::rngs::StdRng;
use rand::Rng;

use crate::names::NameUniverse;
use crate::words::{VENDOR_HEADS, VENDOR_TAILS};

/// A non-NVD vulnerability database's vendor list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideDatabase {
    /// Database name (`SecurityFocus` / `SecurityTracker`).
    pub name: String,
    /// Distinct vendor names as this database spells them.
    pub vendors: Vec<VendorName>,
}

impl SideDatabase {
    /// Number of distinct vendor names.
    pub fn len(&self) -> usize {
        self.vendors.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.vendors.is_empty()
    }
}

/// Builds a side database sharing the universe's vendor names.
///
/// * `target` — total distinct vendor names (pre-scaled by the caller);
/// * `alias_fraction` — fraction of names that are NVD-mapped aliases
///   (0.08 for SecurityFocus, 0.03 for SecurityTracker).
pub fn build_side_database(
    rng: &mut StdRng,
    universe: &NameUniverse,
    name: &str,
    target: usize,
    alias_fraction: f64,
) -> SideDatabase {
    let mut vendors: BTreeSet<VendorName> = BTreeSet::new();

    // Alias names first (with their canonicals, as real databases carry
    // both spellings).
    let alias_budget = ((target as f64) * alias_fraction) as usize;
    let mut alias_indices: Vec<usize> = (0..universe.vendor_aliases.len()).collect();
    // Fisher–Yates partial shuffle.
    for i in 0..alias_indices.len().min(alias_budget) {
        let j = rng.gen_range(i..alias_indices.len());
        alias_indices.swap(i, j);
    }
    for &ai in alias_indices.iter().take(alias_budget) {
        let a = &universe.vendor_aliases[ai];
        vendors.insert(a.alias.clone());
        vendors.insert(a.canonical.clone());
    }

    // Shared canonical names.
    let shared_budget = (target * 2) / 3;
    let mut guard = 0;
    while vendors.len() < shared_budget && guard < target * 10 {
        guard += 1;
        let idx = rng.gen_range(0..universe.vendors.len());
        vendors.insert(universe.vendors[idx].name.clone());
    }

    // Database-exclusive names to reach the target.
    let mut salt = 0usize;
    while vendors.len() < target {
        let head = VENDOR_HEADS[rng.gen_range(0..VENDOR_HEADS.len())];
        let tail = VENDOR_TAILS[rng.gen_range(0..VENDOR_TAILS.len())];
        salt += 1;
        let candidate = format!("{head}_{tail}_{}{salt}", name.to_lowercase());
        vendors.insert(VendorName::new(&candidate));
    }

    SideDatabase {
        name: name.to_owned(),
        vendors: vendors.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::NameTargets;
    use rand::SeedableRng;

    fn setup() -> (StdRng, NameUniverse) {
        let mut rng = StdRng::seed_from_u64(21);
        let u = NameUniverse::generate(&mut rng, 0.02, &NameTargets::default());
        (rng, u)
    }

    #[test]
    fn reaches_target_size() {
        let (mut rng, u) = setup();
        let sf = build_side_database(&mut rng, &u, "SecurityFocus", 500, 0.08);
        assert_eq!(sf.len(), 500);
    }

    #[test]
    fn contains_mappable_aliases() {
        let (mut rng, u) = setup();
        let sf = build_side_database(&mut rng, &u, "SecurityFocus", 500, 0.08);
        let alias_map = u.vendor_alias_map();
        let mapped = sf
            .vendors
            .iter()
            .filter(|v| alias_map.contains_key(*v))
            .count();
        assert!(mapped > 0, "side DB must contain NVD aliases");
        let rate = mapped as f64 / sf.len() as f64;
        assert!(rate < 0.2, "alias rate too high: {rate}");
    }

    #[test]
    fn tracker_has_lower_alias_rate_than_focus() {
        let (mut rng, u) = setup();
        let sf = build_side_database(&mut rng, &u, "SecurityFocus", 600, 0.08);
        let st = build_side_database(&mut rng, &u, "SecurityTracker", 600, 0.02);
        let alias_map = u.vendor_alias_map();
        let rate = |db: &SideDatabase| {
            db.vendors
                .iter()
                .filter(|v| alias_map.contains_key(*v))
                .count() as f64
                / db.len() as f64
        };
        assert!(
            rate(&sf) >= rate(&st),
            "SF {} < ST {}",
            rate(&sf),
            rate(&st)
        );
    }

    #[test]
    fn names_are_distinct() {
        let (mut rng, u) = setup();
        let sf = build_side_database(&mut rng, &u, "SecurityFocus", 300, 0.08);
        let set: BTreeSet<&VendorName> = sf.vendors.iter().collect();
        assert_eq!(set.len(), sf.len());
    }
}
