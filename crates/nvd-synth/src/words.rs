//! Word lists for synthesising realistic vendor and product names.
//!
//! The synthetic universe combines a roster of *anchor* vendors (the real
//! names the paper's tables cite, so its case studies reproduce verbatim)
//! with compositional names built from these lists.

/// First components of compositional vendor names.
pub const VENDOR_HEADS: &[&str] = &[
    "net", "soft", "sec", "data", "cyber", "info", "micro", "tech", "web", "cloud", "open", "red",
    "blue", "silver", "iron", "quick", "smart", "deep", "core", "prime", "alpha", "delta", "omni",
    "meta", "giga", "tera", "nano", "hyper", "ultra", "pro", "apex", "east", "west", "north",
    "south", "star", "sun", "moon", "terra", "aqua", "pyro", "volt", "flux", "grid", "link",
    "node", "byte", "bit", "hex", "zen",
];

/// Second components of compositional vendor names.
pub const VENDOR_TAILS: &[&str] = &[
    "works",
    "systems",
    "soft",
    "ware",
    "tech",
    "labs",
    "corp",
    "solutions",
    "security",
    "networks",
    "dynamics",
    "logic",
    "media",
    "tools",
    "forge",
    "stack",
    "base",
    "guard",
    "shield",
    "trust",
    "safe",
    "scan",
    "audit",
    "byte",
    "code",
    "apps",
    "cloud",
    "host",
    "server",
    "comm",
    "tel",
    "sys",
    "dev",
    "group",
    "team",
    "inc",
    "io",
    "hub",
    "port",
    "gate",
    "bridge",
    "point",
    "view",
    "line",
    "path",
    "wave",
    "storm",
    "fire",
    "ice",
];

/// First components of compositional product names.
pub const PRODUCT_HEADS: &[&str] = &[
    "enterprise",
    "secure",
    "smart",
    "easy",
    "rapid",
    "total",
    "active",
    "dynamic",
    "virtual",
    "remote",
    "mobile",
    "central",
    "unified",
    "advanced",
    "express",
    "instant",
    "global",
    "power",
    "master",
    "super",
    "auto",
    "multi",
    "open",
    "free",
    "pro",
    "lite",
    "max",
    "mini",
    "turbo",
    "flex",
];

/// Second components of compositional product names.
pub const PRODUCT_TAILS: &[&str] = &[
    "manager",
    "server",
    "client",
    "suite",
    "studio",
    "portal",
    "gateway",
    "engine",
    "console",
    "monitor",
    "scanner",
    "viewer",
    "editor",
    "builder",
    "designer",
    "explorer",
    "commander",
    "center",
    "desk",
    "mail",
    "chat",
    "store",
    "cart",
    "wiki",
    "blog",
    "forum",
    "cms",
    "crm",
    "erp",
    "vpn",
    "proxy",
    "router",
    "switch",
    "camera",
    "firmware",
    "driver",
    "kernel",
    "player",
    "recorder",
    "archiver",
    "backup",
    "sync",
    "connect",
    "deploy",
    "control",
    "board",
    "panel",
    "agent",
    "daemon",
    "service",
];

/// Generic product names deliberately shared across unrelated vendors, so
/// the shared-product heuristic has honest false-positive candidates to
/// reject (the paper's `#MP ≥ 1 ∧ |LCS| < 3` bucket).
pub const GENERIC_PRODUCTS: &[&str] = &[
    "antivirus",
    "firewall",
    "toolkit",
    "firmware",
    "dashboard",
    "installer",
    "updater",
    "launcher",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_are_nonempty_and_lowercase() {
        for list in [
            VENDOR_HEADS,
            VENDOR_TAILS,
            PRODUCT_HEADS,
            PRODUCT_TAILS,
            GENERIC_PRODUCTS,
        ] {
            assert!(!list.is_empty());
            for w in list {
                assert!(!w.is_empty());
                assert_eq!(w.to_lowercase(), **w, "{w} must be lowercase");
            }
        }
    }

    #[test]
    fn vendor_combinations_exceed_universe_needs() {
        // 50 × 50 heads×tails plus numeric suffixes comfortably exceeds the
        // ≈19K vendors of the full-scale corpus.
        assert!(VENDOR_HEADS.len() * VENDOR_TAILS.len() >= 2000);
    }
}
