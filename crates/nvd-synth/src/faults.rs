//! Seeded fault plans and corrupt delta feeds, with ground truth.
//!
//! The recovery paths grown in this workspace — retrying crawls
//! ([`webarchive::faults`]), transactional ingestion with quarantine
//! (`nvd-clean::incremental`), rollback-safe serve updates — are only as
//! testable as the failures thrown at them. This module generates those
//! failures deterministically:
//!
//! * [`generate_fault_plan`] samples a per-host [`FaultPlan`] (hard-down
//!   mirrors, timed outages, transient flakiness) over the builtin domain
//!   registry, one plan per seed;
//! * [`corrupt_delta_stream`] wraps a [`DeltaStream`] in per-feed JSON
//!   payloads where a seeded rotation of feeds is corrupted — truncated
//!   JSON, conflicting duplicate CVE ids, schema drift — and each
//!   [`CorruptFeed`] carries **ground truth**: whether the whole feed is
//!   poison, which raw ids an ingester must quarantine, and which CVE ids
//!   it must admit.
//!
//! Both run on their own derived RNG streams, so fault generation never
//! perturbs the corpus, latency model or delta partitioning of a seed.

use nvd_model::cve::CveId;
use nvd_model::date::Date;
use nvd_model::feed::FeedDocument;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webarchive::{builtin_domains, FaultMode, FaultPlan};

use crate::delta::{generate_delta_stream, DeltaStream};
use crate::SynthConfig;

/// Stream tag for fault-plan sampling.
const FAULT_STREAM: u64 = 0x6661_756c_7421_0001;

/// Stream tag for feed corruption.
const CORRUPT_STREAM: u64 = 0x636f_7272_7570_7421;

/// Share of registry domains that are hard-down under a sampled plan.
const HARD_DOWN_SHARE: f64 = 0.08;

/// Share of registry domains with a timed outage window.
const OUTAGE_SHARE: f64 = 0.15;

/// Share of registry domains with transient per-attempt flakiness.
const TRANSIENT_SHARE: f64 = 0.25;

/// Samples the per-host fault plan for a seed: roughly 8% of registry
/// domains hard-down, 15% in a timed outage (starting within the first
/// 0.5 s of virtual time, lasting 0.1–2 s), 25% transiently flaky
/// (5–40% per-attempt failure), the rest healthy. The plan seed also
/// feeds the transient draws, so two plans with different seeds disagree
/// even on the same host set.
pub fn generate_fault_plan(seed: u64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(minipar::derive_seed(seed, FAULT_STREAM));
    let mut plan = FaultPlan::new(seed);
    for d in builtin_domains() {
        let draw = rng.gen::<f64>();
        if draw < HARD_DOWN_SHARE {
            plan.set(d.host, FaultMode::HardDown);
        } else if draw < HARD_DOWN_SHARE + OUTAGE_SHARE {
            let from = rng.gen_range(0..500_000u64);
            let len = rng.gen_range(100_000..2_000_000u64);
            plan.set(
                d.host,
                FaultMode::Outage {
                    from,
                    until: from + len,
                },
            );
        } else if draw < HARD_DOWN_SHARE + OUTAGE_SHARE + TRANSIENT_SHARE {
            let per_mille = rng.gen_range(50..400u16);
            plan.set(d.host, FaultMode::Transient { per_mille });
        }
    }
    plan
}

/// How one feed's JSON payload was corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedCorruption {
    /// The payload is the faithful serialization of the feed document.
    Clean,
    /// The payload is cut off mid-document: it cannot parse, so a
    /// transactional ingester must reject the whole feed untouched.
    TruncatedJson,
    /// Some items are repeated with conflicting content (and one with
    /// identical content): the conflicting copies must all be
    /// quarantined, the identical repeat collapsed benignly.
    ConflictingDuplicates,
    /// Some items drifted off-schema (broken id, unparseable date,
    /// garbage CVSS vector): each must be quarantined individually while
    /// the rest of the feed is admitted.
    SchemaDrift,
}

/// One delta feed's corrupt payload plus the ground truth an ingester is
/// graded against.
#[derive(Debug, Clone)]
pub struct CorruptFeed {
    /// The underlying feed's date.
    pub date: Date,
    /// Which corruption was applied.
    pub corruption: FeedCorruption,
    /// The (possibly corrupt) JSON payload to ingest.
    pub json: String,
    /// Whether the payload fails to parse as a whole — i.e. ingestion
    /// must error and mutate nothing.
    pub poisoned: bool,
    /// Raw `CVE_data_meta.ID` strings a correct ingester quarantines from
    /// this feed, ascending and distinct.
    pub quarantined_ids: Vec<String>,
    /// CVE ids a correct ingester admits from this feed, ascending.
    pub admitted_ids: Vec<CveId>,
}

/// A delta stream with per-feed corrupt payloads: the clean stream (for
/// replay-after-rollback comparisons) plus one [`CorruptFeed`] per feed.
#[derive(Debug, Clone)]
pub struct FaultStream {
    /// The untouched underlying delta stream.
    pub stream: DeltaStream,
    /// Per-feed corrupt payloads, aligned with `stream.feeds`.
    pub feeds: Vec<CorruptFeed>,
}

/// Generates a delta stream and corrupts its feed payloads.
///
/// Corruption kinds rotate over the feeds ([`FeedCorruption`] in a seeded
/// starting phase), so any stream of ≥ 4 feeds exercises every kind.
/// Deterministic in `(config, feed_count, fault_seed)`; the corpus and
/// delta partitioning are exactly [`generate_delta_stream`]'s — the fault
/// seed only decides the corruption overlay.
///
/// # Panics
///
/// Panics if `feed_count` is zero or the corpus is too small to carve.
pub fn corrupt_delta_stream(
    config: &SynthConfig,
    feed_count: usize,
    fault_seed: u64,
) -> FaultStream {
    let stream = generate_delta_stream(config, feed_count);
    let mut rng = StdRng::seed_from_u64(minipar::derive_seed(fault_seed, CORRUPT_STREAM));
    let phase = rng.gen_range(0..4usize);
    const KINDS: [FeedCorruption; 4] = [
        FeedCorruption::Clean,
        FeedCorruption::TruncatedJson,
        FeedCorruption::ConflictingDuplicates,
        FeedCorruption::SchemaDrift,
    ];

    let feeds = stream
        .feeds
        .iter()
        .enumerate()
        .map(|(f, feed)| {
            let corruption = KINDS[(f + phase) % KINDS.len()];
            corrupt_feed(feed.date, &feed.document, corruption, &mut rng)
        })
        .collect();
    FaultStream { stream, feeds }
}

/// Applies one corruption kind to a feed document and derives its ground
/// truth.
fn corrupt_feed(
    date: Date,
    document: &FeedDocument,
    corruption: FeedCorruption,
    rng: &mut StdRng,
) -> CorruptFeed {
    let all_ids = |doc: &FeedDocument| -> Vec<CveId> {
        let mut ids: Vec<CveId> = doc
            .items
            .iter()
            .map(|i| i.cve.meta.id.parse().expect("synth feed ids are valid"))
            .collect();
        ids.sort_unstable();
        ids
    };
    let serialize = |doc: &FeedDocument| -> String {
        serde_json::to_string(doc).expect("feed documents serialize")
    };

    match corruption {
        FeedCorruption::Clean => CorruptFeed {
            date,
            corruption,
            json: serialize(document),
            poisoned: false,
            quarantined_ids: Vec::new(),
            admitted_ids: all_ids(document),
        },
        FeedCorruption::TruncatedJson => {
            let full = serialize(document);
            CorruptFeed {
                date,
                corruption,
                json: full[..full.len() * 2 / 3].to_owned(),
                poisoned: true,
                quarantined_ids: Vec::new(),
                admitted_ids: Vec::new(),
            }
        }
        FeedCorruption::ConflictingDuplicates => {
            let mut doc = document.clone();
            let n = doc.items.len();
            // Conflict the first one or two items: repeat each with a
            // flipped published date, poisoning both copies.
            let conflicts = n.min(1 + rng.gen_range(0..2usize));
            let mut quarantined: Vec<String> = Vec::new();
            for i in 0..conflicts {
                let mut copy = doc.items[i].clone();
                copy.published_date = if copy.published_date.starts_with("1998-01-01") {
                    "1998-01-02".to_owned()
                } else {
                    "1998-01-01".to_owned()
                };
                quarantined.push(copy.cve.meta.id.clone());
                doc.items.push(copy);
            }
            // One identical repeat of the last unconflicted item, if any:
            // must collapse benignly, not quarantine.
            if conflicts < n {
                let copy = doc.items[n - 1].clone();
                doc.items.push(copy);
            }
            let quarantined_set: Vec<&str> = quarantined.iter().map(String::as_str).collect();
            let admitted = all_ids(document)
                .into_iter()
                .filter(|id| !quarantined_set.contains(&id.to_string().as_str()))
                .collect();
            quarantined.sort_unstable();
            quarantined.dedup();
            CorruptFeed {
                date,
                corruption,
                json: serialize(&doc),
                poisoned: false,
                quarantined_ids: quarantined,
                admitted_ids: admitted,
            }
        }
        FeedCorruption::SchemaDrift => {
            let mut doc = document.clone();
            let n = doc.items.len();
            let drifted = n.min(1 + rng.gen_range(0..3usize));
            let mut quarantined: Vec<String> = Vec::new();
            let mut dropped: Vec<String> = Vec::new();
            for i in 0..drifted {
                let item = &mut doc.items[i];
                dropped.push(item.cve.meta.id.clone());
                match i % 3 {
                    0 => {
                        // The id itself drifts: quarantined under the raw
                        // (broken) string, as an ingester sees it.
                        item.cve.meta.id = format!("CVE-DRIFT-{i}");
                        quarantined.push(item.cve.meta.id.clone());
                    }
                    1 => {
                        item.published_date = "not-a-date".to_owned();
                        quarantined.push(item.cve.meta.id.clone());
                    }
                    _ => {
                        let mut mutated = false;
                        for node in &mut item.configurations.nodes {
                            for m in &mut node.cpe_match {
                                m.cpe23_uri = "cpe:9.9:garbage".to_owned();
                                mutated = true;
                            }
                        }
                        if !mutated {
                            // No CPE rows to break: drift the date instead.
                            item.last_modified_date = "never".to_owned();
                        }
                        quarantined.push(item.cve.meta.id.clone());
                    }
                }
            }
            let admitted = all_ids(document)
                .into_iter()
                .filter(|id| !dropped.contains(&id.to_string()))
                .collect();
            quarantined.sort_unstable();
            quarantined.dedup();
            CorruptFeed {
                date,
                corruption,
                json: serialize(&doc),
                poisoned: false,
                quarantined_ids: quarantined,
                admitted_ids: admitted,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::feed::{item_to_entry, parse_feed_json};

    fn small_config() -> SynthConfig {
        SynthConfig::with_scale(0.002, 0xfa171)
    }

    #[test]
    fn fault_plan_is_deterministic_and_mixed() {
        let a = generate_fault_plan(11);
        let b = generate_fault_plan(11);
        assert_eq!(a, b, "equal seeds must give equal plans");
        assert_ne!(a, generate_fault_plan(12), "seeds must matter");
        let modes: Vec<Option<FaultMode>> =
            builtin_domains().iter().map(|d| a.mode(d.host)).collect();
        assert!(modes.iter().any(|m| matches!(m, Some(FaultMode::HardDown))));
        assert!(modes
            .iter()
            .any(|m| matches!(m, Some(FaultMode::Outage { .. }))));
        assert!(modes
            .iter()
            .any(|m| matches!(m, Some(FaultMode::Transient { .. }))));
        assert!(modes.iter().any(Option::is_none), "some hosts stay healthy");
        assert!(a.len() < builtin_domains().len());
    }

    #[test]
    fn corrupt_stream_is_deterministic_and_rotates_kinds() {
        let a = corrupt_delta_stream(&small_config(), 4, 5);
        let b = corrupt_delta_stream(&small_config(), 4, 5);
        assert_eq!(a.feeds.len(), 4);
        for (fa, fb) in a.feeds.iter().zip(&b.feeds) {
            assert_eq!(fa.json, fb.json);
            assert_eq!(fa.corruption, fb.corruption);
            assert_eq!(fa.quarantined_ids, fb.quarantined_ids);
            assert_eq!(fa.admitted_ids, fb.admitted_ids);
        }
        let mut kinds: Vec<FeedCorruption> = a.feeds.iter().map(|f| f.corruption).collect();
        kinds.sort_by_key(|k| *k as usize);
        kinds.dedup();
        assert_eq!(kinds.len(), 4, "four feeds must cover all four kinds");
    }

    #[test]
    fn ground_truth_matches_payload_shape() {
        let fs = corrupt_delta_stream(&small_config(), 4, 9);
        for (cf, feed) in fs.feeds.iter().zip(&fs.stream.feeds) {
            let feed_ids = feed.document.items.len();
            match cf.corruption {
                FeedCorruption::Clean => {
                    let doc = parse_feed_json(&cf.json).expect("clean feed parses");
                    assert!(cf.quarantined_ids.is_empty());
                    assert_eq!(cf.admitted_ids.len(), feed_ids);
                    assert!(!cf.poisoned);
                    assert!(doc.items.iter().all(|i| item_to_entry(i).is_ok()));
                }
                FeedCorruption::TruncatedJson => {
                    assert!(cf.poisoned);
                    assert!(parse_feed_json(&cf.json).is_err(), "truncation must break");
                    assert!(cf.admitted_ids.is_empty());
                }
                FeedCorruption::ConflictingDuplicates => {
                    let doc = parse_feed_json(&cf.json).expect("dup feed still parses");
                    assert!(doc.items.len() > feed_ids, "copies were appended");
                    assert!(!cf.quarantined_ids.is_empty());
                    assert_eq!(
                        cf.admitted_ids.len() + cf.quarantined_ids.len(),
                        feed_ids,
                        "every original id is admitted or quarantined"
                    );
                }
                FeedCorruption::SchemaDrift => {
                    let doc = parse_feed_json(&cf.json).expect("drifted feed still parses");
                    let broken = doc
                        .items
                        .iter()
                        .filter(|i| item_to_entry(i).is_err())
                        .count();
                    assert_eq!(broken, cf.quarantined_ids.len(), "each drifted item breaks");
                    assert_eq!(cf.admitted_ids.len() + broken, feed_ids);
                }
            }
            assert!(cf.quarantined_ids.windows(2).all(|w| w[0] < w[1]));
            assert!(cf.admitted_ids.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
