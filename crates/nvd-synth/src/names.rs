//! The vendor/product name universe, with ground-truth-labelled
//! inconsistency injection.
//!
//! §4.2 of the paper measures ≈19K distinct vendor names of which ≈10% are
//! impacted by naming inconsistencies (≈1.8K names consolidating under 871),
//! and ≈46.7K product names of which ≈6% are impacted (3.1K names across 700
//! vendors). The inconsistencies follow recognisable patterns (Table 2 and
//! Appendix A.4): special-character variants, misspellings, abbreviations,
//! prefix extensions, products used as vendor names, developers/acquisitions
//! listed alongside the company. This module builds a calibrated universe
//! with exactly those patterns injected, remembering the truth so detection
//! quality is measurable.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use nvd_model::prelude::{ProductName, VendorName};
use rand::rngs::StdRng;
use rand::Rng;

use crate::words::{GENERIC_PRODUCTS, PRODUCT_HEADS, PRODUCT_TAILS, VENDOR_HEADS, VENDOR_TAILS};

/// How an injected alias relates to its canonical vendor name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AliasPattern {
    /// Identical up to special characters (`avast` / `avast!`).
    SpecialChars,
    /// A human typo (`microsoft` / `microsft`).
    Misspelling,
    /// An abbreviation (`lan_management_system` / `lms`).
    Abbreviation,
    /// One name is a strict prefix of the other (`lynx` / `lynx_project`).
    PrefixExtension,
    /// A product of the vendor used as a vendor name (`microsoft` /
    /// `windows`).
    ProductAsVendor,
    /// An unrelated-looking name that shares the vendor's products — e.g. a
    /// developer or pre-acquisition company (`nginx` / `igor_sysoev`).
    SharedProductOnly,
}

impl AliasPattern {
    /// All patterns, for iteration in reports.
    pub const ALL: [AliasPattern; 6] = [
        AliasPattern::SpecialChars,
        AliasPattern::Misspelling,
        AliasPattern::Abbreviation,
        AliasPattern::PrefixExtension,
        AliasPattern::ProductAsVendor,
        AliasPattern::SharedProductOnly,
    ];
}

/// One injected vendor-name inconsistency.
#[derive(Debug, Clone, PartialEq)]
pub struct VendorAlias {
    /// The inconsistent name as it appears in some CVE entries.
    pub alias: VendorName,
    /// The name the paper's method should consolidate it to.
    pub canonical: VendorName,
    /// The naming pattern this alias was built with.
    pub pattern: AliasPattern,
    /// Probability that a CVE of this vendor is recorded under the alias.
    pub share: f64,
}

/// One injected product-name inconsistency (within a canonical vendor).
#[derive(Debug, Clone, PartialEq)]
pub struct ProductAlias {
    /// The canonical vendor owning the product.
    pub vendor: VendorName,
    /// The inconsistent product name.
    pub alias: ProductName,
    /// The canonical product name.
    pub canonical: ProductName,
    /// Probability that a CVE of this product is recorded under the alias.
    pub share: f64,
}

/// One canonical vendor: name, CVE popularity, and its product list with
/// per-product popularity weights.
#[derive(Debug, Clone, PartialEq)]
pub struct VendorEntry {
    /// Canonical vendor name.
    pub name: VendorName,
    /// Relative share of CVEs attributed to this vendor.
    pub weight: f64,
    /// Products with sampling weights (descending popularity).
    pub products: Vec<(ProductName, f64)>,
}

/// The complete name universe plus injected inconsistencies.
#[derive(Debug, Clone, PartialEq)]
pub struct NameUniverse {
    /// Canonical vendors, heaviest first.
    pub vendors: Vec<VendorEntry>,
    /// Injected vendor aliases (the ground truth for §4.2 vendor cleaning).
    pub vendor_aliases: Vec<VendorAlias>,
    /// Injected product aliases (the ground truth for §4.2 product
    /// cleaning).
    pub product_aliases: Vec<ProductAlias>,
    cumulative_weights: Vec<f64>,
}

/// Anchor vendors: name, CVE-share weight (Table 11 left), product-count
/// share (Table 11 right), both in arbitrary units re-normalised later.
const ANCHORS: &[(&str, f64, usize)] = &[
    ("microsoft", 6.16, 49),
    ("oracle", 5.27, 55),
    ("apple", 4.26, 28),
    ("ibm", 3.88, 93),
    ("google", 3.67, 25),
    ("cisco", 3.43, 182),
    ("adobe", 2.68, 30),
    ("linux", 2.12, 8),
    ("debian", 2.12, 12),
    ("redhat", 2.01, 40),
    ("hp", 1.80, 307),
    ("mozilla", 1.50, 12),
    ("sun", 1.30, 25),
    ("apache", 1.25, 38),
    ("novell", 0.95, 22),
    ("php", 0.90, 6),
    ("wordpress", 0.85, 5),
    ("ubuntu", 0.80, 8),
    ("suse", 0.70, 12),
    ("joomla", 0.65, 4),
    ("drupal", 0.60, 5),
    ("fedoraproject", 0.55, 6),
    ("huawei", 0.55, 70),
    ("intel", 0.50, 72),
    ("symantec", 0.48, 25),
    ("vmware", 0.45, 18),
    ("siemens", 0.45, 51),
    ("qualcomm", 0.42, 30),
    ("lenovo", 0.40, 58),
    ("axis", 0.38, 81),
    ("mcafee", 0.35, 18),
    ("schneider_electric", 0.32, 40),
    ("nvidia", 0.30, 12),
    ("trendmicro", 0.28, 14),
    ("freebsd", 0.28, 3),
    ("kaspersky", 0.25, 10),
    ("openbsd", 0.24, 3),
    ("openssl", 0.22, 2),
    ("avg", 0.20, 4),
    ("avast", 0.20, 4),
    ("bea", 0.18, 6),
    ("netbsd", 0.15, 2),
    ("tor", 0.15, 3),
    ("nginx", 0.14, 2),
    ("aol", 0.12, 5),
    ("quickheal", 0.10, 5),
    ("lan_management_system", 0.05, 2),
    ("lynx", 0.04, 1),
    ("nativesolutions", 0.03, 2),
    ("provos", 0.03, 2),
];

/// Anchor aliases reproducing the paper's cited examples (§4.2, Table 16,
/// Appendix A.4). `(alias, canonical, pattern, share)`.
const ANCHOR_ALIASES: &[(&str, &str, AliasPattern, f64)] = &[
    ("microsft", "microsoft", AliasPattern::Misspelling, 0.012),
    ("windows", "microsoft", AliasPattern::ProductAsVendor, 0.015),
    ("avast!", "avast", AliasPattern::SpecialChars, 0.25),
    ("bea_systems", "bea", AliasPattern::PrefixExtension, 0.076),
    ("lynx_project", "lynx", AliasPattern::PrefixExtension, 0.3),
    (
        "lms",
        "lan_management_system",
        AliasPattern::Abbreviation,
        0.3,
    ),
    (
        "chneider_electric",
        "schneider_electric",
        AliasPattern::Misspelling,
        0.05,
    ),
    ("kernel", "linux", AliasPattern::ProductAsVendor, 0.02),
    (
        "openssl_project",
        "openssl",
        AliasPattern::PrefixExtension,
        0.3,
    ),
    ("torproject", "tor", AliasPattern::PrefixExtension, 0.35),
    ("quick_heal", "quickheal", AliasPattern::SpecialChars, 0.3),
    ("cat", "quickheal", AliasPattern::SharedProductOnly, 0.15),
    ("igor_sysoev", "nginx", AliasPattern::SharedProductOnly, 0.2),
    (
        "neilsprovos",
        "provos",
        AliasPattern::SharedProductOnly,
        0.3,
    ),
    ("icq", "aol", AliasPattern::ProductAsVendor, 0.2),
];

/// Anchor products guaranteed to exist, `(vendor, products…)`; the first
/// product is the most popular.
const ANCHOR_PRODUCTS: &[(&str, &[&str])] = &[
    (
        "microsoft",
        &[
            "windows",
            "internet_explorer",
            "office",
            "exchange_server",
            "sql_server",
            "sharepoint",
            "edge",
            "dotnet_framework",
        ],
    ),
    (
        "oracle",
        &[
            "database_server",
            "java",
            "mysql",
            "weblogic",
            "solaris",
            "peoplesoft",
        ],
    ),
    (
        "apple",
        &[
            "mac_os_x",
            "iphone_os",
            "safari",
            "itunes",
            "quicktime",
            "watchos",
        ],
    ),
    (
        "ibm",
        &["websphere", "db2", "aix", "domino", "tivoli", "rational"],
    ),
    ("google", &["chrome", "android", "v8", "chrome_os"]),
    (
        "cisco",
        &[
            "ios",
            "asa",
            "unified_communications_manager",
            "webex",
            "ucs-e160dp-m1_firmware",
            "ucs-e140dp-m1_firmware",
        ],
    ),
    (
        "adobe",
        &[
            "flash_player",
            "acrobat",
            "reader",
            "coldfusion",
            "photoshop",
        ],
    ),
    ("linux", &["kernel", "util-linux"]),
    ("debian", &["debian_linux", "apt", "dpkg"]),
    ("redhat", &["enterprise_linux", "openshift", "jboss"]),
    (
        "hp",
        &[
            "openview",
            "laserjet_firmware",
            "integrated_lights-out",
            "systems_insight_manager",
        ],
    ),
    ("mozilla", &["firefox", "thunderbird", "seamonkey"]),
    ("wordpress", &["wordpress"]),
    ("avg", &["antivirus", "internet_security"]),
    ("avast", &["antivirus", "premier"]),
    ("bea", &["weblogic_server", "tuxedo"]),
    ("tor", &["tor", "tor_browser"]),
    ("nginx", &["nginx"]),
    ("aol", &["icq", "aim", "aol_desktop"]),
    (
        "quickheal",
        &["antivirus", "total_security", "internet_security"],
    ),
    ("lan_management_system", &["lms_client", "lms_server"]),
    ("lynx", &["lynx"]),
    ("nativesolutions", &["the_banner_engine"]),
    ("provos", &["systrace", "honeyd"]),
    ("openssl", &["openssl"]),
    (
        "schneider_electric",
        &["modicon_m340_firmware", "unity_pro", "somachine"],
    ),
];

/// Anchor product aliases from the paper (`(vendor, alias, canonical)`).
const ANCHOR_PRODUCT_ALIASES: &[(&str, &str, &str, f64)] = &[
    ("avg", "anti-virus", "antivirus", 0.3),
    ("microsoft", "internet-explorer", "internet_explorer", 0.08),
    ("microsoft", "ie", "internet_explorer", 0.04),
    (
        "nativesolutions",
        "tbe_banner_engine",
        "the_banner_engine",
        0.3,
    ),
];

/// Calibration targets, expressed at scale 1.0 (the paper's snapshot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NameTargets {
    /// Distinct canonical vendor names (paper: 18,991 incl. aliases).
    pub vendors: usize,
    /// Distinct product names across vendors (paper: 46,685).
    pub products: usize,
    /// Fraction of canonical vendors given at least one alias (paper: 871
    /// of ≈18K ≈ 4.6%).
    pub vendor_alias_rate: f64,
    /// Fraction of vendors whose products get aliases (paper: 700 vendors).
    pub product_alias_vendor_rate: f64,
}

impl Default for NameTargets {
    fn default() -> Self {
        Self {
            vendors: 18_991,
            products: 46_685,
            vendor_alias_rate: 0.046,
            product_alias_vendor_rate: 0.037,
        }
    }
}

impl NameUniverse {
    /// Generates a universe scaled down from the paper's snapshot.
    ///
    /// `scale` multiplies the vendor/product targets; anchors are always
    /// present so the paper's concrete examples exist at any scale.
    pub fn generate(rng: &mut StdRng, scale: f64, targets: &NameTargets) -> Self {
        let vendor_target = ((targets.vendors as f64 * scale) as usize).max(ANCHORS.len() + 20);
        let product_target = ((targets.products as f64 * scale) as usize).max(vendor_target * 2);

        let mut used_names: BTreeSet<String> =
            ANCHORS.iter().map(|(n, _, _)| (*n).to_owned()).collect();
        for (alias, _, _, _) in ANCHOR_ALIASES {
            used_names.insert((*alias).to_owned());
        }

        // --- canonical vendors -------------------------------------------
        let mut vendors: Vec<VendorEntry> = Vec::with_capacity(vendor_target);
        let anchor_products: BTreeMap<&str, &[&str]> =
            ANCHOR_PRODUCTS.iter().map(|(v, p)| (*v, *p)).collect();
        let anchor_product_count: usize = ANCHORS.iter().map(|(_, _, c)| c).sum();
        // Anchors own a fixed share of the product universe; scale their
        // per-vendor counts proportionally, but never below the named list.
        let anchor_product_budget =
            (product_target / 5).max(anchor_product_count.min(product_target / 2));
        for (name, weight, product_count_hint) in ANCHORS {
            let named: &[&str] = anchor_products.get(name).copied().unwrap_or(&[]);
            let scaled =
                (*product_count_hint * anchor_product_budget) / anchor_product_count.max(1);
            let count = scaled.max(named.len()).max(1);
            let products = build_products(rng, named, count, &mut BTreeSet::new());
            vendors.push(VendorEntry {
                name: VendorName::new(name),
                weight: *weight,
                products,
            });
        }

        // Synthetic tail vendors with Zipf-decaying weights.
        let mut salt = 0usize;
        while vendors.len() < vendor_target {
            let head = VENDOR_HEADS[rng.gen_range(0..VENDOR_HEADS.len())];
            let tail = VENDOR_TAILS[rng.gen_range(0..VENDOR_TAILS.len())];
            let base = match rng.gen_range(0..3) {
                0 => format!("{head}{tail}"),
                1 => format!("{head}_{tail}"),
                _ => {
                    salt += 1;
                    format!("{head}{tail}{salt}")
                }
            };
            if !used_names.insert(base.clone()) {
                continue;
            }
            let rank = vendors.len() as f64;
            let weight = 8.0 / (rank + 10.0).powf(1.05);
            // Most tail vendors have a couple of products; a few have many.
            let n_products = 1 + (rng.gen::<f64>().powi(3) * 9.0) as usize;
            let products = build_products(rng, &[], n_products, &mut BTreeSet::new());
            vendors.push(VendorEntry {
                name: VendorName::new(&base),
                weight,
                products,
            });
        }

        // Pad the product universe towards its target by giving random tail
        // vendors extra products.
        let mut total_products: usize = vendors.iter().map(|v| v.products.len()).sum();
        while total_products < product_target {
            let idx = rng.gen_range(ANCHORS.len().min(vendors.len() - 1)..vendors.len());
            let mut names: BTreeSet<String> = vendors[idx]
                .products
                .iter()
                .map(|(p, _)| p.as_str().to_owned())
                .collect();
            let extra = build_products(rng, &[], 1, &mut names);
            vendors[idx].products.extend(extra);
            total_products += 1;
        }

        // Sprinkle generic product names over unrelated vendors so the
        // shared-product heuristic sees honest false candidates.
        for generic in GENERIC_PRODUCTS {
            for _ in 0..3 {
                let idx = rng.gen_range(0..vendors.len());
                let p = ProductName::new(generic);
                if !vendors[idx].products.iter().any(|(q, _)| *q == p) {
                    vendors[idx].products.push((p, 0.3));
                }
            }
        }

        // --- vendor aliases ------------------------------------------------
        let mut vendor_aliases: Vec<VendorAlias> = ANCHOR_ALIASES
            .iter()
            .map(|(alias, canonical, pattern, share)| VendorAlias {
                alias: VendorName::new(alias),
                canonical: VendorName::new(canonical),
                pattern: *pattern,
                share: *share,
            })
            .collect();

        let alias_target = ((vendor_target as f64) * targets.vendor_alias_rate) as usize;
        let mut aliased: BTreeSet<String> = vendor_aliases
            .iter()
            .map(|a| a.canonical.as_str().to_owned())
            .collect();
        let mut attempts = 0;
        while aliased.len() < alias_target && attempts < alias_target * 20 {
            attempts += 1;
            let idx = rng.gen_range(ANCHORS.len().min(vendors.len() - 1)..vendors.len());
            let canonical = vendors[idx].name.clone();
            if aliased.contains(canonical.as_str()) {
                continue;
            }
            let pattern = sample_pattern(rng);
            let Some(alias) = synthesize_alias(rng, &vendors[idx], pattern, &used_names) else {
                continue;
            };
            used_names.insert(alias.clone());
            aliased.insert(canonical.as_str().to_owned());
            vendor_aliases.push(VendorAlias {
                alias: VendorName::new(&alias),
                canonical,
                pattern,
                share: rng.gen_range(0.1..0.45),
            });
        }

        // --- product aliases -----------------------------------------------
        let mut product_aliases: Vec<ProductAlias> = ANCHOR_PRODUCT_ALIASES
            .iter()
            .map(|(vendor, alias, canonical, share)| ProductAlias {
                vendor: VendorName::new(vendor),
                alias: ProductName::new(alias),
                canonical: ProductName::new(canonical),
                share: *share,
            })
            .collect();
        let pa_vendor_target =
            ((vendor_target as f64) * targets.product_alias_vendor_rate) as usize;
        let mut pa_vendors: BTreeSet<String> = product_aliases
            .iter()
            .map(|a| a.vendor.as_str().to_owned())
            .collect();
        attempts = 0;
        while pa_vendors.len() < pa_vendor_target && attempts < pa_vendor_target * 20 {
            attempts += 1;
            let idx = rng.gen_range(0..vendors.len());
            let vendor = vendors[idx].name.clone();
            if pa_vendors.contains(vendor.as_str()) {
                continue;
            }
            let n = 1 + rng.gen_range(0..4usize);
            let mut made = 0;
            for _ in 0..n {
                if vendors[idx].products.is_empty() {
                    break;
                }
                let p_idx = rng.gen_range(0..vendors[idx].products.len());
                let canonical = vendors[idx].products[p_idx].0.clone();
                let Some(alias) = synthesize_product_alias(rng, canonical.as_str()) else {
                    continue;
                };
                if vendors[idx]
                    .products
                    .iter()
                    .any(|(p, _)| p.as_str() == alias)
                {
                    continue;
                }
                product_aliases.push(ProductAlias {
                    vendor: vendor.clone(),
                    alias: ProductName::new(&alias),
                    canonical,
                    share: rng.gen_range(0.1..0.4),
                });
                made += 1;
            }
            if made > 0 {
                pa_vendors.insert(vendor.as_str().to_owned());
            }
        }

        let mut cumulative_weights = Vec::with_capacity(vendors.len());
        let mut acc = 0.0;
        for v in &vendors {
            acc += v.weight;
            cumulative_weights.push(acc);
        }

        Self {
            vendors,
            vendor_aliases,
            product_aliases,
            cumulative_weights,
        }
    }

    /// Samples a canonical vendor index, weighted by CVE popularity.
    pub fn sample_vendor(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative_weights.last().expect("non-empty universe");
        let x = rng.gen::<f64>() * total;
        match self
            .cumulative_weights
            .binary_search_by(|w| w.partial_cmp(&x).unwrap())
        {
            Ok(i) | Err(i) => i.min(self.vendors.len() - 1),
        }
    }

    /// Samples a product of the given vendor (popularity-weighted).
    pub fn sample_product(&self, rng: &mut StdRng, vendor_idx: usize) -> ProductName {
        let products = &self.vendors[vendor_idx].products;
        let total: f64 = products.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen::<f64>() * total;
        for (p, w) in products {
            x -= w;
            if x <= 0.0 {
                return p.clone();
            }
        }
        products.last().expect("vendor has products").0.clone()
    }

    /// The alias (if any) a CVE for this vendor should be recorded under,
    /// given the per-alias share coin flips.
    pub fn maybe_vendor_alias(
        &self,
        rng: &mut StdRng,
        vendor: &VendorName,
    ) -> Option<&VendorAlias> {
        let candidates: Vec<&VendorAlias> = self
            .vendor_aliases
            .iter()
            .filter(|a| a.canonical == *vendor)
            .collect();
        candidates.into_iter().find(|a| rng.gen::<f64>() < a.share)
    }

    /// The alias (if any) a CVE for this vendor+product should use.
    pub fn maybe_product_alias(
        &self,
        rng: &mut StdRng,
        vendor: &VendorName,
        product: &ProductName,
    ) -> Option<&ProductAlias> {
        let candidates: Vec<&ProductAlias> = self
            .product_aliases
            .iter()
            .filter(|a| a.vendor == *vendor && a.canonical == *product)
            .collect();
        candidates.into_iter().find(|a| rng.gen::<f64>() < a.share)
    }

    /// Ground-truth vendor alias → canonical mapping.
    pub fn vendor_alias_map(&self) -> BTreeMap<VendorName, VendorName> {
        self.vendor_aliases
            .iter()
            .map(|a| (a.alias.clone(), a.canonical.clone()))
            .collect()
    }

    /// Ground-truth (canonical vendor, alias product) → canonical product.
    pub fn product_alias_map(&self) -> BTreeMap<(VendorName, ProductName), ProductName> {
        self.product_aliases
            .iter()
            .map(|a| ((a.vendor.clone(), a.alias.clone()), a.canonical.clone()))
            .collect()
    }

    /// Total distinct product names across canonical vendors.
    pub fn product_count(&self) -> usize {
        self.vendors.iter().map(|v| v.products.len()).sum()
    }
}

fn sample_pattern(rng: &mut StdRng) -> AliasPattern {
    let x: f64 = rng.gen();
    if x < 0.25 {
        AliasPattern::SpecialChars
    } else if x < 0.45 {
        AliasPattern::Misspelling
    } else if x < 0.55 {
        AliasPattern::Abbreviation
    } else if x < 0.80 {
        AliasPattern::PrefixExtension
    } else if x < 0.90 {
        AliasPattern::ProductAsVendor
    } else {
        AliasPattern::SharedProductOnly
    }
}

fn synthesize_alias(
    rng: &mut StdRng,
    vendor: &VendorEntry,
    pattern: AliasPattern,
    used: &BTreeSet<String>,
) -> Option<String> {
    let name = vendor.name.as_str();
    let candidate = match pattern {
        AliasPattern::SpecialChars => {
            if name.contains('_') {
                name.replace('_', "")
            } else if rng.gen() {
                format!("{name}!")
            } else if name.len() >= 4 {
                let mid = name.len() / 2;
                format!("{}_{}", &name[..mid], &name[mid..])
            } else {
                format!("{name}-inc")
            }
        }
        AliasPattern::Misspelling => {
            if name.len() < 4 {
                return None;
            }
            // Drop one interior character.
            let pos = rng.gen_range(1..name.len() - 1);
            if !name.is_char_boundary(pos) || !name.is_char_boundary(pos + 1) {
                return None;
            }
            format!("{}{}", &name[..pos], &name[pos + 1..])
        }
        AliasPattern::Abbreviation => {
            let parts: Vec<&str> = name.split('_').filter(|p| !p.is_empty()).collect();
            if parts.len() < 2 {
                return None;
            }
            parts
                .iter()
                .filter_map(|p| p.chars().next())
                .collect::<String>()
        }
        AliasPattern::PrefixExtension => {
            let suffix =
                ["_project", "_inc", "_software", "_team", "_org"][rng.gen_range(0..5usize)];
            format!("{name}{suffix}")
        }
        AliasPattern::ProductAsVendor => {
            let (p, _) = &vendor.products[rng.gen_range(0..vendor.products.len())];
            p.as_str().to_owned()
        }
        AliasPattern::SharedProductOnly => {
            // A developer-persona name unrelated to the company name.
            let head = VENDOR_HEADS[rng.gen_range(0..VENDOR_HEADS.len())];
            let tail = VENDOR_TAILS[rng.gen_range(0..VENDOR_TAILS.len())];
            format!("{head}_{tail}_dev")
        }
    };
    if candidate == name || candidate.len() < 2 || used.contains(&candidate) {
        None
    } else {
        Some(candidate)
    }
}

fn synthesize_product_alias(rng: &mut StdRng, name: &str) -> Option<String> {
    match rng.gen_range(0..3) {
        // Separator variant: internet_explorer → internet-explorer.
        0 => {
            if name.contains('_') {
                Some(name.replace('_', "-"))
            } else if name.contains('-') {
                Some(name.replace('-', "_"))
            } else {
                None
            }
        }
        // Abbreviation: internet_explorer → ie.
        1 => {
            let parts: Vec<&str> = name.split(['_', '-']).filter(|p| !p.is_empty()).collect();
            if parts.len() < 2 {
                return None;
            }
            Some(parts.iter().filter_map(|p| p.chars().next()).collect())
        }
        // Typo: drop an interior character.
        _ => {
            if name.len() < 5 {
                return None;
            }
            let pos = rng.gen_range(1..name.len() - 1);
            if !name.is_char_boundary(pos) || !name.is_char_boundary(pos + 1) {
                return None;
            }
            Some(format!("{}{}", &name[..pos], &name[pos + 1..]))
        }
    }
}

fn build_products(
    rng: &mut StdRng,
    named: &[&str],
    count: usize,
    used: &mut BTreeSet<String>,
) -> Vec<(ProductName, f64)> {
    let mut out: Vec<(ProductName, f64)> = Vec::with_capacity(count);
    for (i, n) in named.iter().enumerate() {
        used.insert((*n).to_owned());
        out.push((ProductName::new(n), 4.0 / (i as f64 + 1.0)));
    }
    let mut salt = 0;
    while out.len() < count {
        let head = PRODUCT_HEADS[rng.gen_range(0..PRODUCT_HEADS.len())];
        let tail = PRODUCT_TAILS[rng.gen_range(0..PRODUCT_TAILS.len())];
        let name = match rng.gen_range(0..3) {
            0 => format!("{head}_{tail}"),
            1 => format!("{head}{tail}"),
            _ => {
                salt += 1;
                format!("{head}_{tail}_{salt}")
            }
        };
        if used.insert(name.clone()) {
            let rank = out.len() as f64;
            out.push((ProductName::new(&name), 2.0 / (rank + 2.0)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_universe() -> NameUniverse {
        let mut rng = StdRng::seed_from_u64(42);
        NameUniverse::generate(&mut rng, 0.02, &NameTargets::default())
    }

    #[test]
    fn anchors_always_present() {
        let u = small_universe();
        for (name, _, _) in ANCHORS {
            assert!(
                u.vendors.iter().any(|v| v.name.as_str() == *name),
                "missing anchor {name}"
            );
        }
    }

    #[test]
    fn paper_examples_injected() {
        let u = small_universe();
        let map = u.vendor_alias_map();
        assert_eq!(
            map.get(&VendorName::new("microsft")).map(|v| v.as_str()),
            Some("microsoft")
        );
        assert_eq!(
            map.get(&VendorName::new("bea_systems")).map(|v| v.as_str()),
            Some("bea")
        );
        let pmap = u.product_alias_map();
        assert_eq!(
            pmap.get(&(VendorName::new("avg"), ProductName::new("anti-virus")))
                .map(|p| p.as_str()),
            Some("antivirus")
        );
    }

    #[test]
    fn vendor_target_scales() {
        let u = small_universe();
        let expect = (18_991.0 * 0.02) as usize;
        assert!(
            (u.vendors.len() as i64 - expect as i64).unsigned_abs() < 40,
            "got {} vendors, want ≈{expect}",
            u.vendors.len()
        );
    }

    #[test]
    fn alias_rate_near_target() {
        let u = small_universe();
        let canonicals: BTreeSet<&str> = u
            .vendor_aliases
            .iter()
            .map(|a| a.canonical.as_str())
            .collect();
        let rate = canonicals.len() as f64 / u.vendors.len() as f64;
        assert!(
            (0.02..0.10).contains(&rate),
            "aliased-canonical rate {rate}"
        );
    }

    #[test]
    fn aliases_are_distinct_from_canonicals() {
        let u = small_universe();
        let canon: BTreeSet<&str> = u.vendors.iter().map(|v| v.name.as_str()).collect();
        for a in &u.vendor_aliases {
            if a.pattern != AliasPattern::ProductAsVendor {
                assert_ne!(a.alias, a.canonical);
            }
            assert!(
                canon.contains(a.canonical.as_str()),
                "canonical {} missing",
                a.canonical
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let t = NameTargets::default();
        let u1 = NameUniverse::generate(&mut r1, 0.01, &t);
        let u2 = NameUniverse::generate(&mut r2, 0.01, &t);
        assert_eq!(u1, u2);
    }

    #[test]
    fn sampling_respects_weights_roughly() {
        let u = small_universe();
        let mut rng = StdRng::seed_from_u64(9);
        let mut microsoft = 0;
        let n = 20_000;
        for _ in 0..n {
            let idx = u.sample_vendor(&mut rng);
            if u.vendors[idx].name.as_str() == "microsoft" {
                microsoft += 1;
            }
        }
        let share = microsoft as f64 / n as f64;
        // microsoft weight 6.16 over total ≈ a few percent.
        assert!(share > 0.01 && share < 0.25, "microsoft share {share}");
    }

    #[test]
    fn product_alias_patterns_parse() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            synthesize_product_alias(&mut rng, "internet_explorer"),
            Some("internet-explorer".to_owned())
        );
    }

    #[test]
    fn abbreviation_of_multiword_vendor() {
        let mut rng = StdRng::seed_from_u64(3);
        let entry = VendorEntry {
            name: VendorName::new("lan_management_system"),
            weight: 1.0,
            products: vec![(ProductName::new("client"), 1.0)],
        };
        let a = synthesize_alias(
            &mut rng,
            &entry,
            AliasPattern::Abbreviation,
            &BTreeSet::new(),
        );
        assert_eq!(a, Some("lms".to_owned()));
    }
}
