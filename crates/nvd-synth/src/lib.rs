//! # nvd-synth
//!
//! Calibrated synthetic NVD corpus generator for the `nvd-clean` workspace —
//! the Rust reproduction of *"Cleaning the NVD"* (Anwar et al., DSN 2021).
//!
//! The paper studies a snapshot of the real NVD (May 2018: 107.2K CVEs, 453
//! CWE types, 18.9K vendors, 46.6K products, 37.5K CVEs with CVSS v3,
//! 591.4K reference URLs) that cannot ship with a reproduction. This crate
//! generates a corpus with the same schema and the same *marginal
//! statistics*, with every data-quality defect the paper measures injected
//! at its measured rate and remembered as ground truth:
//!
//! * publication lag over true disclosure dates (Fig. 1) plus the
//!   New-Year's-Eve backfill artifact (Table 8) — [`timeline`];
//! * vendor/product naming inconsistencies in the paper's patterns
//!   (Table 2, §A.4) — [`names`];
//! * v2-only severity for older CVEs, with latent true v3 derived from
//!   (v2, CWE) as §A.1 hypothesises (Table 4) — [`severity`];
//! * degenerate CWE labels with recoverable CWE IDs in evaluator comments
//!   (§4.4) — [`texts`];
//! * reference pages served by a simulated web ([`webarchive`]), with
//!   per-domain crawl-latency profiles for its scheduler — [`latency`];
//! * SecurityFocus / SecurityTracker side databases (Table 3) — [`sidedb`].
//!
//! Everything is deterministic under [`SynthConfig::seed`], and scales down
//! from the paper's snapshot via [`SynthConfig::scale`].
//!
//! ## Example
//!
//! ```
//! use nvd_synth::{generate, SynthConfig};
//!
//! let corpus = generate(&SynthConfig::with_scale(0.005, 7));
//! assert!(corpus.database.len() > 400);
//! assert!(!corpus.archive.is_empty());
//! // Ground truth knows every CVE's real disclosure date.
//! let entry = corpus.database.iter().next().unwrap();
//! assert!(corpus.truth.disclosure[&entry.id] <= entry.published
//!     || entry.published.is_new_years_eve()
//!     || !entry.references.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod delta;
pub mod faults;
pub mod latency;
pub mod names;
pub mod profile;
pub mod quality_truth;
pub mod severity;
pub mod sidedb;
pub mod texts;
pub mod timeline;
pub mod words;

use std::collections::{BTreeMap, BTreeSet};

use cvss::score_v2;
use nvd_model::cwe::{CweCatalog, CweId, CweLabel};
use nvd_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webarchive::{builtin_domains, WebArchive};

use names::{NameTargets, NameUniverse, ProductAlias, VendorAlias};
use profile::{classify, era_multiplier, popularity_boost};
use severity::{derive_true_v3_scored, sample_v2};
use sidedb::{build_side_database, SideDatabase};
use timeline::{
    apply_publication_batch, sample_disclosure, sample_lag, snapshot_end, year_allocation,
};

/// Generator configuration. Rates default to the paper's measured values
/// (see [`SynthConfig::no_reference_fraction`] for the one documented
/// deviation).
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Master RNG seed; equal seeds give identical corpora.
    pub seed: u64,
    /// Fraction of the paper's snapshot to generate (1.0 ⇒ 107.2K CVEs).
    pub scale: f64,
    /// Vendor/product universe calibration.
    pub name_targets: NameTargets,
    /// Fraction of CVEs with no reference URLs at all.
    ///
    /// Deliberately below the seed's original 0.06: entries without
    /// references fall back to their publication date in the §4.1
    /// disclosure estimator, and on the vendored RNG stream the original
    /// rate let the Table 8 NYE batch artifact leak into the estimated
    /// disclosure top dates (the paper's measured Table 8-right has none).
    /// Re-tune alongside the NYE and lag-flatness tests in
    /// `nvd_analysis::disclosure_study` if the RNG ever changes.
    pub no_reference_fraction: f64,
    /// Mean number of references beyond the first (paper: ≈5.5 URLs/CVE).
    pub mean_extra_references: f64,
    /// P(CWE field = `NVD-CWE-Other`) — paper: 26,312 / 107.2K.
    pub cwe_other_rate: f64,
    /// P(CWE field = `NVD-CWE-noinfo`) — paper: 7,566 / 107.2K.
    pub cwe_noinfo_rate: f64,
    /// P(CWE field unassigned) — paper: 1,293 / 107.2K.
    pub cwe_unassigned_rate: f64,
    /// P(evaluator comment embeds the CWE | field is Other) — paper finds
    /// 1,732 of 26,312 recoverable.
    pub evaluator_cwe_given_other: f64,
    /// P(evaluator comment embeds the CWE | field is noinfo/unassigned) —
    /// paper: 14 CVEs.
    pub evaluator_cwe_given_missing: f64,
    /// P(evaluator comment embeds an additional CWE | field already typed).
    pub evaluator_cwe_given_typed: f64,
    /// P(description mentions the weakness's short name) — calibrates the
    /// §4.4 k-NN type classifier towards the paper's 65.6%.
    pub name_mention_probability: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed_2018,
            scale: 0.05,
            name_targets: NameTargets::default(),
            no_reference_fraction: 0.03,
            mean_extra_references: 4.5,
            cwe_other_rate: 0.2454,
            cwe_noinfo_rate: 0.0706,
            cwe_unassigned_rate: 0.0121,
            evaluator_cwe_given_other: 0.066,
            evaluator_cwe_given_missing: 0.0016,
            evaluator_cwe_given_typed: 0.010,
            name_mention_probability: 0.70,
        }
    }
}

impl SynthConfig {
    /// A config at the given scale and seed, paper rates everywhere else.
    pub fn with_scale(scale: f64, seed: u64) -> Self {
        Self {
            scale,
            seed,
            ..Self::default()
        }
    }

    /// Number of CVEs this config generates (floor 200 so tiny scales still
    /// exercise every code path).
    pub fn cve_count(&self) -> usize {
        ((107_200.0 * self.scale).round() as usize).max(200)
    }

    /// SecurityFocus vendor-list size (paper: 24,760).
    pub fn security_focus_vendors(&self) -> usize {
        ((24_760.0 * self.scale) as usize).max(120)
    }

    /// SecurityTracker vendor-list size (paper: 4,151).
    pub fn security_tracker_vendors(&self) -> usize {
        ((4_151.0 * self.scale) as usize).max(60)
    }
}

/// Everything the generator knows that the cleaning pipeline must recover.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// True public disclosure date per CVE.
    pub disclosure: BTreeMap<CveId, Date>,
    /// Latent true CVSS v3 per CVE (visible in the DB only for a subset).
    pub true_v3: BTreeMap<CveId, CvssV3Record>,
    /// The weakness type each CVE was generated from.
    pub true_cwe: BTreeMap<CveId, CweId>,
    /// Injected vendor aliases.
    pub vendor_aliases: Vec<VendorAlias>,
    /// Injected product aliases.
    pub product_aliases: Vec<ProductAlias>,
    /// CVEs recorded under an alias vendor name.
    pub mislabeled_vendor: BTreeSet<CveId>,
    /// CVEs recorded under an alias product name.
    pub mislabeled_product: BTreeSet<CveId>,
}

impl GroundTruth {
    /// Alias → canonical vendor-name mapping.
    pub fn vendor_alias_map(&self) -> BTreeMap<VendorName, VendorName> {
        self.vendor_aliases
            .iter()
            .map(|a| (a.alias.clone(), a.canonical.clone()))
            .collect()
    }

    /// (canonical vendor, alias product) → canonical product mapping.
    pub fn product_alias_map(&self) -> BTreeMap<(VendorName, ProductName), ProductName> {
        self.product_aliases
            .iter()
            .map(|a| ((a.vendor.clone(), a.alias.clone()), a.canonical.clone()))
            .collect()
    }
}

/// A generated corpus: the observable data plus the generator's secrets.
#[derive(Debug, Clone)]
pub struct SynthCorpus {
    /// The "dirty" NVD as the cleaning pipeline sees it.
    pub database: Database,
    /// The simulated web behind the reference URLs.
    pub archive: WebArchive,
    /// What actually happened (for evaluation only).
    pub truth: GroundTruth,
    /// SecurityFocus vendor list (Table 3).
    pub security_focus: SideDatabase,
    /// SecurityTracker vendor list (Table 3).
    pub security_tracker: SideDatabase,
}

impl SynthCorpus {
    /// FNV-1a digest over a canonical rendering of the corpus: every entry
    /// record plus the ground-truth disclosure timeline.
    ///
    /// This is the reproducibility fingerprint: equal configs must produce
    /// equal digests at any `NVD_JOBS` setting (the seeded-repro tests and
    /// the CI determinism gate both key on it).
    pub fn digest(&self) -> u64 {
        /// Streams `Debug`/`Display` output straight into the FNV state —
        /// no intermediate `String` per entry.
        struct Fnv(u64);
        impl std::fmt::Write for Fnv {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                for b in s.bytes() {
                    self.0 ^= u64::from(b);
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
                }
                Ok(())
            }
        }
        use std::fmt::Write as _;
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        for entry in self.database.iter() {
            let _ = writeln!(h, "{entry:?}");
        }
        for (id, date) in &self.truth.disclosure {
            let _ = writeln!(h, "{id}={date}");
        }
        h.0
    }
}

/// Per-year cumulative CWE sampling table.
fn cwe_table(catalog: &CweCatalog, year: i32) -> (Vec<CweId>, Vec<f64>) {
    let mut ids = Vec::with_capacity(catalog.len());
    let mut cum = Vec::with_capacity(catalog.len());
    let mut acc = 0.0;
    for rec in catalog.iter() {
        let w = (0.15 + popularity_boost(rec.id)) * era_multiplier(classify(rec.id), year);
        acc += w;
        ids.push(rec.id);
        cum.push(acc);
    }
    (ids, cum)
}

fn sample_cum(rng: &mut StdRng, cum: &[f64]) -> usize {
    let total = *cum.last().expect("non-empty table");
    let x = rng.gen::<f64>() * total;
    match cum.binary_search_by(|w| w.partial_cmp(&x).unwrap()) {
        Ok(i) | Err(i) => i.min(cum.len() - 1),
    }
}

/// CVEs drafted per derived RNG stream. Fixed — never a function of the
/// thread count — so chunk boundaries, and therefore every sampled value,
/// are identical at any `NVD_JOBS` setting.
const GEN_CHUNK: usize = 64;

/// Stream tag for the v3-visibility pass (far outside the chunk-index
/// range, so its RNG stream never collides with a drafting chunk's).
const VISIBILITY_STREAM: u64 = 0x7669_7369_6269_6c69;

/// One planned CVE: identity fixed up front so drafting can run in any
/// order on any number of threads.
struct EntryPlan {
    year: i32,
    id: CveId,
}

/// Everything one CVE contributes, minus the archive side effects: URLs
/// are allocated at assembly time because [`WebArchive::publish`] numbers
/// pages per host in publication order, which must stay thread-invariant.
struct EntryDraft {
    entry: CveEntry,
    refs: Vec<RefDraft>,
    disclosed: Date,
    cwe: CweId,
    v3: CvssV3Record,
    mislabeled_vendor: bool,
    mislabeled_product: bool,
}

/// A reference page to publish for an entry.
struct RefDraft {
    host: &'static str,
    date: Date,
    modified: u32,
}

/// Per-draft context shared read-only across worker threads.
struct DraftContext<'a> {
    config: &'a SynthConfig,
    catalog: &'a CweCatalog,
    universe: &'a NameUniverse,
    vendor_alias_idx: &'a BTreeMap<&'a str, Vec<&'a VendorAlias>>,
    product_alias_idx: &'a BTreeMap<(&'a str, &'a str), Vec<&'a ProductAlias>>,
    domains: &'static [webarchive::DomainSpec],
    domain_cum: &'a [f64],
    cwe_tables: &'a BTreeMap<i32, (Vec<CweId>, Vec<f64>)>,
}

/// Drafts one CVE from its plan. Pure per-entry generation: all randomness
/// comes from `rng` (the chunk's derived stream) and all output is returned,
/// so drafts parallelise freely.
fn draft_entry(ctx: &DraftContext<'_>, plan: &EntryPlan, rng: &mut StdRng) -> EntryDraft {
    let config = ctx.config;
    let (cwe_ids, cwe_cum) = &ctx.cwe_tables[&plan.year];

    // --- type and severity ------------------------------------------------
    let cwe = cwe_ids[sample_cum(rng, cwe_cum)];
    let class = classify(cwe);
    let v2 = sample_v2(rng, class);
    let (v2_score, v2_band) = score_v2(&v2);
    let latent: u64 = rng.gen();
    let (v3_vec, v3_score, _) = derive_true_v3_scored(&v2, cwe, latent);

    // --- dates --------------------------------------------------------------
    let disclosed = sample_disclosure(rng, plan.year);
    // The snapshot censors the lag distribution: a CVE disclosed near the
    // snapshot date can only appear in it if its lag fits before the
    // horizon. Sample from the truncated distribution (resample, then fall
    // back to uniform) rather than clamping, which would fabricate a
    // mass-insertion day on the snapshot date itself.
    let available = snapshot_end().days_since(disclosed).max(0);
    let mut lag = sample_lag(rng, v2_band);
    let mut tries = 0;
    while lag > available && tries < 8 {
        lag = sample_lag(rng, v2_band);
        tries += 1;
    }
    if lag > available {
        lag = rng.gen_range(0..=available);
    }
    let published = apply_publication_batch(rng, disclosed.plus_days(lag));

    // --- affected names -----------------------------------------------------
    let mut mislabeled_vendor = false;
    let mut mislabeled_product = false;
    let vidx = ctx.universe.sample_vendor(rng);
    let canonical_vendor = ctx.universe.vendors[vidx].name.clone();
    let mut recorded_vendor = canonical_vendor.clone();
    if let Some(aliases) = ctx.vendor_alias_idx.get(canonical_vendor.as_str()) {
        for a in aliases {
            if rng.gen::<f64>() < a.share {
                recorded_vendor = a.alias.clone();
                mislabeled_vendor = true;
                break;
            }
        }
    }
    let n_cpes = 1 + (rng.gen::<f64>().powi(3) * 2.5) as usize;
    let mut affected = Vec::with_capacity(n_cpes);
    let mut first_product = None;
    for _ in 0..n_cpes {
        let canonical_product = ctx.universe.sample_product(rng, vidx);
        let mut recorded_product = canonical_product.clone();
        if let Some(aliases) = ctx
            .product_alias_idx
            .get(&(canonical_vendor.as_str(), canonical_product.as_str()))
        {
            for a in aliases {
                if rng.gen::<f64>() < a.share {
                    recorded_product = a.alias.clone();
                    mislabeled_product = true;
                    break;
                }
            }
        }
        if first_product.is_none() {
            first_product = Some(recorded_product.clone());
        }
        let cpe = CpeName::application(recorded_vendor.clone(), recorded_product)
            .with_version(texts::version(rng));
        if !affected.contains(&cpe) {
            affected.push(cpe);
        }
    }

    // --- CWE field ----------------------------------------------------------
    let r: f64 = rng.gen();
    let label = if r < config.cwe_other_rate {
        CweLabel::Other
    } else if r < config.cwe_other_rate + config.cwe_noinfo_rate {
        CweLabel::NoInfo
    } else if r < config.cwe_other_rate + config.cwe_noinfo_rate + config.cwe_unassigned_rate {
        CweLabel::Unassigned
    } else {
        CweLabel::Specific(cwe)
    };

    // --- descriptions -------------------------------------------------------
    let product_str = first_product
        .as_ref()
        .map(|p| p.as_str().to_owned())
        .unwrap_or_default();
    let mut descriptions = vec![Description::analyst(texts::describe(
        rng,
        ctx.catalog,
        cwe,
        recorded_vendor.as_str(),
        &product_str,
        config.name_mention_probability,
    ))];
    let eval_p = match label {
        CweLabel::Other => config.evaluator_cwe_given_other,
        CweLabel::NoInfo | CweLabel::Unassigned => config.evaluator_cwe_given_missing,
        CweLabel::Specific(_) => config.evaluator_cwe_given_typed,
    };
    if rng.gen::<f64>() < eval_p {
        // Typed entries gain an *additional* relevant type (the paper:
        // "CVEs that list additionally relevant CWE-IDs in the description
        // beyond those listed in the CWE field"); degenerate entries embed
        // their true type.
        let mentioned = if matches!(label, CweLabel::Specific(_)) {
            let extra = cwe_ids[sample_cum(rng, cwe_cum)];
            if extra == cwe {
                cwe_ids[(cwe_ids.iter().position(|c| *c == cwe).unwrap_or(0) + 1) % cwe_ids.len()]
            } else {
                extra
            }
        } else {
            cwe
        };
        descriptions.push(Description::evaluator(texts::evaluator_comment(
            ctx.catalog,
            mentioned,
        )));
    }

    // --- references ---------------------------------------------------------
    let mut refs = Vec::new();
    if rng.gen::<f64>() >= config.no_reference_fraction {
        let extra = (rng.gen::<f64>().powf(1.2) * (config.mean_extra_references * 2.0)) as usize;
        let mut hosts_used: BTreeSet<&str> = BTreeSet::new();
        for k in 0..=extra.min(9) {
            let d_idx = sample_cum(rng, ctx.domain_cum);
            let host = ctx.domains[d_idx].host;
            if !hosts_used.insert(host) {
                continue;
            }
            let ref_date = if k == 0 {
                disclosed
            } else {
                disclosed.plus_days(rng.gen_range(0..=45))
            };
            let modified = rng.gen_range(0..=90);
            refs.push(RefDraft {
                host,
                date: ref_date,
                modified,
            });
        }
    }

    // --- assemble -----------------------------------------------------------
    let mut entry = CveEntry::new(plan.id, published);
    entry.last_modified = {
        let m = published.plus_days(rng.gen_range(0..=200));
        if m > snapshot_end() {
            snapshot_end()
        } else {
            m
        }
    };
    entry.cwes = vec![label];
    entry.cvss_v2 = Some(CvssV2Record {
        vector: v2,
        base_score: v2_score,
    });
    entry.affected = affected;
    entry.descriptions = descriptions;

    EntryDraft {
        entry,
        refs,
        disclosed,
        cwe,
        v3: CvssV3Record {
            vector: v3_vec,
            base_score: v3_score,
        },
        mislabeled_vendor,
        mislabeled_product,
    }
}

/// Generates a complete corpus from the configuration.
///
/// Deterministic: equal configs produce identical corpora, at any
/// `NVD_JOBS` setting. Per-CVE drafting runs on the [`minipar`] pool with
/// one derived RNG stream per [`GEN_CHUNK`]-sized chunk; the archive and
/// ground truth are then assembled sequentially in plan order, so page URLs
/// (numbered per host in publication order) never depend on scheduling.
pub fn generate(config: &SynthConfig) -> SynthCorpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let catalog = CweCatalog::builtin();
    let universe = NameUniverse::generate(&mut rng, config.scale, &config.name_targets);

    // Alias lookup indexes (the per-CVE hot path).
    let mut vendor_alias_idx: BTreeMap<&str, Vec<&VendorAlias>> = BTreeMap::new();
    for a in &universe.vendor_aliases {
        vendor_alias_idx
            .entry(a.canonical.as_str())
            .or_default()
            .push(a);
    }
    let mut product_alias_idx: BTreeMap<(&str, &str), Vec<&ProductAlias>> = BTreeMap::new();
    for a in &universe.product_aliases {
        product_alias_idx
            .entry((a.vendor.as_str(), a.canonical.as_str()))
            .or_default()
            .push(a);
    }

    // Domain cumulative weights.
    let domains = builtin_domains();
    let mut domain_cum = Vec::with_capacity(domains.len());
    let mut acc = 0.0;
    for d in domains {
        acc += d.weight;
        domain_cum.push(acc);
    }

    // --- plan identities sequentially --------------------------------------
    // CVE sequence numbers depend on plan order (years before 1999 share the
    // CVE-1999 namespace), so identity assignment stays serial and cheap.
    let total = config.cve_count();
    let mut plans: Vec<EntryPlan> = Vec::with_capacity(total);
    let mut seq_by_year: BTreeMap<u16, u32> = BTreeMap::new();
    let mut cwe_tables: BTreeMap<i32, (Vec<CweId>, Vec<f64>)> = BTreeMap::new();
    for (year, n) in year_allocation(total) {
        if n == 0 {
            continue;
        }
        cwe_tables
            .entry(year)
            .or_insert_with(|| cwe_table(&catalog, year));
        for _ in 0..n {
            let id_year = year.max(1999) as u16;
            let seq = seq_by_year.entry(id_year).or_insert(1);
            plans.push(EntryPlan {
                year,
                id: CveId::new(id_year, *seq),
            });
            *seq += 1;
        }
    }

    // --- draft in parallel ---------------------------------------------------
    let ctx = DraftContext {
        config,
        catalog: &catalog,
        universe: &universe,
        vendor_alias_idx: &vendor_alias_idx,
        product_alias_idx: &product_alias_idx,
        domains,
        domain_cum: &domain_cum,
        cwe_tables: &cwe_tables,
    };
    let drafts: Vec<EntryDraft> = minipar::par_chunks(&plans, GEN_CHUNK, |ci, chunk| {
        let mut chunk_rng = StdRng::seed_from_u64(minipar::derive_seed(config.seed, ci as u64));
        chunk
            .iter()
            .map(|plan| draft_entry(&ctx, plan, &mut chunk_rng))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();

    // --- assemble sequentially (archive URLs + ground truth) ----------------
    let mut entries: Vec<CveEntry> = Vec::with_capacity(total);
    let mut archive = WebArchive::new();
    // Latency samples on its own derived stream: the entries, references
    // and truth below are bit-identical to what this seed generated before
    // latency profiles existed.
    archive.set_latency(latency::sample_latency_model(config.seed));
    let mut truth = GroundTruth {
        vendor_aliases: universe.vendor_aliases.clone(),
        product_aliases: universe.product_aliases.clone(),
        ..GroundTruth::default()
    };
    for draft in drafts {
        let EntryDraft {
            mut entry,
            refs,
            disclosed,
            cwe,
            v3,
            mislabeled_vendor,
            mislabeled_product,
        } = draft;
        let id = entry.id;
        for r in refs {
            let url = archive
                .publish(r.host, &id.to_string(), r.date, r.modified)
                .expect("registry host");
            entry.references.push(Reference::new(url));
        }
        if mislabeled_vendor {
            truth.mislabeled_vendor.insert(id);
        }
        if mislabeled_product {
            truth.mislabeled_product.insert(id);
        }
        truth.disclosure.insert(id, disclosed);
        truth.true_cwe.insert(id, cwe);
        truth.true_v3.insert(id, v3);
        entries.push(entry);
    }

    // The visibility pass is stateful across entries (retroactive caps per
    // year), so it stays serial on its own derived stream.
    let mut vis_rng = StdRng::seed_from_u64(minipar::derive_seed(config.seed, VISIBILITY_STREAM));
    assign_v3_visibility(&mut entries, &truth, config.scale, &mut vis_rng);

    let security_focus = build_side_database(
        &mut rng,
        &universe,
        "SecurityFocus",
        config.security_focus_vendors(),
        0.08,
    );
    let security_tracker = build_side_database(
        &mut rng,
        &universe,
        "SecurityTracker",
        config.security_tracker_vendors(),
        0.03,
    );

    SynthCorpus {
        database: Database::from_entries(entries),
        archive,
        truth,
        security_focus,
        security_tracker,
    }
}

/// Reveals v3 labels following the paper's timeline: everything published
/// 2017+, a growing fraction of 2013–2016, and a ≤35-per-year retroactive
/// trickle before 2013 that is single-severity in the paper's quirky years
/// (2000–02, 2004–06, 2009 — Fig. 3).
fn assign_v3_visibility(
    entries: &mut [CveEntry],
    truth: &GroundTruth,
    scale: f64,
    rng: &mut StdRng,
) {
    let single_band_years: BTreeSet<i32> = [2000, 2001, 2002, 2004, 2005, 2006, 2009]
        .into_iter()
        .collect();
    let mut retro_used: BTreeMap<i32, usize> = BTreeMap::new();
    let mut retro_band: BTreeMap<i32, Severity> = BTreeMap::new();
    let retro_cap = ((35.0 * scale).ceil() as usize).max(1);

    for entry in entries.iter_mut() {
        let year = entry.published.year();
        let record = truth.true_v3[&entry.id];
        let visible = match year {
            y if y >= 2017 => true,
            2016 => rng.gen::<f64>() < 0.70,
            2015 => rng.gen::<f64>() < 0.55,
            2014 => rng.gen::<f64>() < 0.45,
            2013 => rng.gen::<f64>() < 0.35,
            y if y >= 1999 => {
                let used = retro_used.entry(y).or_insert(0);
                if *used >= retro_cap || rng.gen::<f64>() >= 0.01 {
                    false
                } else {
                    let band = Severity::from_v3_score(record.base_score);
                    if single_band_years.contains(&y) {
                        let chosen = *retro_band.entry(y).or_insert(band);
                        if chosen == band {
                            *used += 1;
                            true
                        } else {
                            false
                        }
                    } else {
                        *used += 1;
                        true
                    }
                }
            }
            _ => false,
        };
        if visible {
            entry.cvss_v3 = Some(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SynthCorpus {
        generate(&SynthConfig::with_scale(0.01, 33))
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = generate(&SynthConfig::with_scale(0.005, 1));
        let b = generate(&SynthConfig::with_scale(0.005, 1));
        assert_eq!(a.database.len(), b.database.len());
        let ea: Vec<_> = a.database.iter().collect();
        let eb: Vec<_> = b.database.iter().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn counts_scale() {
        let c = tiny();
        assert_eq!(c.database.len(), 1072);
        assert!(c.archive.len() > c.database.len());
    }

    #[test]
    fn every_cve_has_truth() {
        let c = tiny();
        for e in c.database.iter() {
            assert!(c.truth.disclosure.contains_key(&e.id), "{}", e.id);
            assert!(c.truth.true_v3.contains_key(&e.id), "{}", e.id);
            assert!(c.truth.true_cwe.contains_key(&e.id), "{}", e.id);
        }
    }

    #[test]
    fn v3_visibility_follows_timeline() {
        let c = generate(&SynthConfig::with_scale(0.03, 5));
        let mut pre_1999 = 0;
        let mut recent_total = 0;
        let mut recent_with = 0;
        for e in c.database.iter() {
            let y = e.published.year();
            if y < 1999 && e.has_v3() {
                pre_1999 += 1;
            }
            if y >= 2017 {
                recent_total += 1;
                if e.has_v3() {
                    recent_with += 1;
                }
            }
        }
        assert_eq!(pre_1999, 0, "no pre-1999 v3 labels");
        assert_eq!(recent_with, recent_total, "all 2017+ CVEs have v3");
        let with_v3 = c.database.iter().filter(|e| e.has_v3()).count() as f64;
        let share = with_v3 / c.database.len() as f64;
        // Paper: 37.5K / 107.2K ≈ 35%.
        assert!((0.25..0.50).contains(&share), "v3 share {share}");
    }

    #[test]
    fn zero_lag_share_matches_fig1() {
        let c = generate(&SynthConfig::with_scale(0.03, 6));
        let zero = c
            .database
            .iter()
            .filter(|e| e.published == c.truth.disclosure[&e.id])
            .count() as f64;
        let share = zero / c.database.len() as f64;
        // The true zero-lag rate sits below the paper's measured ≈38%; the
        // §4.1 estimator adds ≈10 points of measurement inflation on top.
        assert!((0.17..0.37).contains(&share), "zero-lag share {share}");
    }

    #[test]
    fn mislabeled_cves_recorded() {
        let c = tiny();
        assert!(
            !c.truth.mislabeled_vendor.is_empty(),
            "some CVEs must use alias vendors"
        );
        let map = c.truth.vendor_alias_map();
        for id in c.truth.mislabeled_vendor.iter().take(20) {
            let entry = c.database.get(id).unwrap();
            let found = entry.vendors().any(|v| map.contains_key(v));
            assert!(found, "{id} recorded vendors contain no alias");
        }
    }

    #[test]
    fn degenerate_cwe_rates_near_paper() {
        let c = generate(&SynthConfig::with_scale(0.05, 9));
        let n = c.database.len() as f64;
        let other = c
            .database
            .iter()
            .filter(|e| e.cwes.contains(&CweLabel::Other))
            .count() as f64
            / n;
        let noinfo = c
            .database
            .iter()
            .filter(|e| e.cwes.contains(&CweLabel::NoInfo))
            .count() as f64
            / n;
        assert!((0.20..0.30).contains(&other), "Other rate {other}");
        assert!((0.04..0.11).contains(&noinfo), "noinfo rate {noinfo}");
    }

    #[test]
    fn references_resolve_in_archive() {
        let c = tiny();
        let mut fetched = 0;
        let mut dead = 0;
        for e in c.database.iter().take(300) {
            for r in &e.references {
                match c.archive.fetch(&r.url) {
                    Ok(_) => fetched += 1,
                    Err(webarchive::FetchError::HostUnreachable { .. }) => dead += 1,
                    Err(e) => panic!("unexpected fetch error: {e}"),
                }
            }
        }
        assert!(fetched > 0, "live pages must fetch");
        assert!(dead > 0, "some hosts must be dead");
    }

    #[test]
    fn side_databases_scale() {
        let c = tiny();
        assert!(c.security_focus.len() >= 120);
        assert!(c.security_tracker.len() >= 60);
        assert!(c.security_focus.len() > c.security_tracker.len());
    }
}
