//! CVSS sampling: realistic v2 vectors and the latent true-v3 derivation.
//!
//! The paper's §4.3 premise is that "the added parameters in the v3 severity
//! calculation can be extrapolated from the existing v2 parameters"
//! (Appendix A.1) — i.e. true v3 vectors are *mostly* a learnable function
//! of the v2 vector and the weakness type, with a residual the models
//! cannot capture (their best model reaches 86.29% banded accuracy). The
//! generator reproduces exactly that structure:
//!
//! * [`sample_v2`] draws a v2 vector whose severity-band marginals match
//!   Table 9 (8.25% L / 54.83% M / 36.92% H) through the per-class band
//!   weights of [`crate::profile`];
//! * [`derive_true_v3`] maps (v2, CWE, latent noise) to a v3 vector with a
//!   deterministic CWE-keyed rule blended with per-CVE noise, so that the
//!   v2→v3 severity transition matrix reproduces the shape of Table 4 and a
//!   learner given (v2 features, CWE) can reach high-80s accuracy but not
//!   100%.

use std::sync::OnceLock;

use cvss::{score_v2, score_v3};
use nvd_model::cwe::CweId;
use nvd_model::metrics::{
    AccessComplexityV2, AccessVectorV2, AttackComplexityV3, AttackVectorV3, AuthenticationV2,
    CvssV2Vector, CvssV3Vector, ImpactV2, ImpactV3, PrivilegesRequiredV3, ScopeV3, Severity,
    UserInteractionV3,
};
use rand::rngs::StdRng;
use rand::Rng;

use crate::profile::{classify, v2_band_weights, CweClass};

/// A v2 vector pool entry: vector plus realism weight.
type Pool = Vec<(CvssV2Vector, f64)>;

/// Per-band pools of v2 base vectors, weighted by metric priors estimated
/// from the real NVD (network-dominant access vector, low complexity, no
/// authentication, partial impacts).
fn band_pools() -> &'static [Pool; 3] {
    static POOLS: OnceLock<[Pool; 3]> = OnceLock::new();
    POOLS.get_or_init(|| {
        let av_w = |av: AccessVectorV2| match av {
            AccessVectorV2::Network => 0.76,
            AccessVectorV2::Local => 0.22,
            AccessVectorV2::AdjacentNetwork => 0.02,
        };
        let ac_w = |ac: AccessComplexityV2| match ac {
            AccessComplexityV2::Low => 0.55,
            AccessComplexityV2::Medium => 0.35,
            AccessComplexityV2::High => 0.10,
        };
        let au_w = |au: AuthenticationV2| match au {
            AuthenticationV2::None => 0.86,
            AuthenticationV2::Single => 0.13,
            AuthenticationV2::Multiple => 0.01,
        };
        let im_w = |i: ImpactV2| match i {
            ImpactV2::None => 0.30,
            ImpactV2::Partial => 0.51,
            ImpactV2::Complete => 0.19,
        };
        let mut pools: [Pool; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for v in cvss::all_v2_vectors() {
            // All-None impacts score 0 and carry no signal; NVD entries are
            // scored because something is impacted.
            if v.impacts().iter().all(|i| *i == ImpactV2::None) {
                continue;
            }
            let w = av_w(v.access_vector)
                * ac_w(v.access_complexity)
                * au_w(v.authentication)
                * im_w(v.confidentiality)
                * im_w(v.integrity)
                * im_w(v.availability);
            let (_, band) = score_v2(&v);
            let slot = match band {
                Severity::Low => 0,
                Severity::Medium => 1,
                _ => 2,
            };
            pools[slot].push((v, w));
        }
        pools
    })
}

/// Samples a CVSS v2 base vector for a weakness of the given class, with
/// band frequencies from [`v2_band_weights`].
pub fn sample_v2(rng: &mut StdRng, class: CweClass) -> CvssV2Vector {
    let (l, m, _) = v2_band_weights(class);
    let x: f64 = rng.gen();
    let band = if x < l {
        0
    } else if x < l + m {
        1
    } else {
        2
    };
    let pool = &band_pools()[band];
    let total: f64 = pool.iter().map(|(_, w)| w).sum();
    let mut t = rng.gen::<f64>() * total;
    for (v, w) in pool {
        t -= w;
        if t <= 0.0 {
            return *v;
        }
    }
    pool.last().expect("non-empty pool").0
}

/// SplitMix64: cheap deterministic hashing for rule decisions.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform-in-[0,1) value derived from a hash.
fn frac(x: u64) -> f64 {
    (mix(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// Fraction of each rule decision driven by per-CVE latent noise instead of
/// the (CWE, v2) signal; this is the irreducible error that caps model
/// accuracy below 100% (paper: CNN 86.29%).
const NOISE_WEIGHT: f64 = 0.15;

/// A blended coin: mostly keyed on the learnable (cwe, tag) signal, partly
/// on the per-CVE latent.
fn decide(cwe: CweId, latent: u64, tag: u64, probability: f64) -> bool {
    let learnable = frac((u64::from(cwe.number()) << 8) ^ tag);
    let noisy = frac(latent ^ tag.rotate_left(17));
    learnable * (1.0 - NOISE_WEIGHT) + noisy * NOISE_WEIGHT < probability
}

/// Per-class probability that a v2 `Partial` impact becomes v3 `High` for
/// dimension `dim` (0 = confidentiality, 1 = integrity, 2 = availability).
fn upgrade_probability(class: CweClass, dim: usize) -> f64 {
    match (class, dim) {
        (CweClass::Memory, _) => 0.80,
        (CweClass::Injection, 0 | 1) => 0.90,
        (CweClass::Injection, _) => 0.55,
        (CweClass::Web, _) => 0.30,
        (CweClass::InfoLeak, 0) => 0.75,
        (CweClass::InfoLeak, _) => 0.05,
        (CweClass::Crypto, 0) => 0.70,
        (CweClass::Crypto, 1) => 0.30,
        (CweClass::Crypto, _) => 0.05,
        (CweClass::AuthPriv, _) => 0.60,
        (CweClass::PathFile, 0) => 0.70,
        (CweClass::PathFile, 1) => 0.50,
        (CweClass::PathFile, _) => 0.30,
        (CweClass::Resource, 2) => 0.85,
        (CweClass::Resource, _) => 0.10,
        (CweClass::Race, _) => 0.50,
        (CweClass::General, _) => 0.50,
    }
}

/// Derives the latent *true* CVSS v3.0 vector for a vulnerability.
///
/// `latent` is the per-CVE noise source (hash the CVE ID); two calls with
/// identical arguments return identical vectors.
pub fn derive_true_v3(v2: &CvssV2Vector, cwe: CweId, latent: u64) -> CvssV3Vector {
    let class = classify(cwe);

    let attack_vector = match v2.access_vector {
        AccessVectorV2::Network => AttackVectorV3::Network,
        AccessVectorV2::AdjacentNetwork => AttackVectorV3::Adjacent,
        AccessVectorV2::Local => {
            if decide(cwe, latent, 0x11, 0.12) {
                AttackVectorV3::Physical
            } else {
                AttackVectorV3::Local
            }
        }
    };

    let attack_complexity = match v2.access_complexity {
        AccessComplexityV2::Low => AttackComplexityV3::Low,
        AccessComplexityV2::Medium => {
            // v3 folds most of v2's Medium complexity into Low, splitting
            // user interaction out separately.
            let p_high = match class {
                CweClass::Race | CweClass::Crypto => 0.75,
                _ => 0.25,
            };
            if decide(cwe, latent, 0x22, p_high) {
                AttackComplexityV3::High
            } else {
                AttackComplexityV3::Low
            }
        }
        AccessComplexityV2::High => AttackComplexityV3::High,
    };

    let privileges_required = match v2.authentication {
        AuthenticationV2::None => PrivilegesRequiredV3::None,
        AuthenticationV2::Single => PrivilegesRequiredV3::Low,
        AuthenticationV2::Multiple => PrivilegesRequiredV3::High,
    };

    let user_interaction = match class {
        CweClass::Web => UserInteractionV3::Required,
        // Client-side file-format memory corruption needs a victim to open
        // the crafted file — which is most of the buffer-overflow
        // population, and what keeps v3 Buffer Overflow at High rather
        // than Critical (paper Table 10).
        CweClass::Memory if decide(cwe, latent, 0x33, 0.75) => UserInteractionV3::Required,
        _ => UserInteractionV3::None,
    };

    // Server-side injections frequently compromise resources beyond the
    // vulnerable component (the database behind the web app), which is why
    // SQL injection dominates the critical band in Table 10.
    let scope_p = match class {
        CweClass::Web => 0.80,
        CweClass::Injection => 0.40,
        CweClass::AuthPriv => 0.15,
        _ => 0.03,
    };
    let scope = if decide(cwe, latent, 0x44, scope_p) {
        ScopeV3::Changed
    } else {
        ScopeV3::Unchanged
    };

    let impact = |v2_impact: ImpactV2, dim: usize| -> ImpactV3 {
        match v2_impact {
            ImpactV2::None => ImpactV3::None,
            ImpactV2::Complete => ImpactV3::High,
            ImpactV2::Partial => {
                if decide(
                    cwe,
                    latent,
                    0x55 + dim as u64,
                    upgrade_probability(class, dim),
                ) {
                    ImpactV3::High
                } else {
                    ImpactV3::Low
                }
            }
        }
    };

    CvssV3Vector::new(
        attack_vector,
        attack_complexity,
        privileges_required,
        user_interaction,
        scope,
        impact(v2.confidentiality, 0),
        impact(v2.integrity, 1),
        impact(v2.availability, 2),
    )
}

/// Convenience: derived v3 vector plus its base score and severity band.
pub fn derive_true_v3_scored(
    v2: &CvssV2Vector,
    cwe: CweId,
    latent: u64,
) -> (CvssV3Vector, f64, Severity) {
    let v3 = derive_true_v3(v2, cwe, latent);
    let (score, band) = score_v3(&v3);
    (v3, score, band)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn v2_marginals_match_table9() {
        let mut rng = StdRng::seed_from_u64(1);
        // Approximate the corpus class mix with the dominant classes.
        let classes = [
            (CweClass::Memory, 0.22),
            (CweClass::Injection, 0.14),
            (CweClass::Web, 0.18),
            (CweClass::InfoLeak, 0.09),
            (CweClass::AuthPriv, 0.13),
            (CweClass::PathFile, 0.06),
            (CweClass::Resource, 0.07),
            (CweClass::Crypto, 0.04),
            (CweClass::General, 0.07),
        ];
        let n = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            let mut x: f64 = rng.gen();
            let mut class = CweClass::General;
            for (c, w) in classes {
                x -= w;
                if x <= 0.0 {
                    class = c;
                    break;
                }
            }
            let v = sample_v2(&mut rng, class);
            let (_, band) = score_v2(&v);
            counts[match band {
                Severity::Low => 0,
                Severity::Medium => 1,
                _ => 2,
            }] += 1;
        }
        let low = counts[0] as f64 / n as f64;
        let med = counts[1] as f64 / n as f64;
        let high = counts[2] as f64 / n as f64;
        // Paper Table 9: 8.25 / 54.83 / 36.92.
        assert!((0.04..0.14).contains(&low), "low {low}");
        assert!((0.45..0.65).contains(&med), "medium {med}");
        assert!((0.27..0.47).contains(&high), "high {high}");
    }

    #[test]
    fn derivation_is_deterministic() {
        let v2: CvssV2Vector = "AV:N/AC:L/Au:N/C:P/I:P/A:P".parse().unwrap();
        let a = derive_true_v3(&v2, CweId::new(89), 1234);
        let b = derive_true_v3(&v2, CweId::new(89), 1234);
        assert_eq!(a, b);
    }

    #[test]
    fn transition_matrix_has_table4_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let classes = [
            CweClass::Memory,
            CweClass::Injection,
            CweClass::Web,
            CweClass::InfoLeak,
            CweClass::AuthPriv,
            CweClass::Resource,
        ];
        let cwes = [
            CweId::new(119),
            CweId::new(89),
            CweId::new(79),
            CweId::new(200),
            CweId::new(264),
            CweId::new(399),
        ];
        // rows: v2 L/M/H; cols: v3 L/M/H/C
        let mut m = [[0usize; 4]; 3];
        for _ in 0..30_000 {
            let k = rng.gen_range(0..classes.len());
            let v2 = sample_v2(&mut rng, classes[k]);
            let (_, band2) = score_v2(&v2);
            let (_, _, band3) = derive_true_v3_scored(&v2, cwes[k], rng.gen());
            let r = match band2 {
                Severity::Low => 0,
                Severity::Medium => 1,
                _ => 2,
            };
            let c = match band3 {
                Severity::None | Severity::Low => 0,
                Severity::Medium => 1,
                Severity::High => 2,
                Severity::Critical => 3,
            };
            m[r][c] += 1;
        }
        let row = |r: usize| {
            let tot: usize = m[r].iter().sum();
            [
                m[r][0] as f64 / tot as f64,
                m[r][1] as f64 / tot as f64,
                m[r][2] as f64 / tot as f64,
                m[r][3] as f64 / tot as f64,
            ]
        };
        let low = row(0);
        // Paper: L → 9.5% L, 84.3% M, 6.2% H, 0% C.
        assert!(low[1] > 0.5, "L→M share {}", low[1]);
        assert!(low[3] < 0.02, "L→C share {}", low[3]);
        let med = row(1);
        // Paper: M → mostly M (46.9%) and H (49.3%), few C (2.75%).
        assert!(med[1] + med[2] > 0.75, "M→{{M,H}} {}", med[1] + med[2]);
        assert!(med[3] < 0.15, "M→C {}", med[3]);
        let high = row(2);
        // Paper: H → 47.8% H + 47.2% C, no L.
        assert!(high[2] + high[3] > 0.80, "H→{{H,C}} {}", high[2] + high[3]);
        assert!(high[3] > 0.25, "H→C {}", high[3]);
        assert!(high[0] < 0.01, "H→L {}", high[0]);
    }

    #[test]
    fn v3_skews_above_v2() {
        // Table 9: v3 shifts mass towards High/Critical.
        let mut rng = StdRng::seed_from_u64(3);
        let mut v2_high = 0usize;
        let mut v3_high = 0usize;
        let n = 10_000;
        for _ in 0..n {
            let v2 = sample_v2(&mut rng, CweClass::Memory);
            let (_, b2) = score_v2(&v2);
            let (_, _, b3) = derive_true_v3_scored(&v2, CweId::new(119), rng.gen());
            if b2 >= Severity::High {
                v2_high += 1;
            }
            if b3 >= Severity::High {
                v3_high += 1;
            }
        }
        assert!(v3_high > v2_high, "v3 {v3_high} ≤ v2 {v2_high}");
    }

    #[test]
    fn sql_injection_reaches_critical_more_than_xss() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sqli_crit = 0;
        let mut xss_crit = 0;
        for _ in 0..4000 {
            let v2 = sample_v2(&mut rng, CweClass::Injection);
            let (_, _, b) = derive_true_v3_scored(&v2, CweId::new(89), rng.gen());
            if b == Severity::Critical {
                sqli_crit += 1;
            }
            let v2 = sample_v2(&mut rng, CweClass::Web);
            let (_, _, b) = derive_true_v3_scored(&v2, CweId::new(79), rng.gen());
            if b == Severity::Critical {
                xss_crit += 1;
            }
        }
        assert!(
            sqli_crit > xss_crit * 3,
            "sqli {sqli_crit} vs xss {xss_crit}"
        );
    }
}
