//! Per-domain latency calibration for the simulated crawl.
//!
//! The crawl scheduler in [`webarchive::scheduler`] only earns its keep if
//! the simulated web has real skew to hide: a serial crawl of uniformly
//! fast hosts parallelises trivially, but the paper's reference domains mix
//! snappy CDN-backed advisory pages with slow mailing-list archives and the
//! occasional congested outlier. This module samples one [`LatencyModel`]
//! per corpus seed with exactly that shape.
//!
//! Sampling runs on its own derived RNG stream ([`LATENCY_STREAM`]), so
//! adding latency to a corpus never perturbs the entries, references or
//! ground truth the seed generated before latency existed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webarchive::{builtin_domains, DomainCategory, LatencyModel, LatencyProfile};

/// Stream tag for latency sampling (outside the drafting-chunk index range,
/// so the stream never collides with a corpus chunk's).
const LATENCY_STREAM: u64 = 0x6c61_7465_6e63_7921;

/// Share of domains that are congested outliers (service time ×6).
const CONGESTED_SHARE: f64 = 0.12;

/// Samples the per-domain latency model for a corpus seed.
///
/// Service times are log-uniform per category — advisories ≈2–50 ms,
/// vulnerability databases ≈4–100 ms, bug trackers / mail archives
/// ≈8–400 ms — with jitter at a third of base and politeness gaps of
/// 1–30 ms; a [`CONGESTED_SHARE`] fraction of hosts is 6× slower. All in
/// virtual ticks (≈1 µs): the scheduler's clock jumps, it never sleeps.
pub fn sample_latency_model(seed: u64) -> LatencyModel {
    let mut rng = StdRng::seed_from_u64(minipar::derive_seed(seed, LATENCY_STREAM));
    let mut model = LatencyModel::default();
    for d in builtin_domains() {
        let (floor, span): (f64, f64) = match d.category {
            DomainCategory::Advisory => (2_000.0, 25.0),
            DomainCategory::VulnDatabase => (4_000.0, 25.0),
            DomainCategory::BugTracker => (8_000.0, 50.0),
        };
        let mut base = (floor * span.powf(rng.gen::<f64>())) as u64;
        if rng.gen::<f64>() < CONGESTED_SHARE {
            base *= 6;
        }
        let jitter = base / 3;
        let politeness = 1_000 + rng.gen_range(0..29_000u64);
        model.set(d.host, LatencyProfile::new(base, jitter, politeness));
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_deterministic_per_seed() {
        let a = sample_latency_model(42);
        let b = sample_latency_model(42);
        assert_eq!(a, b, "equal seeds must give equal models");
        assert_ne!(a, sample_latency_model(43), "seeds must matter");
    }

    #[test]
    fn every_registry_host_is_profiled() {
        let m = sample_latency_model(7);
        assert_eq!(m.len(), builtin_domains().len());
    }

    #[test]
    fn profiles_have_real_skew() {
        let m = sample_latency_model(7);
        let bases: Vec<u64> = builtin_domains()
            .iter()
            .map(|d| m.profile(d.host).base_ticks)
            .collect();
        let min = *bases.iter().min().unwrap();
        let max = *bases.iter().max().unwrap();
        assert!(min >= 2_000, "floor holds: {min}");
        assert!(
            max >= min * 10,
            "scheduler needs skew to hide: min {min}, max {max}"
        );
        for d in builtin_domains() {
            let p = m.profile(d.host);
            assert!(p.politeness_ticks >= 1_000);
            assert_eq!(p.jitter_ticks, p.base_ticks / 3);
        }
    }
}
