//! CWE behavioural profiles: popularity, era drift, and severity tendencies.
//!
//! The corpus generator needs a joint distribution over (CWE type, CVSS v2
//! vector, true CVSS v3 vector) whose marginals match the paper's: v2
//! severity split 8.25/54.83/36.92 (Table 9), the v2→v3 transition shape of
//! Table 4, SQL injection dominating critical CVEs (Table 10), and a
//! declining share of critical CVEs over the years (Fig. 3). Profiles give
//! each weakness class the coarse exploitability/impact tendencies that
//! produce those marginals.

use nvd_model::cwe::CweId;

/// Coarse behavioural class of a weakness type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CweClass {
    /// Memory corruption: buffer overflows, OOB access, use-after-free.
    Memory,
    /// Server-side injection: SQL, command, code, LDAP, …
    Injection,
    /// Client/web issues needing user interaction: XSS, CSRF, redirects.
    Web,
    /// Information exposure and leaks.
    InfoLeak,
    /// Cryptographic weaknesses.
    Crypto,
    /// Authentication / authorization / permission problems.
    AuthPriv,
    /// Path traversal and file-handling issues.
    PathFile,
    /// Resource management and denial of service.
    Resource,
    /// Race conditions and concurrency.
    Race,
    /// Input-validation and everything else.
    General,
}

/// Classifies a CWE ID into its behavioural class.
pub fn classify(id: CweId) -> CweClass {
    match id.number() {
        119 | 120 | 125 | 129 | 131 | 134 | 189 | 190 | 191 | 193 | 415 | 416 | 476 | 787 | 822
        | 824 | 908 | 909 | 369 | 682 | 843 => CweClass::Memory,
        74 | 77 | 78 | 88 | 89 | 90 | 91 | 93 | 94 | 98 | 113 | 502 | 611 | 829 | 917 | 918
        | 444 | 776 => CweClass::Injection,
        79 | 352 | 601 | 640 | 916 | 920 | 922 | 346 | 441 => CweClass::Web,
        199 | 200 | 201 | 203 | 209 | 532 | 538 | 552 | 668 => CweClass::InfoLeak,
        310 | 311 | 312 | 319 | 320 | 326 | 327 | 330 | 331 | 338 | 295 | 297 | 345 | 354 | 693 => {
            CweClass::Crypto
        }
        254 | 255 | 259 | 264 | 269 | 273 | 275 | 276 | 281 | 284 | 285 | 287 | 290 | 294 | 306
        | 307 | 521 | 522 | 613 | 798 | 862 | 863 | 732 | 749 | 384 | 426 | 427 | 428 | 436
        | 662 => CweClass::AuthPriv,
        21 | 22 | 59 | 434 | 706 | 610 => CweClass::PathFile,
        399 | 400 | 401 | 404 | 459 | 674 | 769 | 772 | 834 | 835 | 617 => CweClass::Resource,
        362 | 367 => CweClass::Race,
        _ => CweClass::General,
    }
}

/// Popularity boost for the head types of the paper's Table 10 (short-name
/// footnotes: Buffer Overflow, SQL Injection, Permission Management, Input
/// Validation, Code Injection, Resource Management, Use-after-Free,
/// Numerical Error, Path Traversal, Improper Authorization, …).
pub fn popularity_boost(id: CweId) -> f64 {
    match id.number() {
        119 => 11.0, // Buffer Overflow
        79 => 9.5,   // XSS — frequent but rarely critical
        89 => 8.0,   // SQL Injection
        264 => 6.0,  // Permission Management
        20 => 6.0,   // Input Validation
        200 => 5.0,  // Information Exposure
        94 => 3.6,   // Code Injection
        399 => 3.4,  // Resource Management
        22 => 2.8,   // Path Traversal
        352 => 2.6,  // CSRF
        189 => 2.2,  // Numerical Error
        416 => 2.0,  // Use-after-Free
        287 => 1.9,  // Improper Authentication
        190 => 1.8,  // Integer Overflow
        310 => 1.6,  // Cryptographic Issues
        284 => 1.6,  // Access Control
        285 => 1.5,  // Improper Authorization
        125 => 1.5,  // Buffer Over Read
        255 => 1.2,  // Credentials
        77 => 1.0,   // Command Injection
        _ => 0.0,
    }
}

/// Era drift: relative weight multiplier per class for early (≤ 2008) vs
/// late (≥ 2012) corpora, linearly interpolated in between. Shifting the
/// mix away from memory corruption and towards web/leak classes is what
/// produces Fig. 3's declining critical share.
pub fn era_multiplier(class: CweClass, year: i32) -> f64 {
    let (early, late) = match class {
        CweClass::Memory => (2.2, 0.60),
        CweClass::Injection => (1.6, 0.70),
        CweClass::Web => (0.35, 1.90),
        CweClass::InfoLeak => (0.35, 1.80),
        CweClass::Crypto => (0.50, 1.40),
        CweClass::AuthPriv => (0.70, 1.30),
        CweClass::PathFile => (1.10, 0.90),
        CweClass::Resource => (0.90, 1.10),
        CweClass::Race => (1.0, 1.0),
        CweClass::General => (1.0, 1.0),
    };
    let t = ((year - 2004) as f64 / 8.0).clamp(0.0, 1.0);
    early + (late - early) * t
}

/// Per-class v2 severity-band distribution `(low, medium, high)`.
///
/// Mixing these with the class popularity approximates the paper's overall
/// v2 marginals (8.25% L / 54.83% M / 36.92% H, Table 9).
pub fn v2_band_weights(class: CweClass) -> (f64, f64, f64) {
    match class {
        CweClass::Memory => (0.02, 0.33, 0.65),
        CweClass::Injection => (0.02, 0.38, 0.60),
        CweClass::Web => (0.06, 0.88, 0.06),
        CweClass::InfoLeak => (0.28, 0.62, 0.10),
        CweClass::Crypto => (0.18, 0.67, 0.15),
        CweClass::AuthPriv => (0.08, 0.62, 0.30),
        CweClass::PathFile => (0.08, 0.62, 0.30),
        CweClass::Resource => (0.10, 0.62, 0.28),
        CweClass::Race => (0.20, 0.60, 0.20),
        CweClass::General => (0.08, 0.57, 0.35),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvd_model::cwe::CweCatalog;

    #[test]
    fn classifies_head_types() {
        assert_eq!(classify(CweId::new(119)), CweClass::Memory);
        assert_eq!(classify(CweId::new(89)), CweClass::Injection);
        assert_eq!(classify(CweId::new(79)), CweClass::Web);
        assert_eq!(classify(CweId::new(200)), CweClass::InfoLeak);
        assert_eq!(classify(CweId::new(310)), CweClass::Crypto);
        assert_eq!(classify(CweId::new(264)), CweClass::AuthPriv);
        assert_eq!(classify(CweId::new(22)), CweClass::PathFile);
        assert_eq!(classify(CweId::new(399)), CweClass::Resource);
        assert_eq!(classify(CweId::new(362)), CweClass::Race);
        assert_eq!(classify(CweId::new(16)), CweClass::General);
    }

    #[test]
    fn every_builtin_cwe_classifies() {
        // No panic, and every class weight tuple sums to ≈1.
        for rec in CweCatalog::builtin().iter() {
            let class = classify(rec.id);
            let (l, m, h) = v2_band_weights(class);
            assert!((l + m + h - 1.0).abs() < 1e-9, "{:?}", rec.id);
        }
    }

    #[test]
    fn era_shifts_memory_down_web_up() {
        assert!(era_multiplier(CweClass::Memory, 2000) > era_multiplier(CweClass::Memory, 2016));
        assert!(era_multiplier(CweClass::Web, 2000) < era_multiplier(CweClass::Web, 2016));
        // Interpolation is monotone in between.
        let m2009 = era_multiplier(CweClass::Web, 2009);
        let m2011 = era_multiplier(CweClass::Web, 2011);
        assert!(m2009 < m2011);
    }

    #[test]
    fn boosted_types_exist_in_catalog() {
        let catalog = CweCatalog::builtin();
        for rec in catalog.iter() {
            let _ = popularity_boost(rec.id);
        }
        assert!(popularity_boost(CweId::new(119)) > popularity_boost(CweId::new(89)));
    }
}
