//! Seeded-reproducibility test: generation is a pure function of the config,
//! so the same seed must produce byte-identical corpora and different seeds
//! must diverge.

use nvd_synth::{generate, SynthConfig};

/// FNV-1a over a canonical rendering of the corpus: entry records plus the
/// ground-truth disclosure timeline.
fn corpus_digest(corpus: &nvd_synth::SynthCorpus) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |text: &str| {
        for b in text.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for entry in corpus.database.iter() {
        eat(&format!("{entry:?}\n"));
    }
    for (id, date) in &corpus.truth.disclosure {
        eat(&format!("{id}={date}\n"));
    }
    hash
}

#[test]
fn same_seed_same_digest() {
    let config = SynthConfig::with_scale(0.01, 42);
    let first = corpus_digest(&generate(&config));
    for _ in 0..2 {
        assert_eq!(corpus_digest(&generate(&config)), first);
    }
}

#[test]
fn different_seeds_diverge() {
    let a = corpus_digest(&generate(&SynthConfig::with_scale(0.01, 1)));
    let b = corpus_digest(&generate(&SynthConfig::with_scale(0.01, 2)));
    assert_ne!(a, b, "seeds 1 and 2 produced identical corpora");
}

#[test]
fn scale_controls_corpus_size() {
    let small = generate(&SynthConfig::with_scale(0.01, 7)).database.len();
    let large = generate(&SynthConfig::with_scale(0.02, 7)).database.len();
    assert!(
        large > small,
        "scale 0.02 ({large}) <= scale 0.01 ({small})"
    );
}
