//! Seeded-reproducibility tests: generation is a pure function of the
//! config, so the same seed must produce byte-identical corpora, different
//! seeds must diverge, and — now that drafting runs on the `minipar`
//! pool — the digest must not depend on the thread count.

use minipar::with_jobs;
use nvd_synth::{generate, SynthConfig};

#[test]
fn same_seed_same_digest() {
    let config = SynthConfig::with_scale(0.01, 42);
    let first = generate(&config).digest();
    for _ in 0..2 {
        assert_eq!(generate(&config).digest(), first);
    }
}

#[test]
fn different_seeds_diverge() {
    let a = generate(&SynthConfig::with_scale(0.01, 1)).digest();
    let b = generate(&SynthConfig::with_scale(0.01, 2)).digest();
    assert_ne!(a, b, "seeds 1 and 2 produced identical corpora");
}

#[test]
fn scale_controls_corpus_size() {
    let small = generate(&SynthConfig::with_scale(0.01, 7)).database.len();
    let large = generate(&SynthConfig::with_scale(0.02, 7)).database.len();
    assert!(
        large > small,
        "scale 0.02 ({large}) <= scale 0.01 ({small})"
    );
}

#[test]
fn digest_is_thread_count_invariant() {
    // The hard determinism constraint of the parallel pipeline: one worker
    // and eight workers must produce bit-identical corpora (same chunked
    // RNG streams, same archive URL numbering, same ground truth).
    let config = SynthConfig::with_scale(0.01, 42);
    let serial = with_jobs(1, || {
        let c = generate(&config);
        (c.digest(), c.archive.len(), c.security_focus.len())
    });
    for jobs in [2, 8] {
        let parallel = with_jobs(jobs, || {
            let c = generate(&config);
            (c.digest(), c.archive.len(), c.security_focus.len())
        });
        assert_eq!(parallel, serial, "NVD_JOBS={jobs} diverged from serial");
    }
}
