//! Fixed-dimension sentence embedding: the stand-in for the paper's
//! Universal Sentence Encoder.
//!
//! The paper (§4.4) encodes each CVE description with the pre-trained
//! Universal Sentence Encoder into a `1 × 512` vector and feeds those vectors
//! to k-NN/CNN/DNN classifiers. USE itself is a TensorFlow model we cannot
//! (and should not) ship; what the downstream models actually require is a
//! deterministic `text → ℝ^512` map under which lexically similar
//! descriptions are close. [`SentenceEncoder`] provides that with classical
//! machinery built from scratch:
//!
//! 1. preprocess (case-fold, expand contractions, drop stop words, stem);
//! 2. hash unigrams and bigrams into a sparse feature space (feature
//!    hashing, a.k.a. the hashing trick) with sublinear TF weighting and
//!    optional IDF reweighting via [`Idf`];
//! 3. project into `dim` dimensions with a seeded signed random projection
//!    (each hashed feature deterministically contributes ±w to every output
//!    coordinate), then L2-normalise.
//!
//! Random projection preserves inner products in expectation
//! (Johnson–Lindenstrauss), so cosine similarity of encodings tracks the
//! TF(-IDF) similarity of the underlying token multisets — the property the
//! k-NN type classifier depends on.

use std::collections::{BTreeMap, HashMap};

use crate::preprocess::preprocess;

/// Default embedding width, matching the paper's `1 × 512` USE vectors.
pub const DEFAULT_DIM: usize = 512;

/// splitmix64: a small, high-quality 64-bit mixer used for feature hashing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a hash of a string, seeded.
fn hash_term(term: &str, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in term.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h)
}

/// Hashed term features of a preprocessed token sequence: unigrams and
/// bigrams with sublinear term-frequency weights `1 + ln(tf)`.
///
/// Keys are 64-bit feature hashes; the map is sparse (a handful of entries
/// per description).
pub fn term_features(terms: &[String], seed: u64) -> BTreeMap<u64, f64> {
    let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
    for t in terms {
        *counts.entry(hash_term(t, seed)).or_default() += 1;
    }
    for pair in terms.windows(2) {
        let bigram = format!("{} {}", pair[0], pair[1]);
        *counts.entry(hash_term(&bigram, seed ^ 0xb16a)).or_default() += 1;
    }
    counts
        .into_iter()
        .map(|(k, c)| (k, 1.0 + f64::from(c).ln()))
        .collect()
}

/// Inverse document frequency statistics, fit over a corpus of preprocessed
/// term sequences and applied as a reweighting of [`term_features`].
///
/// `idf(t) = ln((1 + N) / (1 + df(t))) + 1` (smoothed, scikit-learn style);
/// unseen terms receive the maximum weight `ln(1 + N) + 1`.
#[derive(Debug, Clone, Default)]
pub struct Idf {
    doc_count: usize,
    doc_freq: HashMap<u64, u32>,
    seed: u64,
}

impl Idf {
    /// Creates an empty model with the given hashing seed (must match the
    /// encoder's seed for the hashes to line up).
    pub fn new(seed: u64) -> Self {
        Self {
            doc_count: 0,
            doc_freq: HashMap::new(),
            seed,
        }
    }

    /// Folds one document's terms into the document-frequency counts.
    pub fn add_document(&mut self, terms: &[String]) {
        self.doc_count += 1;
        let mut seen = std::collections::BTreeSet::new();
        for t in terms {
            seen.insert(hash_term(t, self.seed));
        }
        for h in seen {
            *self.doc_freq.entry(h).or_default() += 1;
        }
    }

    /// Number of documents folded in so far.
    pub fn len(&self) -> usize {
        self.doc_count
    }

    /// Whether no documents have been added.
    pub fn is_empty(&self) -> bool {
        self.doc_count == 0
    }

    /// The IDF weight for a feature hash.
    pub fn weight(&self, feature: u64) -> f64 {
        let df = self.doc_freq.get(&feature).copied().unwrap_or(0);
        (((1 + self.doc_count) as f64) / (f64::from(df) + 1.0)).ln() + 1.0
    }
}

/// Deterministic sentence encoder: preprocess → hashed TF(-IDF) features →
/// seeded signed random projection → L2-normalised `dim`-vector.
///
/// ```
/// use textkit::encoder::{SentenceEncoder, cosine};
/// let enc = SentenceEncoder::default();
/// let a = enc.encode("SQL injection in the login form allows remote attackers to read data");
/// let b = enc.encode("SQL injection vulnerability in login form lets remote attackers read the database");
/// let c = enc.encode("Buffer overflow in the kernel driver causes local denial of service");
/// assert_eq!(a.len(), 512);
/// assert!(cosine(&a, &b) > cosine(&a, &c));
/// ```
#[derive(Debug, Clone)]
pub struct SentenceEncoder {
    dim: usize,
    seed: u64,
    idf: Option<Idf>,
}

impl Default for SentenceEncoder {
    fn default() -> Self {
        Self::new(DEFAULT_DIM, 0x5e17)
    }
}

impl SentenceEncoder {
    /// Creates an encoder with the given output dimension and hashing seed.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "encoder dimension must be positive");
        Self {
            dim,
            seed,
            idf: None,
        }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The hashing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fits IDF weights on a corpus and returns the reweighting encoder.
    pub fn with_idf_corpus<'a, I: IntoIterator<Item = &'a str>>(mut self, corpus: I) -> Self {
        let mut idf = Idf::new(self.seed);
        for doc in corpus {
            idf.add_document(&preprocess(doc));
        }
        self.idf = Some(idf);
        self
    }

    /// Encodes raw text (runs the preprocessing pipeline first).
    pub fn encode(&self, text: &str) -> Vec<f64> {
        self.encode_terms(&preprocess(text))
    }

    /// Encodes already-preprocessed terms.
    ///
    /// Empty input encodes to the zero vector (the only non-unit output).
    pub fn encode_terms(&self, terms: &[String]) -> Vec<f64> {
        let mut out = vec![0.0f64; self.dim];
        let features = term_features(terms, self.seed);
        for (feature, tf) in features {
            let w = match &self.idf {
                Some(idf) => tf * idf.weight(feature),
                None => tf,
            };
            // Each feature deterministically scatters ±w over all output
            // coordinates: stream signs from splitmix64(feature, j).
            let mut state = feature ^ self.seed;
            for slot in out.iter_mut() {
                state = splitmix64(state);
                if state & 1 == 1 {
                    *slot += w;
                } else {
                    *slot -= w;
                }
            }
        }
        let norm = out.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in &mut out {
                *x /= norm;
            }
        }
        out
    }
}

/// Cosine similarity of two equal-length vectors; zero vectors yield 0.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine over mismatched dimensions");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_deterministic() {
        let enc = SentenceEncoder::default();
        let a = enc.encode("heap buffer overflow in image parser");
        let b = enc.encode("heap buffer overflow in image parser");
        assert_eq!(a, b);
    }

    #[test]
    fn encoding_is_unit_norm() {
        let enc = SentenceEncoder::new(128, 7);
        let v = enc.encode("use after free in browser engine");
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
    }

    #[test]
    fn empty_text_encodes_to_zero() {
        let enc = SentenceEncoder::default();
        let v = enc.encode("");
        assert!(v.iter().all(|&x| x == 0.0));
        let w = enc.encode("the of and");
        assert!(w.iter().all(|&x| x == 0.0), "stop words only");
    }

    #[test]
    fn similar_texts_are_closer_than_dissimilar() {
        let enc = SentenceEncoder::default();
        let sqli_a = enc.encode(
            "SQL injection in login form allows remote attackers to execute arbitrary SQL commands",
        );
        let sqli_b = enc.encode("SQL injection vulnerability in the search form allows remote attackers to run SQL commands");
        let bof = enc.encode(
            "stack-based buffer overflow in the TIFF decoder allows local users to gain privileges",
        );
        assert!(cosine(&sqli_a, &sqli_b) > cosine(&sqli_a, &bof) + 0.1);
    }

    #[test]
    fn different_seeds_give_different_embeddings() {
        let a = SentenceEncoder::new(64, 1).encode("memory corruption");
        let b = SentenceEncoder::new(64, 2).encode("memory corruption");
        assert_ne!(a, b);
    }

    #[test]
    fn idf_downweights_ubiquitous_terms() {
        let corpus = [
            "vulnerability in server allows remote attackers",
            "vulnerability in client allows remote attackers",
            "vulnerability in kernel allows local attackers",
            "sql injection vulnerability in form",
        ];
        let mut idf = Idf::new(0x5e17);
        for doc in corpus {
            idf.add_document(&preprocess(doc));
        }
        assert_eq!(idf.len(), 4);
        let vuln = hash_term(&preprocess("vulnerability")[0], 0x5e17);
        let sql = hash_term(&preprocess("sql")[0], 0x5e17);
        assert!(idf.weight(vuln) < idf.weight(sql));
        // Unseen terms get at least the max seen weight.
        assert!(idf.weight(hash_term("zzzz", 0x5e17)) >= idf.weight(sql));
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn cosine_rejects_mismatched_lengths() {
        let _ = cosine(&[1.0], &[1.0, 2.0]);
    }
}
