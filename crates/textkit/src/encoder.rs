//! Fixed-dimension sentence embedding: the stand-in for the paper's
//! Universal Sentence Encoder.
//!
//! The paper (§4.4) encodes each CVE description with the pre-trained
//! Universal Sentence Encoder into a `1 × 512` vector and feeds those vectors
//! to k-NN/CNN/DNN classifiers. USE itself is a TensorFlow model we cannot
//! (and should not) ship; what the downstream models actually require is a
//! deterministic `text → ℝ^512` map under which lexically similar
//! descriptions are close. [`SentenceEncoder`] provides that with classical
//! machinery built from scratch:
//!
//! 1. preprocess (case-fold, expand contractions, drop stop words, stem);
//! 2. hash unigrams and bigrams into a sparse feature space (feature
//!    hashing, a.k.a. the hashing trick) with sublinear TF weighting and
//!    optional IDF reweighting via [`Idf`];
//! 3. project into `dim` dimensions with a seeded signed random projection
//!    (each hashed feature deterministically contributes ±w to every output
//!    coordinate), then L2-normalise.
//!
//! Random projection preserves inner products in expectation
//! (Johnson–Lindenstrauss), so cosine similarity of encodings tracks the
//! TF(-IDF) similarity of the underlying token multisets — the property the
//! k-NN type classifier depends on.
//!
//! # Corpus-level encoding
//!
//! Per-call `encode` re-preprocesses and re-hashes every term occurrence.
//! For corpus workloads (the type classifier's IDF fit + design-matrix
//! build) use [`PreprocessedCorpus`]: each description is preprocessed
//! **once** on a reusable scratch buffer, each unique term is FNV-hashed
//! **once** by the [`TermInterner`], and each unique adjacent pair gets its
//! bigram hash computed once — after which IDF fitting
//! ([`Idf::fit_corpus`], a deterministic `minipar::par_fold`) and encoding
//! ([`SentenceEncoder::encode_corpus`], a `minipar::par_map`) run off
//! integer term ids. Feature hashes, counts, and float streams are
//! bit-identical with the per-call path at every `NVD_JOBS`.

use std::collections::{BTreeMap, HashMap};

use crate::preprocess::{preprocess, Preprocessor};

/// Default embedding width, matching the paper's `1 × 512` USE vectors.
pub const DEFAULT_DIM: usize = 512;

/// Seed perturbation separating the bigram feature space from unigrams.
const BIGRAM_SEED_XOR: u64 = 0xb16a;

/// splitmix64: a small, high-quality 64-bit mixer used for feature hashing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds bytes into a running FNV-1a state.
fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a hash of a string, seeded.
fn hash_term(term: &str, seed: u64) -> u64 {
    splitmix64(fnv_fold(FNV_OFFSET ^ seed, term.as_bytes()))
}

/// Hash of the bigram `"{a} {b}"`, computed incrementally — the first
/// term's bytes, the space byte, and the second term's bytes stream through
/// one FNV-1a state, so the result is bit-identical to hashing the
/// formatted string without ever building it.
fn hash_term_pair(a: &str, b: &str, seed: u64) -> u64 {
    let h = fnv_fold(FNV_OFFSET ^ seed, a.as_bytes());
    let h = fnv_fold(h, b" ");
    splitmix64(fnv_fold(h, b.as_bytes()))
}

/// Hashed term features of a preprocessed token sequence: unigrams and
/// bigrams with sublinear term-frequency weights `1 + ln(tf)`.
///
/// Keys are 64-bit feature hashes; the map is sparse (a handful of entries
/// per description).
pub fn term_features(terms: &[String], seed: u64) -> BTreeMap<u64, f64> {
    let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
    for t in terms {
        *counts.entry(hash_term(t, seed)).or_default() += 1;
    }
    for pair in terms.windows(2) {
        *counts
            .entry(hash_term_pair(&pair[0], &pair[1], seed ^ BIGRAM_SEED_XOR))
            .or_default() += 1;
    }
    counts
        .into_iter()
        .map(|(k, c)| (k, 1.0 + f64::from(c).ln()))
        .collect()
}

// ---------------------------------------------------------------------------
// Term interning
// ---------------------------------------------------------------------------

/// A term interner and hash cache: every unique term is stored (and
/// FNV-hashed) exactly once; occurrences are represented as dense `u32` ids.
#[derive(Debug, Clone, Default)]
pub struct TermInterner {
    seed: u64,
    ids: HashMap<String, u32>,
    terms: Vec<String>,
    unigram: Vec<u64>,
}

impl TermInterner {
    /// Creates an empty interner hashing under `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ids: HashMap::new(),
            terms: Vec::new(),
            unigram: Vec::new(),
        }
    }

    /// Returns the id for `term`, interning (and hashing) it on first sight.
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = u32::try_from(self.terms.len()).expect("term universe fits in u32");
        self.ids.insert(term.to_owned(), id);
        self.terms.push(term.to_owned());
        self.unigram.push(hash_term(term, self.seed));
        id
    }

    /// Number of unique terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The interned term text.
    pub fn term(&self, id: u32) -> &str {
        &self.terms[id as usize]
    }

    /// The cached unigram feature hash of an interned term.
    pub fn unigram_hash(&self, id: u32) -> u64 {
        self.unigram[id as usize]
    }

    /// The hashing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// A corpus preprocessed exactly once: per-document interned term-id
/// sequences plus cached unigram and bigram feature hashes.
///
/// Build it from raw descriptions, then fit IDF statistics
/// ([`Idf::fit_corpus`]) and encode design matrices
/// ([`SentenceEncoder::encode_corpus`]) without touching the original text
/// again. Both consumers see exactly the feature hashes the per-call
/// [`SentenceEncoder::encode`] path produces.
#[derive(Debug, Clone)]
pub struct PreprocessedCorpus {
    interner: TermInterner,
    docs: Vec<Vec<u32>>,
    /// `(a << 32) | b` → cached incremental bigram hash.
    bigrams: HashMap<u64, u64>,
}

impl PreprocessedCorpus {
    /// Preprocesses every text once (single reusable scratch buffer, no
    /// per-token allocation) and interns the term stream.
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(texts: I, seed: u64) -> Self {
        let mut interner = TermInterner::new(seed);
        let mut bigrams: HashMap<u64, u64> = HashMap::new();
        let mut pre = Preprocessor::new();
        let mut docs = Vec::new();
        for text in texts {
            let mut doc: Vec<u32> = Vec::new();
            pre.for_each_term(text, |t| doc.push(interner.intern(t)));
            for pair in doc.windows(2) {
                let key = (u64::from(pair[0]) << 32) | u64::from(pair[1]);
                bigrams.entry(key).or_insert_with(|| {
                    hash_term_pair(
                        interner.term(pair[0]),
                        interner.term(pair[1]),
                        seed ^ BIGRAM_SEED_XOR,
                    )
                });
            }
            docs.push(doc);
        }
        Self {
            interner,
            docs,
            bigrams,
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The interned term-id sequence of one document.
    pub fn doc(&self, index: usize) -> &[u32] {
        &self.docs[index]
    }

    /// All documents, in build order.
    pub fn docs(&self) -> &[Vec<u32>] {
        &self.docs
    }

    /// The underlying interner.
    pub fn interner(&self) -> &TermInterner {
        &self.interner
    }

    /// Cached unigram feature hash of a term id.
    pub fn unigram_hash(&self, id: u32) -> u64 {
        self.interner.unigram_hash(id)
    }

    /// Cached bigram feature hash of an adjacent pair.
    ///
    /// # Panics
    ///
    /// Panics if the pair never occurred adjacently in this corpus (all
    /// occurring pairs are cached at build time).
    pub fn bigram_hash(&self, a: u32, b: u32) -> u64 {
        let key = (u64::from(a) << 32) | u64::from(b);
        *self
            .bigrams
            .get(&key)
            .expect("bigram pair was cached at corpus build")
    }

    /// The hashing seed.
    pub fn seed(&self) -> u64 {
        self.interner.seed()
    }

    /// Sparse hashed features of one document — bit-identical to
    /// [`term_features`] over the document's term strings.
    fn doc_features(&self, doc: &[u32]) -> BTreeMap<u64, f64> {
        let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
        for &id in doc {
            *counts.entry(self.unigram_hash(id)).or_default() += 1;
        }
        for pair in doc.windows(2) {
            *counts
                .entry(self.bigram_hash(pair[0], pair[1]))
                .or_default() += 1;
        }
        counts
            .into_iter()
            .map(|(k, c)| (k, 1.0 + f64::from(c).ln()))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// IDF
// ---------------------------------------------------------------------------

/// Inverse document frequency statistics, fit over a corpus of preprocessed
/// term sequences and applied as a reweighting of [`term_features`].
///
/// `idf(t) = ln((1 + N) / (1 + df(t))) + 1` (smoothed, scikit-learn style);
/// unseen terms receive the maximum weight `ln(1 + N) + 1`.
#[derive(Debug, Clone, Default)]
pub struct Idf {
    doc_count: usize,
    doc_freq: HashMap<u64, u32>,
    seed: u64,
    /// Reusable sort-dedup scratch for [`Idf::add_document`].
    scratch: Vec<u64>,
}

impl Idf {
    /// Creates an empty model with the given hashing seed (must match the
    /// encoder's seed for the hashes to line up).
    pub fn new(seed: u64) -> Self {
        Self {
            doc_count: 0,
            doc_freq: HashMap::new(),
            seed,
            scratch: Vec::new(),
        }
    }

    /// Folds one document's terms into the document-frequency counts.
    ///
    /// Deduplication runs on a reusable sort-dedup scratch vector (same
    /// semantics as a per-call ordered set, no per-document allocation).
    pub fn add_document(&mut self, terms: &[String]) {
        self.doc_count += 1;
        self.scratch.clear();
        self.scratch
            .extend(terms.iter().map(|t| hash_term(t, self.seed)));
        self.scratch.sort_unstable();
        self.scratch.dedup();
        for &h in &self.scratch {
            *self.doc_freq.entry(h).or_default() += 1;
        }
    }

    /// Removes one previously-added document's terms from the
    /// document-frequency counts — the exact inverse of
    /// [`Idf::add_document`], so replacing a document is
    /// `remove_document(old)` + `add_document(new)` and the result is
    /// bit-identical to a fresh fit over the final document set (counts
    /// are order-independent integers; weights are computed on demand).
    ///
    /// # Panics
    ///
    /// Panics if a term hash is not present in the counts (i.e. the terms
    /// were never added), which would silently corrupt the statistics.
    pub fn remove_document(&mut self, terms: &[String]) {
        assert!(self.doc_count > 0, "no documents to remove");
        self.doc_count -= 1;
        self.scratch.clear();
        self.scratch
            .extend(terms.iter().map(|t| hash_term(t, self.seed)));
        self.scratch.sort_unstable();
        self.scratch.dedup();
        for &h in &self.scratch {
            let df = self
                .doc_freq
                .get_mut(&h)
                .expect("removed document was previously added");
            *df -= 1;
            if *df == 0 {
                self.doc_freq.remove(&h);
            }
        }
    }

    /// Fits IDF statistics over a whole [`PreprocessedCorpus`] in one
    /// deterministic parallel pass: per-chunk document-frequency maps are
    /// folded over fixed 128-document chunks and merged in ascending chunk
    /// order, so the result is identical at every `NVD_JOBS` (and identical
    /// to serial [`Idf::add_document`] over the same documents).
    pub fn fit_corpus(corpus: &PreprocessedCorpus) -> Self {
        let all: Vec<usize> = (0..corpus.len()).collect();
        Self::fit_corpus_docs(corpus, &all)
    }

    /// [`Idf::fit_corpus`] restricted to a subset of document indices
    /// (e.g. only entries that actually carry a description).
    pub fn fit_corpus_docs(corpus: &PreprocessedCorpus, docs: &[usize]) -> Self {
        const CHUNK: usize = 128;
        type Acc = (HashMap<u64, u32>, Vec<u64>);
        let (doc_freq, _scratch) = minipar::par_fold(
            docs,
            CHUNK,
            || -> Acc { (HashMap::new(), Vec::new()) },
            |(mut df, mut scratch), &i| {
                scratch.clear();
                scratch.extend(corpus.doc(i).iter().map(|&id| corpus.unigram_hash(id)));
                scratch.sort_unstable();
                scratch.dedup();
                for &h in &scratch {
                    *df.entry(h).or_default() += 1;
                }
                (df, scratch)
            },
            |(mut a, scratch), (b, _)| {
                for (h, c) in b {
                    *a.entry(h).or_default() += c;
                }
                (a, scratch)
            },
        );
        Self {
            doc_count: docs.len(),
            doc_freq,
            seed: corpus.seed(),
            scratch: Vec::new(),
        }
    }

    /// Number of documents folded in so far.
    pub fn len(&self) -> usize {
        self.doc_count
    }

    /// Whether no documents have been added.
    pub fn is_empty(&self) -> bool {
        self.doc_count == 0
    }

    /// The hashing seed this model was fit under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The IDF weight for a feature hash.
    pub fn weight(&self, feature: u64) -> f64 {
        let df = self.doc_freq.get(&feature).copied().unwrap_or(0);
        (((1 + self.doc_count) as f64) / (f64::from(df) + 1.0)).ln() + 1.0
    }
}

// ---------------------------------------------------------------------------
// The encoder
// ---------------------------------------------------------------------------

/// Deterministic sentence encoder: preprocess → hashed TF(-IDF) features →
/// seeded signed random projection → L2-normalised `dim`-vector.
///
/// ```
/// use textkit::encoder::{SentenceEncoder, cosine};
/// let enc = SentenceEncoder::default();
/// let a = enc.encode("SQL injection in the login form allows remote attackers to read data");
/// let b = enc.encode("SQL injection vulnerability in login form lets remote attackers read the database");
/// let c = enc.encode("Buffer overflow in the kernel driver causes local denial of service");
/// assert_eq!(a.len(), 512);
/// assert!(cosine(&a, &b) > cosine(&a, &c));
/// ```
#[derive(Debug, Clone)]
pub struct SentenceEncoder {
    dim: usize,
    seed: u64,
    idf: Option<Idf>,
}

impl Default for SentenceEncoder {
    fn default() -> Self {
        Self::new(DEFAULT_DIM, 0x5e17)
    }
}

impl SentenceEncoder {
    /// Creates an encoder with the given output dimension and hashing seed.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "encoder dimension must be positive");
        Self {
            dim,
            seed,
            idf: None,
        }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The hashing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Installs pre-fit IDF statistics.
    ///
    /// # Panics
    ///
    /// Panics if the model was fit under a different hashing seed.
    pub fn with_idf(mut self, idf: Idf) -> Self {
        assert_eq!(
            idf.seed(),
            self.seed,
            "IDF seed must match the encoder seed"
        );
        self.idf = Some(idf);
        self
    }

    /// Fits IDF weights on a corpus and returns the reweighting encoder.
    ///
    /// Convenience wrapper over [`PreprocessedCorpus::build`] +
    /// [`Idf::fit_corpus`]; corpus-scale callers should build the corpus
    /// themselves so the same preprocessing also feeds encoding.
    pub fn with_idf_corpus<'a, I: IntoIterator<Item = &'a str>>(self, corpus: I) -> Self {
        let pre = PreprocessedCorpus::build(corpus, self.seed);
        let idf = Idf::fit_corpus(&pre);
        self.with_idf(idf)
    }

    /// Encodes raw text (runs the preprocessing pipeline first).
    pub fn encode(&self, text: &str) -> Vec<f64> {
        self.encode_terms(&preprocess(text))
    }

    /// Encodes already-preprocessed terms.
    ///
    /// Empty input encodes to the zero vector (the only non-unit output).
    pub fn encode_terms(&self, terms: &[String]) -> Vec<f64> {
        self.scatter(term_features(terms, self.seed))
    }

    /// Encodes one document of a [`PreprocessedCorpus`] — bit-identical to
    /// [`SentenceEncoder::encode`] on the original text, but with every
    /// term hash served from the corpus cache.
    ///
    /// # Panics
    ///
    /// Panics if the corpus was built under a different hashing seed.
    pub fn encode_doc(&self, corpus: &PreprocessedCorpus, index: usize) -> Vec<f64> {
        assert_eq!(
            corpus.seed(),
            self.seed,
            "corpus seed must match the encoder seed"
        );
        self.scatter(corpus.doc_features(corpus.doc(index)))
    }

    /// Encodes every document of a corpus, fanning the per-document
    /// scatter work out over the `minipar` pool (pure per-document, so the
    /// output is bit-identical at any `NVD_JOBS`).
    pub fn encode_corpus(&self, corpus: &PreprocessedCorpus) -> Vec<Vec<f64>> {
        assert_eq!(
            corpus.seed(),
            self.seed,
            "corpus seed must match the encoder seed"
        );
        minipar::par_map(corpus.docs(), |doc| self.scatter(corpus.doc_features(doc)))
    }

    /// Signed random projection of sparse features into the output space.
    ///
    /// Features are consumed in ascending hash order (the `BTreeMap`
    /// order), so the floating-point accumulation sequence is fixed — this
    /// is what keeps per-call and corpus encodings bit-identical.
    fn scatter(&self, features: BTreeMap<u64, f64>) -> Vec<f64> {
        let mut out = vec![0.0f64; self.dim];
        for (feature, tf) in features {
            let w = match &self.idf {
                Some(idf) => tf * idf.weight(feature),
                None => tf,
            };
            // Each feature deterministically scatters ±w over all output
            // coordinates: stream signs from splitmix64(feature, j).
            let mut state = feature ^ self.seed;
            for slot in out.iter_mut() {
                state = splitmix64(state);
                if state & 1 == 1 {
                    *slot += w;
                } else {
                    *slot -= w;
                }
            }
        }
        let norm = out.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in &mut out {
                *x /= norm;
            }
        }
        out
    }
}

/// Cosine similarity of two equal-length vectors; zero vectors yield 0.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine over mismatched dimensions");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_deterministic() {
        let enc = SentenceEncoder::default();
        let a = enc.encode("heap buffer overflow in image parser");
        let b = enc.encode("heap buffer overflow in image parser");
        assert_eq!(a, b);
    }

    #[test]
    fn encoding_is_unit_norm() {
        let enc = SentenceEncoder::new(128, 7);
        let v = enc.encode("use after free in browser engine");
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
    }

    #[test]
    fn empty_text_encodes_to_zero() {
        let enc = SentenceEncoder::default();
        let v = enc.encode("");
        assert!(v.iter().all(|&x| x == 0.0));
        let w = enc.encode("the of and");
        assert!(w.iter().all(|&x| x == 0.0), "stop words only");
    }

    #[test]
    fn similar_texts_are_closer_than_dissimilar() {
        let enc = SentenceEncoder::default();
        let sqli_a = enc.encode(
            "SQL injection in login form allows remote attackers to execute arbitrary SQL commands",
        );
        let sqli_b = enc.encode("SQL injection vulnerability in the search form allows remote attackers to run SQL commands");
        let bof = enc.encode(
            "stack-based buffer overflow in the TIFF decoder allows local users to gain privileges",
        );
        assert!(cosine(&sqli_a, &sqli_b) > cosine(&sqli_a, &bof) + 0.1);
    }

    #[test]
    fn different_seeds_give_different_embeddings() {
        let a = SentenceEncoder::new(64, 1).encode("memory corruption");
        let b = SentenceEncoder::new(64, 2).encode("memory corruption");
        assert_ne!(a, b);
    }

    #[test]
    fn incremental_bigram_hash_matches_string_built_hash() {
        // The zero-allocation pair hash must agree bit-for-bit with hashing
        // the `format!("{a} {b}")` string it replaced.
        let pairs = [
            ("sql", "inject"),
            ("buffer", "overflow"),
            ("", "x"),
            ("x", ""),
            ("", ""),
            ("a b", "c"), // embedded space in a term still lines up
            ("脆弱性", "情報"),
        ];
        for seed in [0u64, 0x5e17, 0x5e17 ^ BIGRAM_SEED_XOR, u64::MAX] {
            for (a, b) in pairs {
                assert_eq!(
                    hash_term_pair(a, b, seed),
                    hash_term(&format!("{a} {b}"), seed),
                    "pair ({a:?}, {b:?}) seed {seed:#x}"
                );
            }
        }
    }

    #[test]
    fn idf_downweights_ubiquitous_terms() {
        let corpus = [
            "vulnerability in server allows remote attackers",
            "vulnerability in client allows remote attackers",
            "vulnerability in kernel allows local attackers",
            "sql injection vulnerability in form",
        ];
        let mut idf = Idf::new(0x5e17);
        for doc in corpus {
            idf.add_document(&preprocess(doc));
        }
        assert_eq!(idf.len(), 4);
        let vuln = hash_term(&preprocess("vulnerability")[0], 0x5e17);
        let sql = hash_term(&preprocess("sql")[0], 0x5e17);
        assert!(idf.weight(vuln) < idf.weight(sql));
        // Unseen terms get at least the max seen weight.
        assert!(idf.weight(hash_term("zzzz", 0x5e17)) >= idf.weight(sql));
    }

    #[test]
    fn add_document_scratch_reuse_keeps_dedup_semantics() {
        // Repeated terms in one document count once; the shared scratch
        // must not leak state between documents.
        let mut idf = Idf::new(9);
        idf.add_document(&preprocess("overflow overflow overflow"));
        idf.add_document(&preprocess("overflow injection"));
        let over = hash_term(&preprocess("overflow")[0], 9);
        let inj = hash_term(&preprocess("injection")[0], 9);
        assert_eq!(idf.doc_freq[&over], 2, "df(overflow)");
        assert_eq!(idf.doc_freq[&inj], 1, "df(injection)");
    }

    #[test]
    fn corpus_fit_matches_serial_add_document() {
        let texts = [
            "SQL injection in the login form",
            "buffer overflow in the TIFF decoder",
            "SQL injection in the search form",
            "",
            "use after free in browser engine",
        ];
        let corpus = PreprocessedCorpus::build(texts.iter().copied(), 0x5e17);
        let fitted = Idf::fit_corpus(&corpus);
        let mut serial = Idf::new(0x5e17);
        for t in texts {
            serial.add_document(&preprocess(t));
        }
        assert_eq!(fitted.len(), serial.len());
        assert_eq!(fitted.doc_freq, serial.doc_freq);
        // And across job counts.
        let wide = minipar::with_jobs(4, || Idf::fit_corpus(&corpus));
        assert_eq!(wide.doc_freq, fitted.doc_freq);
    }

    #[test]
    fn remove_document_inverts_add_document() {
        let texts = [
            "SQL injection in the login form",
            "buffer overflow in the TIFF decoder",
            "SQL injection in the search form",
            "use after free in browser engine",
        ];
        // Add everything, replace doc 1, drop doc 3: counts must equal a
        // fresh fit over the surviving document set.
        let mut idf = Idf::new(0x5e17);
        for t in texts {
            idf.add_document(&preprocess(t));
        }
        let replacement = "heap overflow in the PNG decoder";
        idf.remove_document(&preprocess(texts[1]));
        idf.add_document(&preprocess(replacement));
        idf.remove_document(&preprocess(texts[3]));

        let mut fresh = Idf::new(0x5e17);
        for t in [texts[0], replacement, texts[2]] {
            fresh.add_document(&preprocess(t));
        }
        assert_eq!(idf.len(), fresh.len());
        assert_eq!(idf.doc_freq, fresh.doc_freq);
        // Weight probes, including a term only the removed docs carried.
        for probe in ["injection", "tiff", "browser", "overflow"] {
            let h = hash_term(&preprocess(probe)[0], 0x5e17);
            assert_eq!(idf.weight(h).to_bits(), fresh.weight(h).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "no documents to remove")]
    fn remove_document_from_empty_idf_panics() {
        let mut idf = Idf::new(0x5e17);
        idf.remove_document(&preprocess("never added"));
    }

    #[test]
    #[should_panic(expected = "removed document was previously added")]
    fn remove_never_added_document_panics() {
        // A document is present, but the removed terms never were: the
        // count underflow must be a loud panic, not silent corruption.
        let mut idf = Idf::new(0x5e17);
        idf.add_document(&preprocess("SQL injection in the login form"));
        idf.remove_document(&preprocess("completely unrelated words"));
    }

    #[test]
    fn corpus_encoding_is_bit_identical_to_per_call_encoding() {
        let texts = [
            "SQL injection vulnerability in index.php allows remote attackers",
            "Buffer overflow in the kernel driver causes local denial of service",
            "It's a cross-site scripting flaw; the attacker can't be remote",
            "",
            "脆弱性 identifiers' CWE-89 overlap",
        ];
        let corpus = PreprocessedCorpus::build(texts.iter().copied(), 0x5e17);
        let enc = SentenceEncoder::new(128, 0x5e17).with_idf(Idf::fit_corpus(&corpus));
        let batch = enc.encode_corpus(&corpus);
        for (i, text) in texts.iter().enumerate() {
            assert_eq!(batch[i], enc.encode(text), "doc {i}");
            assert_eq!(batch[i], enc.encode_doc(&corpus, i), "doc {i}");
        }
        // Job-count invariance of the batched path.
        let wide = minipar::with_jobs(4, || enc.encode_corpus(&corpus));
        assert_eq!(wide, batch);
    }

    #[test]
    fn interner_hashes_each_unique_term_once() {
        let corpus = PreprocessedCorpus::build(
            ["overflow overflow overflow", "overflow injection"]
                .iter()
                .copied(),
            3,
        );
        // Three occurrences of "overflow" → one interned entry.
        assert_eq!(corpus.interner().len(), 2);
        let id = corpus.doc(0)[0];
        assert_eq!(corpus.interner().term(id), "overflow");
        assert_eq!(
            corpus.unigram_hash(id),
            hash_term("overflow", 3),
            "cached hash must equal a direct hash"
        );
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn cosine_rejects_mismatched_lengths() {
        let _ = cosine(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "IDF seed must match")]
    fn mismatched_idf_seed_is_rejected() {
        let _ = SentenceEncoder::new(64, 1).with_idf(Idf::new(2));
    }
}
