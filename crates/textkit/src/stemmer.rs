//! The Porter stemming algorithm.
//!
//! A faithful implementation of M. F. Porter's 1980 suffix-stripping
//! algorithm, used by the preprocessing pipeline to normalise inflected
//! forms — the paper's "tense (past tense is changed to present tense, e.g.,
//! *used* is changed to *use*)" step is subsumed by stemming (`used` → `us`,
//! `using` → `us`, `uses` → `us` all collapse to one key).
//!
//! Only lowercase ASCII words are stemmed; anything containing other
//! characters is returned unchanged.

/// Stems one lowercase word.
///
/// ```
/// use textkit::stemmer::stem;
/// assert_eq!(stem("caresses"), "caress");
/// assert_eq!(stem("motoring"), "motor");
/// assert_eq!(stem("exploited"), "exploit");
/// ```
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_owned();
    }
    let mut w: Vec<u8> = word.bytes().collect();
    stem_in_place(&mut w);
    String::from_utf8(w).expect("ascii in, ascii out")
}

/// Stems a word in place on its UTF-8 byte buffer — the zero-allocation
/// entry point the preprocessing pipeline runs on its reusable token
/// scratch. Words that are too short or not pure lowercase ASCII are left
/// untouched, exactly like [`stem`].
pub fn stem_in_place(w: &mut Vec<u8>) {
    if w.len() <= 2 || !w.iter().all(|b| b.is_ascii_lowercase()) {
        return;
    }
    step_1a(w);
    step_1b(w);
    step_1c(w);
    step_2(w);
    step_3(w);
    step_4(w);
    step_5a(w);
    step_5b(w);
}

/// Whether `w[i]` acts as a consonant under Porter's rules (`y` is a
/// consonant when it follows a vowel position's consonant rule).
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(w, i - 1)
            }
        }
        _ => true,
    }
}

/// Porter's measure *m*: the number of vowel-consonant sequences in `w`.
fn measure(w: &[u8]) -> usize {
    let mut m = 0;
    let mut i = 0;
    let n = w.len();
    // Skip initial consonants.
    while i < n && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < n && !is_consonant(w, i) {
            i += 1;
        }
        if i == n {
            return m;
        }
        // Skip consonants — one full VC sequence seen.
        while i < n && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
        if i == n {
            return m;
        }
    }
}

/// `*v*`: the stem contains a vowel.
fn has_vowel(w: &[u8]) -> bool {
    (0..w.len()).any(|i| !is_consonant(w, i))
}

/// `*d`: the stem ends with a double consonant.
fn ends_double_consonant(w: &[u8]) -> bool {
    let n = w.len();
    n >= 2 && w[n - 1] == w[n - 2] && is_consonant(w, n - 1)
}

/// `*o`: the stem ends consonant-vowel-consonant where the final consonant
/// is not `w`, `x` or `y`.
fn ends_cvc(w: &[u8]) -> bool {
    let n = w.len();
    if n < 3 {
        return false;
    }
    is_consonant(w, n - 3)
        && !is_consonant(w, n - 2)
        && is_consonant(w, n - 1)
        && !matches!(w[n - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// If `w` ends with `suffix`, returns the stem length (without the suffix).
fn stem_len(w: &[u8], suffix: &str) -> Option<usize> {
    ends_with(w, suffix).then(|| w.len() - suffix.len())
}

/// Replaces `suffix` by `replacement` if the measure of the stem satisfies
/// `min_m`. Returns true if the suffix matched (whether or not replaced).
fn replace_if_m(w: &mut Vec<u8>, suffix: &str, replacement: &str, min_m: usize) -> bool {
    if let Some(len) = stem_len(w, suffix) {
        if measure(&w[..len]) > min_m - 1 {
            w.truncate(len);
            w.extend_from_slice(replacement.as_bytes());
        }
        true
    } else {
        false
    }
}

fn step_1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") {
        w.truncate(w.len() - 2); // sses -> ss
    } else if ends_with(w, "ies") {
        w.truncate(w.len() - 2); // ies -> i
    } else if !ends_with(w, "ss") && ends_with(w, "s") {
        w.truncate(w.len() - 1); // s -> ""
    }
}

fn step_1b(w: &mut Vec<u8>) {
    if let Some(len) = stem_len(w, "eed") {
        if measure(&w[..len]) > 0 {
            w.truncate(w.len() - 1); // eed -> ee
        }
        return;
    }
    let stripped = if let Some(len) = stem_len(w, "ed") {
        if has_vowel(&w[..len]) {
            w.truncate(len);
            true
        } else {
            false
        }
    } else if let Some(len) = stem_len(w, "ing") {
        if has_vowel(&w[..len]) {
            w.truncate(len);
            true
        } else {
            false
        }
    } else {
        false
    };
    if !stripped {
        return;
    }
    if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
        w.push(b'e'); // at -> ate, bl -> ble, iz -> ize
    } else if ends_double_consonant(w) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
        w.truncate(w.len() - 1); // double consonant -> single
    } else if measure(w) == 1 && ends_cvc(w) {
        w.push(b'e'); // (m=1 and *o) -> add e
    }
}

fn step_1c(w: &mut [u8]) {
    if let Some(len) = stem_len(w, "y") {
        if has_vowel(&w[..len]) {
            w[len] = b'i';
        }
    }
}

fn step_2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suffix, replacement) in RULES {
        if replace_if_m(w, suffix, replacement, 1) {
            return;
        }
    }
}

fn step_3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suffix, replacement) in RULES {
        if replace_if_m(w, suffix, replacement, 1) {
            return;
        }
    }
}

fn step_4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
        "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    for suffix in SUFFIXES {
        if let Some(len) = stem_len(w, suffix) {
            if measure(&w[..len]) > 1 {
                // `ion` only strips after `s` or `t`.
                if *suffix == "ion" && !(len > 0 && matches!(w[len - 1], b's' | b't')) {
                    return;
                }
                w.truncate(len);
            }
            return;
        }
    }
}

fn step_5a(w: &mut Vec<u8>) {
    if let Some(len) = stem_len(w, "e") {
        let m = measure(&w[..len]);
        if m > 1 || (m == 1 && !ends_cvc(&w[..len])) {
            w.truncate(len);
        }
    }
}

fn step_5b(w: &mut Vec<u8>) {
    if measure(w) > 1 && ends_double_consonant(w) && w[w.len() - 1] == b'l' {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn porter_paper_examples() {
        // (input, expected) pairs from Porter's 1980 paper and the reference
        // implementation's vocabulary.
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, want) in cases {
            assert_eq!(stem(input), want, "stem({input:?})");
        }
    }

    #[test]
    fn security_vocabulary() {
        // Tense/number normalisation the preprocessing pipeline relies on:
        // inflections of the same verb must collapse to one stem.
        assert_eq!(stem("exploited"), stem("exploits"));
        assert_eq!(stem("exploited"), stem("exploiting"));
        assert_eq!(stem("injection"), stem("injections"));
        assert_eq!(stem("overflows"), stem("overflow"));
        assert_eq!(stem("attackers"), stem("attacker"));
        assert_eq!(stem("used"), stem("using"));
        // "vulnerabilities" -> ies->i -> biliti->ble -> able stripped.
        assert_eq!(stem("vulnerabilities"), "vulner");
        assert_eq!(stem("vulnerabilities"), stem("vulnerable"));
    }

    #[test]
    fn in_place_matches_allocating_stem() {
        for word in [
            "caresses",
            "vulnerabilities",
            "exploited",
            "a",
            "xss",
            "sql2",
            "Mixed",
            "脆弱性",
            "controll",
            "relational",
        ] {
            let mut buf = word.as_bytes().to_vec();
            stem_in_place(&mut buf);
            assert_eq!(String::from_utf8(buf).unwrap(), stem(word), "{word}");
        }
    }

    #[test]
    fn short_and_non_ascii_words_untouched() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("xss"), "xss");
        assert_eq!(stem("os"), "os");
        assert_eq!(stem("脆弱性"), "脆弱性");
        assert_eq!(stem("sql2"), "sql2"); // digits -> untouched
        assert_eq!(stem("Mixed"), "Mixed"); // uppercase -> untouched
    }

    #[test]
    fn measure_function() {
        assert_eq!(measure(b"tr"), 0);
        assert_eq!(measure(b"ee"), 0);
        assert_eq!(measure(b"tree"), 0);
        assert_eq!(measure(b"y"), 0);
        assert_eq!(measure(b"by"), 0);
        assert_eq!(measure(b"trouble"), 1);
        assert_eq!(measure(b"oats"), 1);
        assert_eq!(measure(b"trees"), 1);
        assert_eq!(measure(b"ivy"), 1);
        assert_eq!(measure(b"troubles"), 2);
        assert_eq!(measure(b"private"), 2);
        assert_eq!(measure(b"oaten"), 2);
        assert_eq!(measure(b"orrery"), 2);
    }

    #[test]
    fn cvc_and_doubles() {
        assert!(ends_cvc(b"hop"));
        assert!(!ends_cvc(b"snow")); // ends w
        assert!(!ends_cvc(b"box")); // ends x
        assert!(!ends_cvc(b"tray")); // ends y
        assert!(ends_double_consonant(b"hopp"));
        assert!(!ends_double_consonant(b"hoop"));
    }
}
