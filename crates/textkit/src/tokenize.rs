//! Tokenisation and case folding.

/// Splits text into lowercase word tokens.
///
/// A token is a maximal run of ASCII alphanumeric characters (non-ASCII
/// letters are kept too, so Japanese advisory text survives tokenisation);
/// everything else — punctuation, special characters like `!` or `_`,
/// whitespace — separates tokens. This implements the paper's "unified the
/// cases … removed … special characters" preprocessing.
///
/// ```
/// use textkit::tokenize::tokenize;
/// assert_eq!(
///     tokenize("This capability CAN be accessed!"),
///     vec!["this", "capability", "can", "be", "accessed"]
/// );
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Splits a CPE-style name into its components.
///
/// Separators are whitespace and any non-alphanumeric character (`_`, `-`,
/// `.`, `!`, …), matching the paper's product-name tokenisation that treats
/// `internet-explorer`, `internet_explorer`, and `internet explorer` as the
/// same token sequence.
///
/// ```
/// use textkit::tokenize::name_components;
/// assert_eq!(name_components("internet-explorer"), vec!["internet", "explorer"]);
/// assert_eq!(name_components("internet_explorer"), vec!["internet", "explorer"]);
/// assert_eq!(name_components("avast!"), vec!["avast"]);
/// ```
pub fn name_components(name: &str) -> Vec<String> {
    tokenize(name)
}

/// Strips all non-alphanumeric characters from a name, the paper's "identical
/// except for special characters" comparison key (`avast` vs `avast!`).
pub fn strip_specials(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(|c| c.to_lowercase())
        .collect()
}

/// The abbreviation of a multi-component name: first character of each
/// component (`lan_management_system` → `lms`, `internet-explorer` → `ie`).
/// Returns `None` for names with fewer than two components.
pub fn abbreviation(name: &str) -> Option<String> {
    let parts = name_components(name);
    if parts.len() < 2 {
        return None;
    }
    Some(parts.iter().filter_map(|p| p.chars().next()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("...!!!"), Vec::<String>::new());
        assert_eq!(tokenize("a1 b2-c3"), vec!["a1", "b2", "c3"]);
    }

    #[test]
    fn tokenize_keeps_digits_and_unicode() {
        assert_eq!(tokenize("CVE-2011-0700"), vec!["cve", "2011", "0700"]);
        assert_eq!(tokenize("脆弱性 情報"), vec!["脆弱性", "情報"]);
    }

    #[test]
    fn name_component_variants_agree() {
        let a = name_components("internet-explorer");
        let b = name_components("internet_explorer");
        let c = name_components("internet explorer");
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn strip_specials_examples() {
        assert_eq!(strip_specials("avast!"), "avast");
        assert_eq!(strip_specials("bea_systems"), "beasystems");
        assert_eq!(strip_specials("O'Reilly"), "oreilly");
    }

    #[test]
    fn abbreviation_examples() {
        assert_eq!(abbreviation("lan_management_system").unwrap(), "lms");
        assert_eq!(abbreviation("internet-explorer").unwrap(), "ie");
        assert_eq!(abbreviation("tbe_banner_engine").unwrap(), "tbe");
        assert_eq!(abbreviation("microsoft"), None);
    }
}
